"""Integration test for the data-append scenario (Appendix D, Figure 12)."""

import numpy as np

from repro.aqp.online_agg import OnlineAggregationEngine
from repro.config import SamplingConfig, VerdictConfig
from repro.core.engine import VerdictEngine
from repro.db.catalog import Catalog
from repro.db.executor import ExactExecutor
from repro.db.schema import measure
from repro.sqlparser.parser import parse_query
from repro.workloads.synthetic import make_sales_table
from tests.conftest import train_verdict

TRAINING = [
    "SELECT AVG(revenue) FROM sales WHERE week >= 1 AND week <= 15",
    "SELECT AVG(revenue) FROM sales WHERE week >= 10 AND week <= 25",
    "SELECT AVG(revenue) FROM sales WHERE week >= 20 AND week <= 35",
    "SELECT AVG(revenue) FROM sales WHERE week >= 30 AND week <= 52",
]
PROBE = "SELECT AVG(revenue) FROM sales WHERE week >= 12 AND week <= 32"


def build_engine(seed: int = 23, enable_validation: bool = True):
    table = make_sales_table(num_rows=8_000, num_weeks=52, seed=seed)
    catalog = Catalog()
    catalog.add_table(table, fact=True)
    aqp = OnlineAggregationEngine(
        catalog, sampling=SamplingConfig(sample_ratio=0.25, num_batches=4, seed=seed)
    )
    config = VerdictConfig(
        learn_length_scales=False, enable_model_validation=enable_validation
    )
    verdict = VerdictEngine(catalog, aqp, config=config)
    return catalog, verdict


def drifted_append(num_rows: int, shift: float, seed: int = 99):
    """Appended tuples whose revenue is shifted away from the original data."""
    appended = make_sales_table(num_rows=num_rows, num_weeks=52, seed=seed, name="sales")
    return appended.with_column(
        measure("revenue"), np.asarray(appended.column("revenue")) + shift
    )


class TestAppendScenario:
    def test_adjustment_keeps_bounds_valid_under_drift(self):
        catalog, verdict = build_engine()
        train_verdict(verdict, TRAINING)

        appended = drifted_append(num_rows=2_000, shift=250.0)
        verdict.register_append("sales", appended, adjust=True)

        exact = ExactExecutor(catalog).execute(parse_query(PROBE)).scalar()
        answer = verdict.execute(PROBE, max_batches=4)[-1]
        estimate = answer.scalar_estimate()
        actual_error = abs(estimate.value - exact)
        assert actual_error <= 3.0 * max(estimate.error, 1e-9)

    def test_no_adjustment_is_more_overconfident_than_adjustment(self):
        """With model validation switched off (to isolate the effect of the
        synopsis adjustment itself), the adjusted engine reports wider -- more
        honest -- bounds than the unadjusted one once drifted data has been
        appended, because the adjustment inflates the past snippets' errors."""
        catalog_a, adjusted_engine = build_engine(seed=31, enable_validation=False)
        catalog_b, unadjusted_engine = build_engine(seed=31, enable_validation=False)
        train_verdict(adjusted_engine, TRAINING)
        train_verdict(unadjusted_engine, TRAINING)

        adjusted_engine.register_append("sales", drifted_append(2_000, 250.0), adjust=True)
        unadjusted_engine.register_append("sales", drifted_append(2_000, 250.0), adjust=False)

        adjusted_answer = adjusted_engine.execute(PROBE, max_batches=1)[-1].scalar_estimate()
        unadjusted_answer = unadjusted_engine.execute(PROBE, max_batches=1)[-1].scalar_estimate()
        # Same raw inputs, so the difference comes from the synopsis handling.
        assert adjusted_answer.error >= unadjusted_answer.error - 1e-9

    def test_queries_after_append_see_new_rows(self):
        catalog, verdict = build_engine(seed=37)
        train_verdict(verdict, TRAINING[:2])
        before_rows = catalog.cardinality("sales")
        count_before = ExactExecutor(catalog).execute(
            parse_query("SELECT COUNT(*) FROM sales")
        ).scalar()
        verdict.register_append("sales", drifted_append(1_000, 0.0))
        count_after = ExactExecutor(catalog).execute(
            parse_query("SELECT COUNT(*) FROM sales")
        ).scalar()
        assert count_after == count_before + 1_000
        # The AQP engine's samples were invalidated, so new estimates reflect
        # the larger population.
        answer = verdict.execute("SELECT COUNT(*) FROM sales", max_batches=4)[-1]
        assert answer.raw.population_size == before_rows + 1_000
