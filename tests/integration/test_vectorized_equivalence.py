"""Vectorized kernel vs legacy row-loop: identical answers end to end.

Runs the workload query traces (Customer1-like and TPC-H-like, the latter
with fact-dimension joins and HAVING) through the exact executor and the AQP
estimation twice -- once on the factorized kernel, once on the retained
legacy path -- and asserts the answers are identical: same group order, same
group keys, same aggregate floats, same CLT errors.  Also covers the
append scenario: after ``replace_table`` the denormalization cache must
serve the *new* contents.
"""

import numpy as np
import pytest

from repro.aqp.evaluation import estimate_answer
from repro.aqp.online_agg import OnlineAggregationEngine
from repro.config import SamplingConfig
from repro.db.executor import ExactExecutor
from repro.sqlparser.parser import parse_query
from repro.workloads.customer1 import Customer1Workload
from repro.workloads.tpch import TPCHWorkload


def assert_exact_results_identical(vectorized, legacy):
    assert vectorized.group_columns == legacy.group_columns
    assert vectorized.aggregate_names == legacy.aggregate_names
    assert [r.group_values for r in vectorized.rows] == [
        r.group_values for r in legacy.rows
    ]
    for new_row, old_row in zip(vectorized.rows, legacy.rows):
        assert new_row.aggregates == old_row.aggregates


def assert_answers_identical(vectorized, legacy):
    assert [r.group_values for r in vectorized.rows] == [
        r.group_values for r in legacy.rows
    ]
    for new_row, old_row in zip(vectorized.rows, legacy.rows):
        assert new_row.estimates.keys() == old_row.estimates.keys()
        for name in new_row.estimates:
            assert new_row.estimates[name].value == old_row.estimates[name].value
            assert new_row.estimates[name].error == old_row.estimates[name].error


@pytest.fixture(scope="module")
def customer1():
    workload = Customer1Workload(num_rows=4_000, num_days=60, seed=13)
    catalog = workload.build_catalog()
    trace = [q.sql for q in workload.generate_trace(num_queries=20, seed=14)]
    return catalog, trace


@pytest.fixture(scope="module")
def tpch():
    workload = TPCHWorkload(scale=0.05, seed=17)
    catalog = workload.build_catalog()
    queries = [q.sql for q in workload.supported_queries(num_queries=12, seed=18)]
    # Include an explicit join + HAVING query (Q18-style).
    queries.append(
        "SELECT c_mktsegment, SUM(l_quantity) FROM lineitem "
        "JOIN orders ON l_orderkey = o_orderkey "
        "JOIN customer ON o_custkey = c_custkey "
        "GROUP BY c_mktsegment HAVING sum_l_quantity > 100"
    )
    return catalog, queries


class TestExactExecutorEquivalence:
    def test_customer1_trace(self, customer1):
        catalog, trace = customer1
        vectorized = ExactExecutor(catalog, vectorized=True)
        legacy = ExactExecutor(catalog, vectorized=False)
        for sql in trace:
            query = parse_query(sql)
            assert_exact_results_identical(
                vectorized.execute(query), legacy.execute(query)
            )

    def test_tpch_trace_with_joins_and_having(self, tpch):
        catalog, queries = tpch
        vectorized = ExactExecutor(catalog, vectorized=True)
        legacy = ExactExecutor(catalog, vectorized=False)
        for sql in queries:
            query = parse_query(sql)
            if query.has_subquery:
                continue
            assert_exact_results_identical(
                vectorized.execute(query), legacy.execute(query)
            )


class TestAQPEquivalence:
    def test_estimate_answer_over_traces(self, customer1):
        catalog, trace = customer1
        for sql in trace:
            query = parse_query(sql)
            table = catalog.denormalize(query)
            rows = len(table)
            vectorized = estimate_answer(
                query, table, rows, rows, rows, 0.0, vectorized=True
            )
            legacy = estimate_answer(
                query, table, rows, rows, rows, 0.0, vectorized=False
            )
            assert_answers_identical(vectorized, legacy)

    def test_online_aggregation_engines_agree(self, tpch):
        catalog, queries = tpch
        sampling = SamplingConfig(sample_ratio=0.3, num_batches=3, seed=5)
        fast = OnlineAggregationEngine(catalog, sampling=sampling, vectorized=True)
        slow = OnlineAggregationEngine(
            catalog, sampling=sampling, sample_store=fast.samples, vectorized=False
        )
        for sql in queries[:4]:
            query = parse_query(sql)
            if query.has_subquery:
                continue
            for fast_answer, slow_answer in zip(fast.run(query), slow.run(query)):
                assert_answers_identical(fast_answer, slow_answer)


class TestAppendScenario:
    def test_denormalization_cache_sees_appended_rows(self, tpch):
        catalog, _ = tpch
        sql = (
            "SELECT c_mktsegment, COUNT(*) FROM lineitem "
            "JOIN orders ON l_orderkey = o_orderkey "
            "JOIN customer ON o_custkey = c_custkey GROUP BY c_mktsegment"
        )
        query = parse_query(sql)
        vectorized = ExactExecutor(catalog, vectorized=True)
        before = vectorized.execute(query)
        # Warm the cache, then append: double the fact table.
        lineitem = catalog.table("lineitem")
        catalog.replace_table(lineitem.append(lineitem))
        after = vectorized.execute(query)
        legacy_after = ExactExecutor(catalog, vectorized=False).execute(query)
        assert_exact_results_identical(after, legacy_after)
        total_before = sum(r.aggregates["count_star"] for r in before.rows)
        total_after = sum(r.aggregates["count_star"] for r in after.rows)
        assert total_after == 2 * total_before
        # Restore for other tests sharing the fixture.
        catalog.replace_table(lineitem)

    def test_sample_invalidation_refreshes_prefix_cache(self, customer1):
        catalog, _ = customer1
        fact_name = catalog.fact_tables()[0]
        sql = f"SELECT COUNT(*) FROM {fact_name}"
        query = parse_query(sql)
        engine = OnlineAggregationEngine(
            catalog, sampling=SamplingConfig(sample_ratio=0.25, num_batches=2, seed=3)
        )
        first = engine.final_answer(query)
        fact = catalog.table(fact_name)
        catalog.replace_table(fact.append(fact))
        engine.samples.invalidate(fact_name)
        second = engine.final_answer(query)
        count_estimate_before = first.rows[0].estimates["count_star"].value
        count_estimate_after = second.rows[0].estimates["count_star"].value
        assert count_estimate_after == pytest.approx(2 * count_estimate_before, rel=0.01)
        catalog.replace_table(fact)
        engine.samples.invalidate(fact_name)


def test_numpy_join_drops_unmatched_like_legacy(tpch):
    catalog, _ = tpch
    lineitem = catalog.table("lineitem")
    keys = np.asarray(lineitem.column("l_orderkey"))
    # Sanity: the vectorized FK match keeps row order and drops nothing when
    # every key resolves.
    query = parse_query(
        "SELECT COUNT(*) FROM lineitem JOIN orders ON l_orderkey = o_orderkey"
    )
    joined = catalog.denormalize(query)
    assert len(joined) == len(keys)
