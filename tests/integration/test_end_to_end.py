"""Integration tests: full pipelines over the workload generators."""

import numpy as np
import pytest

from repro.config import CostModelConfig, SamplingConfig, VerdictConfig
from repro.experiments.metrics import bound_violation_rate, error_reduction
from repro.experiments.runner import ExperimentRunner, error_bound_at_time, time_to_reach_bound
from repro.workloads.customer1 import Customer1Workload
from repro.workloads.ngram import figure1_query_ranges, make_ngram_catalog, ngram_range_query
from repro.workloads.tpch import TPCHWorkload


@pytest.fixture(scope="module")
def customer1_runner():
    workload = Customer1Workload(num_rows=20_000, num_days=200, seed=21)
    catalog = workload.build_catalog()
    sample_rows = int(20_000 * 0.2)
    runner = ExperimentRunner(
        catalog,
        sampling=SamplingConfig(sample_ratio=0.2, num_batches=5, seed=1),
        # Scale the cost model so a full sample scan takes seconds (Table 5
        # scale); otherwise planning overhead dominates and speedups vanish.
        cost_model=CostModelConfig.scaled_for(sample_rows, cached=True),
        config=VerdictConfig(learn_length_scales=False),
    )
    trace = workload.generate_trace(num_queries=60, seed=3)
    half = len(trace) // 2
    runner.train_on([q.sql for q in trace[:half]])
    return runner, [q.sql for q in trace[half:]]


class TestCustomer1Pipeline:
    def test_speedup_and_error_reduction(self, customer1_runner):
        runner, test_queries = customer1_runner
        results = runner.evaluate(test_queries[:12])
        supported = [r for r in results if r.supported]
        assert supported, "trace should contain supported test queries"

        # Error reduction at a fixed time budget (Table 4 bottom half).
        budget = np.median([r.baseline[-1].elapsed_seconds for r in supported]) / 2
        base_bounds = [error_bound_at_time(r.baseline, budget) for r in supported]
        verdict_bounds = [error_bound_at_time(r.verdict, budget) for r in supported]
        reduction = error_reduction(float(np.mean(base_bounds)), float(np.mean(verdict_bounds)))
        assert reduction > 10.0  # Verdict must clearly reduce the error

        # Speedup to a per-query target bound halfway between what NoLearn
        # achieves after its first batch and after its full sample scan
        # (Table 4 top half): NoLearn needs extra batches, Verdict usually
        # reaches the target immediately.
        base_times, verdict_times = [], []
        for result in supported:
            target = 0.5 * (
                result.baseline[0].relative_error_bound
                + result.baseline[-1].relative_error_bound
            )
            base_times.append(time_to_reach_bound(result.baseline, target))
            verdict_times.append(time_to_reach_bound(result.verdict, target))
        overall_speedup = float(np.mean(base_times)) / float(np.mean(verdict_times))
        assert overall_speedup > 1.1

    def test_theorem1_holds_across_trace(self, customer1_runner):
        runner, test_queries = customer1_runner
        results = runner.evaluate(test_queries[12:22])
        for result in results:
            for base, improved in zip(result.baseline, result.verdict):
                assert improved.relative_error_bound <= base.relative_error_bound + 1e-9

    def test_bound_behaviour_and_accuracy(self, customer1_runner):
        """Figure 5 flavour, at reproduction scale.

        With only a few dozen training queries the scaled-down reproduction
        cannot match the paper's 95% coverage (see EXPERIMENTS.md); the test
        asserts the two properties that must still hold: the bound-violation
        rate stays bounded well below half, and Verdict's answers after the
        first batch are more accurate than NoLearn's on average.
        """
        runner, test_queries = customer1_runner
        results = runner.evaluate(test_queries[22:30])
        pairs = [pair for result in results for pair in result.verdict_cells]
        assert pairs
        assert bound_violation_rate(pairs) <= 0.40
        supported = [r for r in results if r.supported]
        verdict_first = np.mean([r.verdict[0].actual_relative_error for r in supported])
        baseline_first = np.mean([r.baseline[0].actual_relative_error for r in supported])
        assert verdict_first <= baseline_first + 0.01

    def test_overhead_is_small_fraction_of_runtime(self, customer1_runner):
        runner, test_queries = customer1_runner
        result = runner.evaluate_query(test_queries[0])
        if result.supported:
            total = result.baseline[-1].elapsed_seconds
            assert result.overhead_seconds < 0.25 * total + 0.05


class TestTPCHPipeline:
    @pytest.fixture(scope="class")
    def tpch_runner(self):
        workload = TPCHWorkload(scale=0.15, seed=5)
        catalog = workload.build_catalog()
        runner = ExperimentRunner(
            catalog,
            sampling=SamplingConfig(sample_ratio=0.25, num_batches=4, seed=2),
            cost_model=CostModelConfig(cached=True),
            config=VerdictConfig(learn_length_scales=False),
        )
        return runner, workload

    def test_supported_templates_run_through_verdict(self, tpch_runner):
        runner, workload = tpch_runner
        queries = [q.sql for q in workload.supported_queries(num_queries=14, seed=1)]
        runner.train_on(queries)
        results = runner.evaluate(queries[:6], max_batches=2)
        assert all(result.supported for result in results)
        for result in results:
            for base, improved in zip(result.baseline, result.verdict):
                assert improved.relative_error_bound <= base.relative_error_bound + 1e-9

    def test_unsupported_templates_pass_through(self, tpch_runner):
        runner, workload = tpch_runner
        unsupported = [q for q in workload.query_templates() if not q.expected_supported]
        # MIN/MAX query passes through without improvement and without errors.
        target = next(q for q in unsupported if "MIN(" in q.sql or "MAX(" in q.sql)
        result = runner.evaluate_query(target.sql, max_batches=1)
        assert not result.supported


class TestNgramIllustration:
    def test_model_refines_with_more_queries(self):
        """Figure 1 / Figure 8: the posterior over an unseen range tightens as
        more range queries are answered."""
        catalog = make_ngram_catalog(num_weeks=80, rows_per_week=80, seed=9)
        runner = ExperimentRunner(
            catalog,
            sampling=SamplingConfig(sample_ratio=0.3, num_batches=3, seed=4),
            config=VerdictConfig(learn_length_scales=False),
        )
        probe = ngram_range_query(33, 47)
        ranges = figure1_query_ranges(8, num_weeks=80, seed=10)

        def probe_bound() -> float:
            result = runner.evaluate_query(probe, record=False, max_batches=1)
            return result.verdict[0].relative_error_bound

        bound_before = probe_bound()
        runner.train_on([ngram_range_query(low, high) for low, high in ranges[:2]])
        bound_after_two = probe_bound()
        runner.train_on([ngram_range_query(low, high) for low, high in ranges[2:]])
        bound_after_eight = probe_bound()
        assert bound_after_two <= bound_before + 1e-9
        assert bound_after_eight <= bound_after_two + 1e-9
