"""Unit tests for the exact query executor."""

import numpy as np
import pytest

from repro.db.executor import ExactExecutor
from repro.sqlparser.parser import parse_query


@pytest.fixture()
def executor(tiny_catalog):
    return ExactExecutor(tiny_catalog)


class TestScalarAggregates:
    def test_count_star(self, executor):
        result = executor.execute(parse_query("SELECT COUNT(*) FROM tiny"))
        assert result.scalar() == 5

    def test_count_with_predicate(self, executor):
        result = executor.execute(
            parse_query("SELECT COUNT(*) FROM tiny WHERE revenue >= 30")
        )
        assert result.scalar() == 3

    def test_avg(self, executor):
        result = executor.execute(parse_query("SELECT AVG(revenue) FROM tiny"))
        assert result.scalar() == pytest.approx(30.0)

    def test_sum(self, executor):
        result = executor.execute(
            parse_query("SELECT SUM(revenue) FROM tiny WHERE region = 'east'")
        )
        assert result.scalar() == pytest.approx(90.0)

    def test_min_max(self, executor):
        result = executor.execute(
            parse_query("SELECT MIN(revenue), MAX(revenue) FROM tiny")
        )
        row = result.rows[0]
        assert row.aggregates["min_revenue"] == 10.0
        assert row.aggregates["max_revenue"] == 50.0

    def test_derived_attribute(self, executor):
        result = executor.execute(
            parse_query("SELECT SUM(revenue * (1 - discount)) FROM tiny")
        )
        expected = 10 * 0.9 + 20 * 0.8 + 30 * 1.0 + 40 * 0.5 + 50 * 0.7
        assert result.scalar() == pytest.approx(expected)

    def test_empty_selection_yields_zero(self, executor):
        result = executor.execute(
            parse_query("SELECT SUM(revenue), AVG(revenue), COUNT(*) FROM tiny WHERE week = 99")
        )
        row = result.rows[0]
        assert row.aggregates["count_star"] == 0
        assert row.aggregates["sum_revenue"] == 0.0
        assert row.aggregates["avg_revenue"] == 0.0

    def test_freq(self, executor):
        result = executor.execute(parse_query("SELECT FREQ(*) FROM tiny WHERE week = 1"))
        assert result.scalar() == pytest.approx(2 / 5)


class TestGroupBy:
    def test_group_by_region(self, executor):
        result = executor.execute(
            parse_query("SELECT region, SUM(revenue), COUNT(*) FROM tiny GROUP BY region")
        )
        by_group = result.by_group()
        assert by_group[("east",)].aggregates["sum_revenue"] == pytest.approx(90.0)
        assert by_group[("west",)].aggregates["sum_revenue"] == pytest.approx(60.0)
        assert by_group[("east",)].aggregates["count_star"] == 3

    def test_group_by_with_predicate(self, executor):
        result = executor.execute(
            parse_query(
                "SELECT week, AVG(revenue) FROM tiny WHERE region = 'east' GROUP BY week"
            )
        )
        by_group = result.by_group()
        assert set(by_group) == {(1,), (2,), (3,)}
        assert by_group[(3,)].aggregates["avg_revenue"] == pytest.approx(50.0)

    def test_group_rows_preserve_first_seen_order(self, executor):
        result = executor.execute(
            parse_query("SELECT week, COUNT(*) FROM tiny GROUP BY week")
        )
        assert result.group_rows() == [(1,), (2,), (3,)]

    def test_having_filters_groups(self, executor):
        result = executor.execute(
            parse_query(
                "SELECT region, SUM(revenue) FROM tiny GROUP BY region "
                "HAVING sum_revenue > 70"
            )
        )
        assert [row.group_values for row in result.rows] == [("east",)]

    def test_having_on_alias(self, executor):
        result = executor.execute(
            parse_query(
                "SELECT region, SUM(revenue) AS total FROM tiny GROUP BY region "
                "HAVING total >= 60"
            )
        )
        assert len(result.rows) == 2

    def test_group_by_against_brute_force(self, sales_catalog, small_sales_table):
        executor = ExactExecutor(sales_catalog)
        result = executor.execute(
            parse_query(
                "SELECT region, AVG(revenue) FROM sales WHERE week >= 10 AND week <= 20 "
                "GROUP BY region"
            )
        )
        weeks = np.asarray(small_sales_table.column("week"))
        revenue = np.asarray(small_sales_table.column("revenue"))
        regions = small_sales_table.column("region")
        mask = (weeks >= 10) & (weeks <= 20)
        for row in result.rows:
            region = row.group_values[0]
            chosen = mask & (regions == region)
            assert row.aggregates["avg_revenue"] == pytest.approx(revenue[chosen].mean())


class TestJoinsAndScalars:
    def test_join_group_by(self, star_catalog):
        executor = ExactExecutor(star_catalog)
        result = executor.execute(
            parse_query(
                "SELECT region, SUM(amount) FROM orders "
                "JOIN stores ON store_id = store_id GROUP BY region"
            )
        )
        by_group = result.by_group()
        assert by_group[("east",)].aggregates["sum_amount"] == pytest.approx(150.0)
        assert by_group[("west",)].aggregates["sum_amount"] == pytest.approx(60.0)

    def test_scalar_requires_single_cell(self, executor):
        result = executor.execute(
            parse_query("SELECT region, COUNT(*) FROM tiny GROUP BY region")
        )
        with pytest.raises(ValueError):
            result.scalar()


class TestVectorizedLegacyParity:
    def test_count_of_categorical_column(self, tiny_catalog):
        # COUNT never evaluates its argument, so counting a non-numeric
        # column must work on both paths (regression: the vectorized path
        # once float64-cast every aggregate argument eagerly).
        query = parse_query("SELECT week, COUNT(region) FROM tiny GROUP BY week")
        from repro.db.executor import ExactExecutor

        vectorized = ExactExecutor(tiny_catalog, vectorized=True).execute(query)
        legacy = ExactExecutor(tiny_catalog, vectorized=False).execute(query)
        assert [r.group_values for r in vectorized.rows] == [
            r.group_values for r in legacy.rows
        ]
        for new_row, old_row in zip(vectorized.rows, legacy.rows):
            assert new_row.aggregates == old_row.aggregates

    def test_empty_selection_never_evaluates_measure(self, tiny_catalog):
        # Legacy returns 0.0 for SUM/AVG over an empty selection *without*
        # evaluating the argument, so even a non-numeric argument must not
        # crash; the vectorized path must defer evaluation the same way.
        from repro.db.executor import ExactExecutor

        query = parse_query("SELECT SUM(region) FROM tiny WHERE week = 99")
        for vectorized in (True, False):
            result = ExactExecutor(tiny_catalog, vectorized=vectorized).execute(query)
            assert result.rows[0].aggregates["sum_region"] == 0.0

    def test_empty_selection_group_by_non_numeric_measure(self, tiny_catalog):
        from repro.db.executor import ExactExecutor

        query = parse_query(
            "SELECT week, AVG(region) FROM tiny WHERE week = 99 GROUP BY week"
        )
        for vectorized in (True, False):
            result = ExactExecutor(tiny_catalog, vectorized=vectorized).execute(query)
            assert result.rows == []
