"""Unit tests for the deterministic IO cost model."""

import pytest

from repro.config import CostModelConfig
from repro.db.io_model import IOSimulator


class TestCostModelConfig:
    def test_seconds_per_row_switches_with_storage(self):
        cached = CostModelConfig(cached=True)
        ssd = CostModelConfig(cached=False)
        assert cached.seconds_per_row == cached.cached_seconds_per_row
        assert ssd.seconds_per_row == ssd.ssd_seconds_per_row
        assert ssd.seconds_per_row > cached.seconds_per_row

    def test_query_seconds_composition(self):
        config = CostModelConfig(planning_overhead_s=0.5, cached_seconds_per_row=1e-6)
        assert config.query_seconds(1_000_000) == pytest.approx(0.5 + 1.0)
        with_penalty = config.query_seconds(0, unsampled_penalty=True)
        assert with_penalty == pytest.approx(0.5 + config.unsampled_table_scan_penalty_s)

    def test_validation(self):
        with pytest.raises(ValueError):
            CostModelConfig(planning_overhead_s=-1)
        with pytest.raises(ValueError):
            CostModelConfig(cached_seconds_per_row=0)
        config = CostModelConfig()
        with pytest.raises(ValueError):
            config.scan_seconds(-1)

    def test_with_options(self):
        config = CostModelConfig().with_options(cached=False)
        assert config.cached is False


class TestIOSimulator:
    def test_charge_query_accumulates(self):
        simulator = IOSimulator(CostModelConfig(planning_overhead_s=0.1, cached_seconds_per_row=1e-3))
        report = simulator.charge_query(100)
        assert report.total_seconds == pytest.approx(0.1 + 0.1)
        simulator.charge_query(50, include_planning=False)
        assert simulator.queries_charged == 2
        assert simulator.total_rows_scanned == 150
        assert simulator.total_seconds == pytest.approx(0.1 + 0.1 + 0.05)

    def test_unsampled_penalty_applied_once(self):
        config = CostModelConfig(planning_overhead_s=0.0, cached_seconds_per_row=1e-6)
        simulator = IOSimulator(config)
        report = simulator.charge_query(0, unsampled_rows=1000)
        assert report.penalty_seconds == config.unsampled_table_scan_penalty_s
        report = simulator.charge_query(10, unsampled_rows=0)
        assert report.penalty_seconds == 0.0

    def test_negative_rows_rejected(self):
        simulator = IOSimulator()
        with pytest.raises(ValueError):
            simulator.charge_query(-1)

    def test_rows_for_budget_inverts_cost(self):
        config = CostModelConfig(planning_overhead_s=0.2, cached_seconds_per_row=1e-5)
        simulator = IOSimulator(config)
        rows = simulator.rows_for_budget(1.2)
        # 1.0 second of scan at 1e-5 s/row -> 100000 rows.
        assert rows == pytest.approx(100_000, rel=0.01)
        assert simulator.rows_for_budget(0.1) == 0
        assert simulator.rows_for_budget(-1.0) == 0

    def test_rows_for_budget_accounts_for_unsampled_tables(self):
        config = CostModelConfig(
            planning_overhead_s=0.0,
            cached_seconds_per_row=1e-5,
            unsampled_table_scan_penalty_s=0.5,
        )
        simulator = IOSimulator(config)
        without = simulator.rows_for_budget(1.0)
        with_dims = simulator.rows_for_budget(1.0, unsampled_rows=10_000)
        assert with_dims < without

    def test_reset(self):
        simulator = IOSimulator()
        simulator.charge_query(10)
        simulator.reset()
        assert simulator.total_seconds == 0.0
        assert simulator.total_rows_scanned == 0
        assert simulator.queries_charged == 0
