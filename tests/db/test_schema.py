"""Unit tests for repro.db.schema."""

import pytest

from repro.db.schema import (
    Column,
    ColumnKind,
    ColumnRole,
    Schema,
    categorical_dimension,
    key,
    measure,
    numeric_dimension,
)
from repro.errors import SchemaError


class TestColumn:
    def test_measure_must_be_numeric(self):
        with pytest.raises(SchemaError):
            Column("bad", ColumnKind.CATEGORY, ColumnRole.MEASURE)

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("", ColumnKind.FLOAT)

    def test_kind_predicates(self):
        assert numeric_dimension("x").is_numeric
        assert not numeric_dimension("x").is_categorical
        assert categorical_dimension("c").is_categorical
        assert not categorical_dimension("c").is_numeric

    def test_helper_constructors_assign_roles(self):
        assert measure("m").role is ColumnRole.MEASURE
        assert key("k").role is ColumnRole.KEY
        assert numeric_dimension("d").role is ColumnRole.DIMENSION
        assert categorical_dimension("c").role is ColumnRole.DIMENSION

    def test_numeric_dimension_rejects_categorical_kind(self):
        with pytest.raises(SchemaError):
            numeric_dimension("d", ColumnKind.CATEGORY)


class TestSchema:
    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of([measure("a"), numeric_dimension("a")])

    def test_lookup_and_contains(self):
        schema = Schema.of([measure("a"), categorical_dimension("b")])
        assert "a" in schema
        assert "missing" not in schema
        assert schema.column("b").is_categorical
        with pytest.raises(SchemaError):
            schema.column("missing")

    def test_role_filters(self):
        schema = Schema.of(
            [measure("m"), numeric_dimension("d"), categorical_dimension("c"), key("k")]
        )
        assert [c.name for c in schema.measure_columns()] == ["m"]
        assert sorted(c.name for c in schema.dimension_columns()) == ["c", "d"]
        assert [c.name for c in schema.key_columns()] == ["k"]
        assert schema.names() == ["m", "d", "c", "k"]
        assert len(schema) == 4

    def test_merged_with_keeps_first_occurrence(self):
        left = Schema.of([key("id"), measure("x")])
        right = Schema.of([key("id"), categorical_dimension("c")])
        merged = left.merged_with(right)
        assert merged.names() == ["id", "x", "c"]
        assert merged.column("id").role is ColumnRole.KEY

    def test_iteration_order(self):
        columns = [measure("a"), measure("b")]
        schema = Schema.of(columns)
        assert [c.name for c in schema] == ["a", "b"]
