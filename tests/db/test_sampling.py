"""Unit tests for offline sampling and batch splitting."""

import numpy as np
import pytest

from repro.config import SamplingConfig
from repro.db.sampling import SampleStore, build_table_sample


class TestBuildTableSample:
    def test_sample_size_matches_ratio(self, small_sales_table):
        config = SamplingConfig(sample_ratio=0.25, num_batches=5, seed=1)
        sample = build_table_sample(small_sales_table, config)
        assert sample.population_size == small_sales_table.num_rows
        assert sample.sample_size == int(round(0.25 * small_sales_table.num_rows))
        assert sample.scale_factor == pytest.approx(4.0, rel=0.01)

    def test_batches_cover_sample_exactly(self, small_sales_table):
        config = SamplingConfig(sample_ratio=0.3, num_batches=7, seed=2)
        sample = build_table_sample(small_sales_table, config)
        assert sample.batch_offsets[-1] == sample.sample_size
        assert list(sample.batch_offsets) == sorted(set(sample.batch_offsets))
        assert sample.rows_after_batches(0) == 0
        assert sample.rows_after_batches(sample.num_batches) == sample.sample_size
        assert sample.rows_after_batches(10_000) == sample.sample_size

    def test_prefix_sizes(self, small_sales_table):
        config = SamplingConfig(sample_ratio=0.2, num_batches=4, seed=3)
        sample = build_table_sample(small_sales_table, config)
        sizes = [rows for rows, _ in sample.iter_batch_prefixes()]
        assert sizes == list(sample.batch_offsets)
        assert sample.prefix_for_batches(2).num_rows == sample.batch_offsets[1]

    def test_sample_is_unbiased_enough(self, small_sales_table):
        """The sample mean of a measure should be close to the population mean."""
        config = SamplingConfig(sample_ratio=0.3, num_batches=4, seed=5)
        sample = build_table_sample(small_sales_table, config)
        population_mean = float(np.mean(small_sales_table.column("revenue")))
        sample_mean = float(np.mean(sample.sample.column("revenue")))
        assert abs(sample_mean - population_mean) / population_mean < 0.05

    def test_deterministic_given_seed(self, small_sales_table):
        config = SamplingConfig(sample_ratio=0.1, num_batches=3, seed=9)
        first = build_table_sample(small_sales_table, config)
        second = build_table_sample(small_sales_table, config)
        assert list(first.sample.column("week")) == list(second.sample.column("week"))


class TestSampleStore:
    def test_caching_and_invalidation(self, sales_catalog):
        store = SampleStore(sales_catalog, SamplingConfig(sample_ratio=0.1, num_batches=3))
        first = store.sample_for("sales")
        assert store.sample_for("sales") is first
        store.invalidate("sales")
        assert store.sample_for("sales") is not first

    def test_invalidate_all(self, sales_catalog):
        store = SampleStore(sales_catalog, SamplingConfig(sample_ratio=0.1, num_batches=3))
        first = store.sample_for("sales")
        store.invalidate()
        assert store.sample_for("sales") is not first

    def test_rebuild_with_new_seed(self, sales_catalog):
        store = SampleStore(sales_catalog, SamplingConfig(sample_ratio=0.1, num_batches=3))
        first = store.sample_for("sales")
        rebuilt = store.rebuild("sales", seed=99)
        assert store.sample_for("sales") is rebuilt
        assert list(first.sample.column("week")) != list(rebuilt.sample.column("week"))


class TestSamplingConfigValidation:
    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            SamplingConfig(sample_ratio=0.0)
        with pytest.raises(ValueError):
            SamplingConfig(sample_ratio=1.5)

    def test_invalid_batches(self):
        with pytest.raises(ValueError):
            SamplingConfig(num_batches=0)
