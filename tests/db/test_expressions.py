"""Unit tests for predicate / expression evaluation."""

import numpy as np
import pytest

from repro.db.expressions import evaluate_expression, evaluate_predicate
from repro.errors import ExpressionError
from repro.sqlparser import ast


def _comparison(column, op, value):
    return ast.Comparison(ast.ColumnRef(column), op, ast.Literal(value))


class TestExpressions:
    def test_column_and_literal(self, tiny_table):
        values = evaluate_expression(ast.ColumnRef("revenue"), tiny_table)
        assert list(values) == [10.0, 20.0, 30.0, 40.0, 50.0]
        literal = evaluate_expression(ast.Literal(3), tiny_table)
        assert list(literal) == [3] * 5

    def test_arithmetic(self, tiny_table):
        expr = ast.BinaryOp(
            "*",
            ast.ColumnRef("revenue"),
            ast.BinaryOp("-", ast.Literal(1), ast.ColumnRef("discount")),
        )
        values = evaluate_expression(expr, tiny_table)
        expected = np.array([10 * 0.9, 20 * 0.8, 30 * 1.0, 40 * 0.5, 50 * 0.7])
        np.testing.assert_allclose(values, expected)

    def test_division_by_zero_yields_zero(self, tiny_table):
        expr = ast.BinaryOp("/", ast.ColumnRef("revenue"), ast.Literal(0))
        values = evaluate_expression(expr, tiny_table)
        assert list(values) == [0.0] * 5

    def test_unknown_column(self, tiny_table):
        with pytest.raises(ExpressionError):
            evaluate_expression(ast.ColumnRef("missing"), tiny_table)

    def test_star_not_evaluable(self, tiny_table):
        with pytest.raises(ExpressionError):
            evaluate_expression(ast.Star(), tiny_table)


class TestPredicates:
    def test_none_is_all_true(self, tiny_table):
        assert evaluate_predicate(None, tiny_table).all()

    def test_numeric_comparisons(self, tiny_table):
        mask = evaluate_predicate(_comparison("revenue", ast.ComparisonOp.GE, 30), tiny_table)
        assert list(mask) == [False, False, True, True, True]
        mask = evaluate_predicate(_comparison("week", ast.ComparisonOp.EQ, 1), tiny_table)
        assert list(mask) == [True, True, False, False, False]
        mask = evaluate_predicate(_comparison("week", ast.ComparisonOp.NE, 1), tiny_table)
        assert list(mask) == [False, False, True, True, True]

    def test_literal_on_left_is_flipped(self, tiny_table):
        predicate = ast.Comparison(ast.Literal(30), ast.ComparisonOp.GE, ast.ColumnRef("revenue"))
        mask = evaluate_predicate(predicate, tiny_table)
        # 30 >= revenue  <=>  revenue <= 30
        assert list(mask) == [True, True, True, False, False]

    def test_categorical_equality(self, tiny_table):
        mask = evaluate_predicate(_comparison("region", ast.ComparisonOp.EQ, "east"), tiny_table)
        assert list(mask) == [True, False, True, False, True]

    def test_and_or_not(self, tiny_table):
        east = _comparison("region", ast.ComparisonOp.EQ, "east")
        big = _comparison("revenue", ast.ComparisonOp.GT, 25)
        both = evaluate_predicate(ast.And((east, big)), tiny_table)
        assert list(both) == [False, False, True, False, True]
        either = evaluate_predicate(ast.Or((east, big)), tiny_table)
        assert list(either) == [True, False, True, True, True]
        negated = evaluate_predicate(ast.Not(east), tiny_table)
        assert list(negated) == [False, True, False, True, False]

    def test_in_predicate(self, tiny_table):
        predicate = ast.InPredicate(ast.ColumnRef("week"), (1, 3))
        mask = evaluate_predicate(predicate, tiny_table)
        assert list(mask) == [True, True, False, True, True]
        negated = ast.InPredicate(ast.ColumnRef("region"), ("east",), negated=True)
        assert list(evaluate_predicate(negated, tiny_table)) == [False, True, False, True, False]

    def test_between_predicate(self, tiny_table):
        predicate = ast.BetweenPredicate(ast.ColumnRef("revenue"), 20, 40)
        assert list(evaluate_predicate(predicate, tiny_table)) == [False, True, True, True, False]

    def test_like_predicate(self, tiny_table):
        predicate = ast.LikePredicate(ast.ColumnRef("region"), "ea%")
        assert list(evaluate_predicate(predicate, tiny_table)) == [True, False, True, False, True]
        negated = ast.LikePredicate(ast.ColumnRef("region"), "ea%", negated=True)
        assert list(evaluate_predicate(negated, tiny_table)) == [False, True, False, True, False]

    def test_column_vs_column_comparison(self, tiny_table):
        predicate = ast.Comparison(
            ast.ColumnRef("revenue"), ast.ComparisonOp.GT, ast.ColumnRef("discount")
        )
        assert evaluate_predicate(predicate, tiny_table).all()
