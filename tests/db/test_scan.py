"""Unit tests for zone-map pruning and the morsel-driven scan driver."""

from __future__ import annotations

import numpy as np

from repro.db.expressions import evaluate_predicate
from repro.db.partition import table_partitions
from repro.db.scan import (
    ScanCounters,
    estimate_scan_rows,
    partition_maybe_mask,
    scan_mask,
    scan_selected,
)
from repro.db.schema import (
    ColumnKind,
    Schema,
    categorical_dimension,
    measure,
    numeric_dimension,
)
from repro.db.table import Table
from repro.sqlparser.parser import parse_query


def clustered_table(num_rows: int = 100) -> Table:
    """Week-clustered fact table: zone maps can prune week ranges."""
    schema = Schema.of(
        [
            numeric_dimension("week", ColumnKind.INT),
            categorical_dimension("region"),
            measure("revenue"),
        ]
    )
    return Table(
        "sales",
        schema,
        {
            "week": np.sort(np.arange(num_rows, dtype=np.int64) // 10),
            "region": [f"r{i // 50}" for i in range(num_rows)],  # r0 then r1
            "revenue": np.arange(num_rows, dtype=np.float64),
        },
    )


def where(sql_condition: str):
    return parse_query(f"SELECT COUNT(*) FROM sales WHERE {sql_condition}").where


class TestPruning:
    def setup_method(self):
        self.table = clustered_table()
        self.parts = table_partitions(self.table, partition_rows=20)

    def maybe(self, condition: str) -> list[bool]:
        return partition_maybe_mask(where(condition), self.table, self.parts).tolist()

    def test_numeric_range_prunes(self):
        # weeks: partition p holds weeks [2p, 2p+1].
        assert self.maybe("week >= 8") == [False, False, False, False, True]
        assert self.maybe("week < 2") == [True, False, False, False, False]
        assert self.maybe("week = 5") == [False, False, True, False, False]
        assert self.maybe("week > 9") == [False] * 5

    def test_between_prunes(self):
        assert self.maybe("week BETWEEN 4 AND 5") == [False, False, True, False, False]

    def test_in_list_prunes(self):
        assert self.maybe("week IN (0, 9)") == [True, False, False, False, True]

    def test_string_equality_prunes_by_dictionary_code(self):
        assert self.maybe("region = 'r1'") == [False, False, True, True, True]
        # A literal absent from the dictionary prunes everything.
        assert self.maybe("region = 'nope'") == [False] * 5

    def test_and_intersects_or_unions(self):
        assert self.maybe("week >= 8 AND region = 'r0'") == [False] * 5
        assert self.maybe("week < 2 OR week > 8") == [True, False, False, False, True]

    def test_not_never_prunes(self):
        assert self.maybe("NOT week = 5") == [True] * 5

    def test_estimate_scan_rows(self):
        assert estimate_scan_rows(self.table, where("week >= 8")) == 20
        assert estimate_scan_rows(self.table, None) == 100
        assert estimate_scan_rows(self.table, where("week > 9")) == 0


class TestScanSelected:
    def assert_matches_legacy(self, table: Table, condition: str, num_threads: int = 1):
        predicate = where(condition)
        selected, report = scan_selected(table, predicate, num_threads=num_threads)
        expected = np.flatnonzero(evaluate_predicate(predicate, table))
        assert np.array_equal(selected, expected)
        assert selected.dtype == np.int64
        return report

    def test_identical_to_whole_table_evaluation(self):
        table = clustered_table()
        table_partitions(table, partition_rows=20)
        for condition in (
            "week >= 8",
            "week = 3 AND region = 'r0'",
            "region = 'r1' OR week < 1",
            "revenue BETWEEN 10 AND 20",
            "region LIKE 'r%'",
            "NOT week = 5",
            "week IN (1, 2, 9)",
            "region IN ('r0', 'zzz')",
        ):
            self.assert_matches_legacy(table, condition)

    def test_all_pruned_query(self):
        table = clustered_table()
        table_partitions(table, partition_rows=20)
        selected, report = scan_selected(table, where("week > 99"))
        assert len(selected) == 0
        assert report.partitions_scanned == 0
        assert report.partitions_pruned == 5
        assert report.rows_scanned == 0

    def test_report_counts(self):
        table = clustered_table()
        table_partitions(table, partition_rows=20)
        report = self.assert_matches_legacy(table, "week >= 8")
        assert report.partitions_total == 5
        assert report.partitions_scanned == 1
        assert report.partitions_pruned == 4
        assert report.rows_scanned == 20

    def test_no_predicate_scans_everything(self):
        table = clustered_table()
        selected, report = scan_selected(table, None)
        assert np.array_equal(selected, np.arange(100))
        assert report.partitions_pruned == 0

    def test_empty_table(self):
        table = clustered_table(0)
        selected, report = scan_selected(table, where("week > 1"))
        assert len(selected) == 0
        assert report.partitions_total == 0

    def test_multithreaded_identical(self):
        table = clustered_table(997)
        table_partitions(table, partition_rows=64)
        for condition in ("week >= 30", "region = 'r1' OR week < 4", "NOT week = 5"):
            self.assert_matches_legacy(table, condition, num_threads=4)

    def test_scan_mask_variant(self):
        table = clustered_table()
        mask, _ = scan_mask(table, where("week >= 8"))
        assert np.array_equal(mask, evaluate_predicate(where("week >= 8"), table))

    def test_private_counters_and_global_both_record(self):
        table = clustered_table()
        table_partitions(table, partition_rows=20)
        counters = ScanCounters()
        scan_selected(table, where("week >= 8"), counters=counters)
        snapshot = counters.snapshot()
        assert snapshot["scans"] == 1
        assert snapshot["partitions_pruned"] == 4
        assert snapshot["prune_fraction"] == 0.8
        counters.reset()
        assert counters.snapshot()["scans"] == 0


class TestNaNSemantics:
    def make_nan_table(self) -> Table:
        schema = Schema.of([measure("x")])
        return Table(
            "sales",
            schema,
            {"x": [1.0, 2.0, float("nan"), float("nan"), 5.0, 6.0]},
        )

    def test_ne_keeps_nan_partitions(self):
        table = self.make_nan_table()
        table_partitions(table, partition_rows=2)
        predicate = where("x <> 1")
        selected, _ = scan_selected(table, predicate)
        expected = np.flatnonzero(evaluate_predicate(predicate, table))
        assert np.array_equal(selected, expected)
        # NaN rows satisfy != (NumPy semantics): rows 1..5.
        assert selected.tolist() == [1, 2, 3, 4, 5]

    def test_ordered_comparisons_prune_all_nan_partitions(self):
        table = self.make_nan_table()
        parts = table_partitions(table, partition_rows=2)
        maybe = partition_maybe_mask(where("x < 100"), table, parts)
        assert maybe.tolist() == [True, False, True]
        predicate = where("x < 100")
        selected, _ = scan_selected(table, predicate)
        assert np.array_equal(
            selected, np.flatnonzero(evaluate_predicate(predicate, table))
        )
