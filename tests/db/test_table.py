"""Unit tests for repro.db.table."""

import numpy as np
import pytest

from repro.db.schema import ColumnKind, Schema, categorical_dimension, measure, numeric_dimension
from repro.db.table import Table
from repro.errors import TableError


@pytest.fixture()
def schema() -> Schema:
    return Schema.of(
        [numeric_dimension("x", ColumnKind.INT), categorical_dimension("c"), measure("m")]
    )


@pytest.fixture()
def table(schema: Schema) -> Table:
    return Table(
        "t", schema, {"x": [1, 2, 3, 4], "c": ["a", "b", "a", "b"], "m": [1.0, 2.0, 3.0, 4.0]}
    )


class TestConstruction:
    def test_lengths_must_match(self, schema):
        with pytest.raises(TableError):
            Table("t", schema, {"x": [1, 2], "c": ["a"], "m": [1.0, 2.0]})

    def test_missing_column_rejected(self, schema):
        with pytest.raises(TableError):
            Table("t", schema, {"x": [1], "c": ["a"]})

    def test_extra_column_rejected(self, schema):
        with pytest.raises(TableError):
            Table("t", schema, {"x": [1], "c": ["a"], "m": [1.0], "extra": [0]})

    def test_dtypes(self, table):
        assert table.column("x").dtype == np.int64
        assert table.column("m").dtype == np.float64
        assert table.column("c").dtype == object

    def test_from_rows(self, schema):
        rows = [{"x": 1, "c": "a", "m": 2.0}, {"x": 2, "c": "b", "m": 3.0}]
        table = Table.from_rows("t", schema, rows)
        assert table.num_rows == 2
        assert table.row(1) == {"x": 2, "c": "b", "m": 3.0}

    def test_from_rows_missing_column(self, schema):
        with pytest.raises(TableError):
            Table.from_rows("t", schema, [{"x": 1, "c": "a"}])


class TestAlgebra:
    def test_filter(self, table):
        filtered = table.filter(np.array([True, False, True, False]))
        assert filtered.num_rows == 2
        assert list(filtered.column("x")) == [1, 3]

    def test_filter_length_mismatch(self, table):
        with pytest.raises(TableError):
            table.filter(np.array([True]))

    def test_take_and_head(self, table):
        taken = table.take(np.array([3, 0]))
        assert list(taken.column("x")) == [4, 1]
        assert table.head(2).num_rows == 2
        assert table.head(100).num_rows == 4

    def test_select(self, table):
        projected = table.select(["m", "x"])
        assert projected.column_names() == ["m", "x"]

    def test_with_column_adds_and_replaces(self, table):
        extended = table.with_column(measure("m2"), [1.0, 1.0, 1.0, 1.0])
        assert "m2" in extended.schema
        replaced = extended.with_column(measure("m2"), [2.0, 2.0, 2.0, 2.0])
        assert float(replaced.column("m2")[0]) == 2.0

    def test_with_column_length_mismatch(self, table):
        with pytest.raises(TableError):
            table.with_column(measure("m2"), [1.0])

    def test_append(self, table, schema):
        other = Table("t", schema, {"x": [5], "c": ["a"], "m": [5.0]})
        combined = table.append(other)
        assert combined.num_rows == 5
        assert list(combined.column("x")) == [1, 2, 3, 4, 5]

    def test_append_schema_mismatch(self, table):
        other_schema = Schema.of([measure("only")])
        other = Table("t", other_schema, {"only": [1.0]})
        with pytest.raises(TableError):
            table.append(other)

    def test_renamed_shares_data(self, table):
        renamed = table.renamed("other")
        assert renamed.name == "other"
        assert renamed.num_rows == table.num_rows
        assert renamed.column("x") is table.column("x")

    def test_row_out_of_range(self, table):
        with pytest.raises(TableError):
            table.row(10)
