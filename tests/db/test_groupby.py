"""Unit tests for the vectorized group-by kernel and the shared HAVING
row-predicate evaluator."""

import numpy as np
import pytest

from repro.db.groupby import (
    GroupedSelection,
    factorize,
    iter_groups_legacy,
    normalize_value,
    segment_aggregate,
)
from repro.db.having import compile_row_predicate, evaluate_row_predicate
from repro.db.schema import ColumnKind, Schema, categorical_dimension, measure, numeric_dimension
from repro.db.table import Table
from repro.errors import ExpressionError
from repro.sqlparser import ast
from repro.sqlparser.parser import parse_query


def make_table(**columns) -> Table:
    schema_columns = []
    for name, values in columns.items():
        if all(isinstance(v, str) for v in values):
            schema_columns.append(categorical_dimension(name))
        elif all(isinstance(v, (int, np.integer)) for v in values):
            schema_columns.append(numeric_dimension(name, ColumnKind.INT))
        else:
            schema_columns.append(measure(name))
    return Table("t", Schema.of(schema_columns), columns)


def kernel_as_mask_pairs(table, mask, group_columns):
    """Render a factorization in the legacy (key, boolean mask) shape."""
    grouped = factorize(table, mask, group_columns)
    if grouped is None:
        return []
    return [
        (key, grouped.group_mask(group, len(table)))
        for group, key in enumerate(grouped.keys)
    ]


class TestFactorize:
    def test_matches_legacy_on_mixed_columns(self):
        table = make_table(
            region=["b", "a", "b", "a", "c", "b"],
            week=[2, 1, 2, 1, 3, 1],
            revenue=[1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        )
        mask = np.ones(6, dtype=bool)
        legacy = list(iter_groups_legacy(table, mask, ["region", "week"]))
        new = kernel_as_mask_pairs(table, mask, ["region", "week"])
        assert [k for k, _ in legacy] == [k for k, _ in new]
        for (_, a), (_, b) in zip(legacy, new):
            assert np.array_equal(a, b)

    def test_empty_selection_returns_none(self):
        table = make_table(region=["a", "b"], revenue=[1.0, 2.0])
        assert factorize(table, np.zeros(2, dtype=bool), ["region"]) is None
        assert list(iter_groups_legacy(table, np.zeros(2, dtype=bool), ["region"])) == []

    def test_single_group(self):
        table = make_table(region=["a", "a", "a"], revenue=[1.0, 2.0, 3.0])
        grouped = factorize(table, np.ones(3, dtype=bool), ["region"])
        assert grouped.keys == [("a",)]
        assert list(grouped.counts) == [3]
        assert list(grouped.group_indices(0)) == [0, 1, 2]

    def test_all_distinct_groups(self):
        table = make_table(week=[5, 3, 9, 1], revenue=[1.0, 2.0, 3.0, 4.0])
        grouped = factorize(table, np.ones(4, dtype=bool), ["week"])
        # First-seen order, not sorted order.
        assert grouped.keys == [(5,), (3,), (9,), (1,)]
        assert list(grouped.counts) == [1, 1, 1, 1]

    def test_keys_are_plain_python_values(self):
        table = make_table(week=[3, 3], price=[1.5, 1.5], revenue=[1.0, 2.0])
        grouped = factorize(table, np.ones(2, dtype=bool), ["week", "price"])
        (key,) = grouped.keys
        assert type(key[0]) is int and type(key[1]) is float
        assert key == (3, 1.5)

    def test_respects_mask_and_ascending_order_within_group(self):
        table = make_table(region=["a", "b", "a", "b", "a"], revenue=[1.0, 2.0, 3.0, 4.0, 5.0])
        mask = np.array([True, True, False, True, True])
        grouped = factorize(table, mask, ["region"])
        assert grouped.keys == [("a",), ("b",)]
        assert list(grouped.group_indices(0)) == [0, 4]
        assert list(grouped.group_indices(1)) == [1, 3]

    def test_nan_group_values_match_legacy(self):
        # Legacy dict keys keep every NaN distinct (NaN != NaN): one group
        # per NaN row.  The kernel must reproduce that.
        table = make_table(x=[1.0, float("nan"), 1.0, float("nan")], revenue=[1.0] * 4)
        mask = np.ones(4, dtype=bool)
        legacy = list(iter_groups_legacy(table, mask, ["x"]))
        new = kernel_as_mask_pairs(table, mask, ["x"])
        assert len(legacy) == len(new) == 3
        for (_, a), (_, b) in zip(legacy, new):
            assert np.array_equal(a, b)

    def test_sparse_int_column_falls_back_to_unique(self):
        # Span far beyond the dense bound: still groups correctly.
        table = make_table(big=[10**12, 5, 10**12, 5], revenue=[1.0, 2.0, 3.0, 4.0])
        grouped = factorize(table, np.ones(4, dtype=bool), ["big"])
        assert grouped.keys == [(10**12,), (5,)]
        assert list(grouped.counts) == [2, 2]

    def test_take_aligns_with_segments(self):
        table = make_table(region=["b", "a", "b", "a"], revenue=[1.0, 2.0, 3.0, 4.0])
        grouped = factorize(table, np.ones(4, dtype=bool), ["region"])
        taken = grouped.take(table.column("revenue"))
        segments = [
            list(taken[grouped.starts[g] : grouped.ends[g]])
            for g in range(grouped.num_groups)
        ]
        assert segments == [[1.0, 3.0], [2.0, 4.0]]


class TestSegmentAggregate:
    @pytest.fixture()
    def grouped(self):
        table = make_table(region=["a", "b", "a", "b", "a"], revenue=[1.0, 2.0, 3.0, 4.0, 5.0])
        return table, factorize(table, np.ones(5, dtype=bool), ["region"])

    def test_all_aggregate_functions(self, grouped):
        table, g = grouped
        values = np.asarray(table.column("revenue"), dtype=np.float64)
        assert list(segment_aggregate(ast.AggregateFunction.COUNT, g, None, 5)) == [3.0, 2.0]
        assert list(segment_aggregate(ast.AggregateFunction.FREQ, g, None, 5)) == [0.6, 0.4]
        assert list(segment_aggregate(ast.AggregateFunction.SUM, g, values, 5)) == [9.0, 6.0]
        assert list(segment_aggregate(ast.AggregateFunction.AVG, g, values, 5)) == [3.0, 3.0]
        assert list(segment_aggregate(ast.AggregateFunction.MIN, g, values, 5)) == [1.0, 2.0]
        assert list(segment_aggregate(ast.AggregateFunction.MAX, g, values, 5)) == [5.0, 4.0]

    def test_freq_with_zero_total(self, grouped):
        _, g = grouped
        assert list(segment_aggregate(ast.AggregateFunction.FREQ, g, None, 0)) == [0.0, 0.0]

    def test_measure_required(self, grouped):
        _, g = grouped
        with pytest.raises(ExpressionError):
            segment_aggregate(ast.AggregateFunction.SUM, g, None, 5)


class TestNormalizeValue:
    def test_numpy_scalars_become_python(self):
        assert type(normalize_value(np.int64(3))) is int
        assert type(normalize_value(np.float64(3.5))) is float
        assert normalize_value("s") == "s"


class TestHavingEvaluator:
    def make_query(self, sql: str) -> ast.Query:
        return parse_query(sql)

    def test_comparison_on_aggregate_and_group_column(self):
        query = self.make_query(
            "SELECT region, SUM(revenue) FROM t GROUP BY region HAVING sum_revenue > 10"
        )
        matches = compile_row_predicate(query.having, query)
        assert matches(("east",), {"sum_revenue": 11.0})
        assert not matches(("east",), {"sum_revenue": 9.0})

    def test_literal_column_orientation_flips(self):
        query = self.make_query(
            "SELECT region, SUM(revenue) FROM t GROUP BY region HAVING 10 < sum_revenue"
        )
        matches = compile_row_predicate(query.having, query)
        assert matches(("east",), {"sum_revenue": 11.0})
        assert not matches(("east",), {"sum_revenue": 10.0})

    def test_in_predicate_set_hoisted_once(self):
        query = self.make_query(
            "SELECT region, COUNT(*) FROM t GROUP BY region "
            "HAVING region IN ('east', 'west')"
        )
        matches = compile_row_predicate(query.having, query)
        assert matches(("east",), {"count_star": 1.0})
        assert not matches(("north",), {"count_star": 1.0})

    def test_aggregate_name_wins_over_group_column(self):
        # Resolution order: aggregates first, then group columns.
        query = ast.Query(
            select=(
                ast.SelectItem(ast.ColumnRef("region")),
                ast.SelectItem(
                    ast.Aggregate(ast.AggregateFunction.COUNT, ast.Star()),
                    alias="region",
                ),
            ),
            table="t",
            group_by=(ast.ColumnRef("region"),),
            having=ast.Comparison(
                ast.ColumnRef("region"), ast.ComparisonOp.GT, ast.Literal(2)
            ),
        )
        matches = compile_row_predicate(query.having, query)
        assert matches(("east",), {"region": 3.0})
        assert not matches(("east",), {"region": 1.0})

    def test_unknown_column_raises(self):
        query = self.make_query(
            "SELECT region, COUNT(*) FROM t GROUP BY region HAVING count_star > 1"
        )
        bad = ast.Comparison(ast.ColumnRef("nope"), ast.ComparisonOp.GT, ast.Literal(1))
        with pytest.raises(ExpressionError):
            compile_row_predicate(bad, query)

    def test_compat_wrapper_matches_compiled(self):
        from repro.db.executor import ResultRow

        query = self.make_query(
            "SELECT region, SUM(revenue) FROM t GROUP BY region "
            "HAVING sum_revenue >= 5 AND region <> 'west'"
        )
        row = ResultRow(group_values=("east",), aggregates={"sum_revenue": 5.0})
        assert evaluate_row_predicate(query.having, query, row)
        compiled = compile_row_predicate(query.having, query)
        assert compiled(row.group_values, row.aggregates)


class TestGroupedSelectionShape:
    def test_group_mask_round_trip(self):
        table = make_table(region=["a", "b", "a"], revenue=[1.0, 2.0, 3.0])
        grouped = factorize(table, np.ones(3, dtype=bool), ["region"])
        assert isinstance(grouped, GroupedSelection)
        mask_a = grouped.group_mask(0, 3)
        assert list(mask_a) == [True, False, True]
