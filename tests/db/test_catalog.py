"""Unit tests for the catalog and fact-dimension joins."""

import numpy as np
import pytest

from repro.db.catalog import Catalog, JoinCache, match_foreign_keys
from repro.db.schema import (
    ColumnKind,
    Schema,
    categorical_dimension,
    key,
    measure,
    numeric_dimension,
)
from repro.db.table import Table
from repro.errors import CatalogError
from repro.sqlparser import ast
from repro.sqlparser.parser import parse_query


class TestCatalogBasics:
    def test_add_and_lookup(self, tiny_table):
        catalog = Catalog()
        catalog.add_table(tiny_table, fact=True)
        assert catalog.has_table("tiny")
        assert catalog.is_fact_table("tiny")
        assert catalog.table_names() == ["tiny"]
        assert catalog.cardinality("tiny") == 5

    def test_duplicate_table_rejected(self, tiny_table):
        catalog = Catalog()
        catalog.add_table(tiny_table)
        with pytest.raises(CatalogError):
            catalog.add_table(tiny_table)

    def test_unknown_table(self):
        catalog = Catalog()
        with pytest.raises(CatalogError):
            catalog.table("missing")

    def test_replace_table(self, tiny_table):
        catalog = Catalog()
        catalog.add_table(tiny_table)
        replacement = tiny_table.head(2)
        catalog.replace_table(replacement)
        assert catalog.cardinality("tiny") == 2
        with pytest.raises(CatalogError):
            catalog.replace_table(tiny_table.renamed("nope"))

    def test_foreign_key_requires_existing_columns(self, star_catalog):
        with pytest.raises(CatalogError):
            star_catalog.add_foreign_key("orders", "missing", "stores", "store_id")

    def test_foreign_key_lookup(self, star_catalog):
        assert len(star_catalog.foreign_keys("orders")) == 1
        assert star_catalog.find_foreign_key("orders", "stores") is not None
        assert star_catalog.find_foreign_key("orders", "nothing") is None

    def test_dimension_attribute_columns(self, star_catalog):
        names = [c.name for c in star_catalog.dimension_attribute_columns("orders")]
        assert names == ["day"]

    def test_of_constructor(self, tiny_table):
        catalog = Catalog.of([tiny_table], fact_tables=["tiny"])
        assert catalog.is_fact_table("tiny")


class TestJoins:
    def test_denormalize_star_schema(self, star_catalog):
        query = parse_query(
            "SELECT AVG(amount) FROM orders JOIN stores ON store_id = store_id"
        )
        joined = star_catalog.denormalize(query)
        assert joined.num_rows == 6
        assert "region" in joined.schema
        # Foreign-key join keeps fact columns intact.
        assert list(joined.column("amount")) == [10.0, 20.0, 30.0, 40.0, 50.0, 60.0]
        # Region values follow the store assignment of each order.
        assert list(joined.column("region")) == ["east", "west", "east", "west", "east", "east"]

    def test_join_drops_unmatched_rows(self, star_catalog):
        # Point one order at a store that does not exist.
        orders = star_catalog.table("orders")
        broken = orders.with_column(key("store_id"), [0, 1, 0, 1, 2, 99])
        clause = ast.JoinClause(
            table="stores",
            left_column=ast.ColumnRef("store_id"),
            right_column=ast.ColumnRef("store_id"),
        )
        joined = star_catalog.join(broken, clause)
        assert joined.num_rows == 5

    def test_join_with_unresolvable_columns(self, star_catalog):
        clause = ast.JoinClause(
            table="stores",
            left_column=ast.ColumnRef("nonexistent"),
            right_column=ast.ColumnRef("also_missing"),
        )
        with pytest.raises(CatalogError):
            star_catalog.join(star_catalog.table("orders"), clause)

    def test_chained_joins(self):
        """Fact -> dim1 -> dim2 chains resolve because the first join widens the base."""
        fact = Table(
            "f",
            Schema.of([key("k1"), measure("m")]),
            {"k1": [0, 1], "m": [1.0, 2.0]},
        )
        dim1 = Table(
            "d1",
            Schema.of([key("k1"), key("k2")]),
            {"k1": [0, 1], "k2": [10, 11]},
        )
        dim2 = Table(
            "d2",
            Schema.of([key("k2"), categorical_dimension("label")]),
            {"k2": [10, 11], "label": ["a", "b"]},
        )
        catalog = Catalog.of([fact, dim1, dim2], fact_tables=["f"])
        query = parse_query(
            "SELECT label, SUM(m) FROM f JOIN d1 ON k1 = k1 JOIN d2 ON k2 = k2 GROUP BY label"
        )
        joined = catalog.denormalize(query)
        assert sorted(joined.column("label")) == ["a", "b"]


class TestMatchForeignKeys:
    def test_numeric_keys_match_first_occurrence(self):
        left = np.asarray([3, 1, 7, 3], dtype=np.int64)
        right = np.asarray([1, 3, 3, 5], dtype=np.int64)
        # Duplicate right key 3: the first occurrence (row 1) wins, exactly
        # like the legacy first-write dict index.
        assert list(match_foreign_keys(left, right)) == [1, 0, -1, 1]

    def test_object_keys_fall_back_to_hash_probe(self):
        left = np.asarray(["b", "a", "z"], dtype=object)
        right = np.asarray(["a", "b", "b"], dtype=object)
        assert list(match_foreign_keys(left, right)) == [1, 0, -1]

    def test_empty_right_side(self):
        left = np.asarray([1, 2], dtype=np.int64)
        right = np.asarray([], dtype=np.int64)
        assert list(match_foreign_keys(left, right)) == [-1, -1]


class TestJoinColumnAmbiguity:
    def make_catalog(self):
        # Both tables carry BOTH column names, so both ON orientations
        # resolve and only the qualifiers can disambiguate.
        fact = Table(
            "fact",
            Schema.of([key("a"), key("b"), measure("m")]),
            {"a": [0, 1, 2], "b": [9, 9, 9], "m": [1.0, 2.0, 3.0]},
        )
        dim = Table(
            "dim",
            Schema.of([key("a"), key("b"), categorical_dimension("label")]),
            {"a": [5, 6, 7], "b": [0, 1, 2], "label": ["x", "y", "z"]},
        )
        return Catalog.of([fact, dim], fact_tables=["fact"])

    def test_qualified_orientation_preferred(self):
        catalog = self.make_catalog()
        # fact.a matches dim.b (0, 1, 2); the first candidate orientation
        # (left column -> base side) would wrongly join fact.b to dim.a and
        # produce an empty result.
        clause = ast.JoinClause(
            table="dim",
            left_column=ast.ColumnRef("b", table="dim"),
            right_column=ast.ColumnRef("a", table="fact"),
        )
        joined = catalog.join(catalog.table("fact"), clause)
        assert joined.num_rows == 3
        assert list(joined.column("label")) == ["x", "y", "z"]

    def test_unqualified_ambiguity_keeps_first_candidate(self):
        catalog = self.make_catalog()
        clause = ast.JoinClause(
            table="dim",
            left_column=ast.ColumnRef("a"),
            right_column=ast.ColumnRef("b"),
        )
        # Without qualifiers the historical orientation (left -> base) wins.
        joined = catalog.join(catalog.table("fact"), clause)
        assert list(joined.column("label")) == ["x", "y", "z"]


class TestDenormalizationCache:
    def test_repeated_denormalize_hits_cache(self, star_catalog):
        query = parse_query(
            "SELECT AVG(amount) FROM orders JOIN stores ON store_id = store_id"
        )
        first = star_catalog.denormalize(query)
        hits_before = star_catalog.join_cache.hits
        second = star_catalog.denormalize(query)
        assert second is first
        assert star_catalog.join_cache.hits == hits_before + 1

    def test_replace_table_invalidates(self, star_catalog):
        query = parse_query(
            "SELECT AVG(amount) FROM orders JOIN stores ON store_id = store_id"
        )
        first = star_catalog.denormalize(query)
        assert first.num_rows == 6
        orders = star_catalog.table("orders")
        star_catalog.replace_table(orders.head(3))
        assert star_catalog.table_version("orders") == 1
        refreshed = star_catalog.denormalize(query)
        assert refreshed is not first
        assert refreshed.num_rows == 3

    def test_queries_without_joins_bypass_cache(self, star_catalog):
        query = parse_query("SELECT AVG(amount) FROM orders")
        assert star_catalog.denormalize(query) is star_catalog.table("orders")
        assert len(star_catalog.join_cache) == 0

    def test_join_all_with_token_memoises(self, star_catalog):
        query = parse_query(
            "SELECT AVG(amount) FROM orders JOIN stores ON store_id = store_id"
        )
        base = star_catalog.table("orders").head(4)
        joined = star_catalog.join_all(base, query.joins, cache_token=("prefix", 4))
        again = star_catalog.join_all(base, query.joins, cache_token=("prefix", 4))
        assert again is joined
        # Without a token nothing is cached or served.
        fresh = star_catalog.join_all(base, query.joins)
        assert fresh is not joined

    def test_cache_eviction_is_bounded(self):
        cache = JoinCache(capacity=2)
        table = Table("x", Schema.of([measure("m")]), {"m": [1.0]})
        for index in range(5):
            cache.put(("key", index), table)
        assert len(cache) == 2
        assert cache.get(("key", 4)) is table
        assert cache.get(("key", 0)) is None

    def test_eviction_is_lru_not_fifo(self):
        # A hot entry (hit between inserts) must survive a burst of one-off
        # insertions that would evict it under FIFO.
        cache = JoinCache(capacity=2)
        table = Table("x", Schema.of([measure("m")]), {"m": [1.0]})
        cache.put("hot", table)
        cache.put("cold", table)
        assert cache.get("hot") is table  # refresh recency
        cache.put("newer", table)  # evicts "cold", not "hot"
        assert cache.get("hot") is table
        assert cache.get("cold") is None


class TestAppendRows:
    """Satellite: appends extend cached denormalizations instead of clearing."""

    def _denorm_query(self):
        return parse_query(
            "SELECT AVG(amount) FROM orders JOIN stores ON store_id = store_id"
        )

    def _delta(self):
        return Table(
            "orders",
            Schema.of(
                [
                    numeric_dimension("day", ColumnKind.INT),
                    key("store_id"),
                    measure("amount"),
                ]
            ),
            {"day": [7, 8], "store_id": [1, 0], "amount": [70.0, 80.0]},
        )

    def test_append_rows_updates_table_and_versions(self, star_catalog):
        before_version = star_catalog.catalog_version
        updated = star_catalog.append_rows("orders", self._delta())
        assert star_catalog.table("orders") is updated
        assert updated.num_rows == 8
        assert star_catalog.table_version("orders") == 1
        assert star_catalog.catalog_version == before_version + 1

    def test_append_extends_cached_denormalization(self, star_catalog):
        query = self._denorm_query()
        cached_before = star_catalog.denormalize(query)
        assert cached_before.num_rows == 6
        star_catalog.append_rows("orders", self._delta())
        hits_before = star_catalog.join_cache.hits
        extended = star_catalog.denormalize(query)
        # Served from the cache entry written by append_rows: no re-join.
        assert star_catalog.join_cache.hits == hits_before + 1
        assert extended.num_rows == 8
        # The extension equals a from-scratch denormalization of the new table.
        star_catalog.join_cache.clear()
        recomputed = star_catalog.denormalize(query)
        assert extended.column_names() == recomputed.column_names()
        for name in extended.column_names():
            assert extended.column(name).tolist() == recomputed.column(name).tolist()

    def test_append_without_cached_join_is_lazy(self, star_catalog):
        star_catalog.append_rows("orders", self._delta())
        assert star_catalog.denormalize(self._denorm_query()).num_rows == 8

    def test_append_reuses_prefix_partitions(self, star_catalog):
        from repro.db.partition import table_partitions

        old = star_catalog.table("orders")
        before = table_partitions(old, partition_rows=3)
        star_catalog.append_rows("orders", self._delta())
        after = table_partitions(star_catalog.table("orders"))
        assert after.partition_rows == 3
        # 6 old rows / 3 = 2 full partitions reused verbatim, 1 new built.
        assert after.zone_maps[0] is before.zone_maps[0]
        assert after.zone_maps[1] is before.zone_maps[1]
        assert after.num_partitions == 3

    def test_stale_dimension_version_skips_extension(self, star_catalog):
        query = self._denorm_query()
        star_catalog.denormalize(query)
        stores = star_catalog.table("stores")
        star_catalog.replace_table(stores)  # bump dim version, clear cache
        star_catalog.append_rows("orders", self._delta())
        # No crash, and a fresh denormalization is still correct.
        assert star_catalog.denormalize(query).num_rows == 8
