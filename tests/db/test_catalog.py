"""Unit tests for the catalog and fact-dimension joins."""

import pytest

from repro.db.catalog import Catalog
from repro.db.schema import Schema, categorical_dimension, key, measure
from repro.db.table import Table
from repro.errors import CatalogError
from repro.sqlparser import ast
from repro.sqlparser.parser import parse_query


class TestCatalogBasics:
    def test_add_and_lookup(self, tiny_table):
        catalog = Catalog()
        catalog.add_table(tiny_table, fact=True)
        assert catalog.has_table("tiny")
        assert catalog.is_fact_table("tiny")
        assert catalog.table_names() == ["tiny"]
        assert catalog.cardinality("tiny") == 5

    def test_duplicate_table_rejected(self, tiny_table):
        catalog = Catalog()
        catalog.add_table(tiny_table)
        with pytest.raises(CatalogError):
            catalog.add_table(tiny_table)

    def test_unknown_table(self):
        catalog = Catalog()
        with pytest.raises(CatalogError):
            catalog.table("missing")

    def test_replace_table(self, tiny_table):
        catalog = Catalog()
        catalog.add_table(tiny_table)
        replacement = tiny_table.head(2)
        catalog.replace_table(replacement)
        assert catalog.cardinality("tiny") == 2
        with pytest.raises(CatalogError):
            catalog.replace_table(tiny_table.renamed("nope"))

    def test_foreign_key_requires_existing_columns(self, star_catalog):
        with pytest.raises(CatalogError):
            star_catalog.add_foreign_key("orders", "missing", "stores", "store_id")

    def test_foreign_key_lookup(self, star_catalog):
        assert len(star_catalog.foreign_keys("orders")) == 1
        assert star_catalog.find_foreign_key("orders", "stores") is not None
        assert star_catalog.find_foreign_key("orders", "nothing") is None

    def test_dimension_attribute_columns(self, star_catalog):
        names = [c.name for c in star_catalog.dimension_attribute_columns("orders")]
        assert names == ["day"]

    def test_of_constructor(self, tiny_table):
        catalog = Catalog.of([tiny_table], fact_tables=["tiny"])
        assert catalog.is_fact_table("tiny")


class TestJoins:
    def test_denormalize_star_schema(self, star_catalog):
        query = parse_query(
            "SELECT AVG(amount) FROM orders JOIN stores ON store_id = store_id"
        )
        joined = star_catalog.denormalize(query)
        assert joined.num_rows == 6
        assert "region" in joined.schema
        # Foreign-key join keeps fact columns intact.
        assert list(joined.column("amount")) == [10.0, 20.0, 30.0, 40.0, 50.0, 60.0]
        # Region values follow the store assignment of each order.
        assert list(joined.column("region")) == ["east", "west", "east", "west", "east", "east"]

    def test_join_drops_unmatched_rows(self, star_catalog):
        # Point one order at a store that does not exist.
        orders = star_catalog.table("orders")
        broken = orders.with_column(key("store_id"), [0, 1, 0, 1, 2, 99])
        clause = ast.JoinClause(
            table="stores",
            left_column=ast.ColumnRef("store_id"),
            right_column=ast.ColumnRef("store_id"),
        )
        joined = star_catalog.join(broken, clause)
        assert joined.num_rows == 5

    def test_join_with_unresolvable_columns(self, star_catalog):
        clause = ast.JoinClause(
            table="stores",
            left_column=ast.ColumnRef("nonexistent"),
            right_column=ast.ColumnRef("also_missing"),
        )
        with pytest.raises(CatalogError):
            star_catalog.join(star_catalog.table("orders"), clause)

    def test_chained_joins(self):
        """Fact -> dim1 -> dim2 chains resolve because the first join widens the base."""
        fact = Table(
            "f",
            Schema.of([key("k1"), measure("m")]),
            {"k1": [0, 1], "m": [1.0, 2.0]},
        )
        dim1 = Table(
            "d1",
            Schema.of([key("k1"), key("k2")]),
            {"k1": [0, 1], "k2": [10, 11]},
        )
        dim2 = Table(
            "d2",
            Schema.of([key("k2"), categorical_dimension("label")]),
            {"k2": [10, 11], "label": ["a", "b"]},
        )
        catalog = Catalog.of([fact, dim1, dim2], fact_tables=["f"])
        query = parse_query(
            "SELECT label, SUM(m) FROM f JOIN d1 ON k1 = k1 JOIN d2 ON k2 = k2 GROUP BY label"
        )
        joined = catalog.denormalize(query)
        assert sorted(joined.column("label")) == ["a", "b"]
