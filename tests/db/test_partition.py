"""Unit tests for the partitioned storage layer (zone maps, dictionaries)."""

from __future__ import annotations

import numpy as np

from repro.db import partition
from repro.db.partition import (
    column_dictionary,
    distinct_count,
    numeric_bounds,
    numeric_has_nan,
    table_partitions,
)
from repro.db.schema import (
    ColumnKind,
    Schema,
    categorical_dimension,
    measure,
    numeric_dimension,
)
from repro.db.table import Table


def make_table(num_rows: int, name: str = "t") -> Table:
    schema = Schema.of(
        [
            numeric_dimension("week", ColumnKind.INT),
            categorical_dimension("region"),
            measure("revenue"),
        ]
    )
    return Table(
        name,
        schema,
        {
            "week": np.arange(num_rows, dtype=np.int64),
            "region": [f"r{i % 5}" for i in range(num_rows)],
            "revenue": np.arange(num_rows, dtype=np.float64) * 0.5,
        },
    )


class TestPartitionBounds:
    def test_non_dividing_row_count(self):
        table = make_table(103)
        parts = table_partitions(table, partition_rows=16)
        assert parts.num_partitions == 7
        assert parts.bounds[0] == (0, 16)
        assert parts.bounds[-1] == (96, 103)
        assert sum(end - start for start, end in parts.bounds) == 103

    def test_exactly_dividing_row_count(self):
        table = make_table(64)
        parts = table_partitions(table, partition_rows=16)
        assert parts.num_partitions == 4
        assert parts.bounds[-1] == (48, 64)

    def test_empty_table(self):
        table = make_table(0)
        parts = table_partitions(table, partition_rows=16)
        assert parts.num_partitions == 0
        assert parts.bounds == ()

    def test_memoised_per_instance(self):
        table = make_table(50)
        assert table_partitions(table, partition_rows=8) is table_partitions(table)


class TestZoneMaps:
    def test_numeric_min_max(self):
        table = make_table(40)
        parts = table_partitions(table, partition_rows=10)
        zone = parts.zone_maps[1].numeric["week"]
        assert (zone.low, zone.high) == (10.0, 19.0)
        zone = parts.zone_maps[3].numeric["revenue"]
        assert (zone.low, zone.high) == (15.0, 19.5)
        assert not zone.has_nan

    def test_nan_aware_zones(self):
        schema = Schema.of([measure("x")])
        table = Table(
            "nans",
            schema,
            {"x": [1.0, float("nan"), 3.0, float("nan"), float("nan"), float("nan")]},
        )
        parts = table_partitions(table, partition_rows=3)
        first = parts.zone_maps[0].numeric["x"]
        assert (first.low, first.high, first.has_nan) == (1.0, 3.0, True)
        second = parts.zone_maps[1].numeric["x"]
        assert second.all_nan and second.has_nan

    def test_categorical_code_sets(self):
        table = make_table(10)  # regions cycle r0..r4
        parts = table_partitions(table, partition_rows=5)
        dictionary = column_dictionary(table, "region")
        for zone_map in parts.zone_maps:
            assert zone_map.categorical["region"] == frozenset(range(5))
        assert dictionary.values == ["r0", "r1", "r2", "r3", "r4"]


class TestColumnDictionary:
    def test_first_seen_codes(self):
        schema = Schema.of([categorical_dimension("c")])
        table = Table("d", schema, {"c": ["b", "a", "b", "c", "a"]})
        dictionary = column_dictionary(table, "c")
        assert dictionary.values == ["b", "a", "c"]
        assert dictionary.codes.tolist() == [0, 1, 0, 2, 1]
        assert dictionary.code_for("c") == 2
        assert dictionary.code_for("missing") is None

    def test_append_extends_without_renumbering(self):
        schema = Schema.of([categorical_dimension("c")])
        table = Table("d", schema, {"c": ["b", "a"]})
        base_dictionary = column_dictionary(table, "c")
        appended = table.append(Table("d", schema, {"c": ["z", "a"]}))
        extended = column_dictionary(appended, "c")
        assert extended.values[:2] == base_dictionary.values
        assert extended.codes[:2].tolist() == base_dictionary.codes.tolist()
        assert extended.codes.tolist() == [0, 1, 2, 1]

    def test_slice_view_shares_dictionary(self):
        table = make_table(30)
        parent = column_dictionary(table, "region")
        view = table.slice_rows(10, 20)
        sliced = column_dictionary(view, "region")
        assert sliced.values is parent.values
        assert sliced.index is parent.index
        assert sliced.match_cache is parent.match_cache
        assert sliced.codes.tolist() == parent.codes[10:20].tolist()


class TestAppendReuse:
    def test_full_prefix_partitions_reused(self):
        table = make_table(32)
        before = table_partitions(table, partition_rows=8)
        appended = table.append(make_table(20))
        after = table_partitions(appended)
        assert after.partition_rows == 8
        assert after.num_partitions == 7  # 52 rows / 8
        # The four full prefix partitions keep their zone maps verbatim.
        for index in range(4):
            assert after.zone_maps[index] is before.zone_maps[index]

    def test_partial_tail_partition_rebuilt(self):
        table = make_table(30)  # last partition 24..30 is partial
        before = table_partitions(table, partition_rows=8)
        appended = table.append(make_table(10))
        after = table_partitions(appended)
        assert [after.zone_maps[i] is before.zone_maps[i] for i in range(3)] == [True] * 3
        assert after.zone_maps[3] is not before.zone_maps[3]
        # Rebuilt tail covers the merged rows: weeks 24..29 from the old
        # table plus weeks 0..1 from the appended rows.
        zone = after.zone_maps[3].numeric["week"]
        assert (zone.low, zone.high) == (0.0, 29.0)
        assert after.bounds[-1] == (32, 40)

    def test_append_zone_maps_match_fresh_build(self):
        table = make_table(30)
        table_partitions(table, partition_rows=8)
        appended = table.append(make_table(10))
        reused = table_partitions(appended)
        fresh = Table("t", appended.schema, appended.to_dict())
        rebuilt = table_partitions(fresh, partition_rows=8)
        assert reused.bounds == rebuilt.bounds
        for left, right in zip(reused.zone_maps, rebuilt.zone_maps):
            assert left.numeric == right.numeric
            assert left.categorical == right.categorical


class TestTableStats:
    def test_numeric_bounds_merge(self):
        table = make_table(100)
        table_partitions(table, partition_rows=16)
        assert numeric_bounds(table, "week") == (0.0, 99.0)
        assert numeric_bounds(table, "revenue") == (0.0, 49.5)

    def test_numeric_bounds_all_nan(self):
        table = Table("n", Schema.of([measure("x")]), {"x": [float("nan")] * 4})
        assert numeric_bounds(table, "x") is None
        assert numeric_has_nan(table, "x")

    def test_distinct_count(self):
        table = make_table(100)
        assert distinct_count(table, "region") == 5

    def test_has_nan_false_for_clean_column(self):
        table = make_table(10)
        assert not numeric_has_nan(table, "revenue")


class TestLineageRegistry:
    def test_slice_parent_exposed(self):
        table = make_table(20)
        view = table.slice_rows(5, 15)
        parent, start, stop = partition.slice_parent(view)
        assert parent is table and (start, stop) == (5, 15)

    def test_slice_bounds_clamped(self):
        table = make_table(10)
        view = table.slice_rows(-5, 99)
        assert len(view) == 10
        assert view.column("week").tolist() == table.column("week").tolist()
