"""Unit tests for the experiment runner."""

import pytest

from repro.config import CostModelConfig, SamplingConfig, VerdictConfig
from repro.experiments.runner import (
    ExperimentRunner,
    ProfilePoint,
    actual_error_at_time,
    aggregate_profile_by_batch,
    error_bound_at_time,
    time_to_reach_bound,
)


TRAINING = [
    "SELECT AVG(revenue) FROM sales WHERE week >= 1 AND week <= 15",
    "SELECT AVG(revenue) FROM sales WHERE week >= 10 AND week <= 25",
    "SELECT AVG(revenue) FROM sales WHERE week >= 20 AND week <= 35",
    "SELECT AVG(revenue) FROM sales WHERE week >= 30 AND week <= 52",
    "SELECT COUNT(*) FROM sales WHERE week >= 1 AND week <= 26",
    "SELECT COUNT(*) FROM sales WHERE week >= 20 AND week <= 45",
    "SELECT MAX(revenue) FROM sales",  # unsupported: must be skipped silently
]

TEST_QUERIES = [
    "SELECT AVG(revenue) FROM sales WHERE week >= 12 AND week <= 30",
    "SELECT COUNT(*) FROM sales WHERE week >= 8 AND week <= 40",
]


@pytest.fixture()
def runner(sales_catalog):
    return ExperimentRunner(
        sales_catalog,
        sampling=SamplingConfig(sample_ratio=0.2, num_batches=4, seed=8),
        cost_model=CostModelConfig(cached=True),
        config=VerdictConfig(learn_length_scales=False),
    )


class TestRunner:
    def test_train_counts_supported_only(self, runner):
        recorded = runner.train_on(TRAINING)
        assert recorded == len(TRAINING) - 1

    def test_evaluate_produces_profiles(self, runner):
        runner.train_on(TRAINING)
        results = runner.evaluate(TEST_QUERIES, max_batches=3)
        assert len(results) == 2
        for result in results:
            assert result.supported
            assert len(result.baseline) == 3
            assert len(result.verdict) == 3
            # Elapsed time grows with batches; Verdict adds a small overhead.
            assert result.baseline[0].elapsed_seconds < result.baseline[-1].elapsed_seconds
            assert result.verdict[0].elapsed_seconds >= result.baseline[0].elapsed_seconds
            # Verdict's bounds are never worse than NoLearn's (Theorem 1).
            for base, improved in zip(result.baseline, result.verdict):
                assert improved.relative_error_bound <= base.relative_error_bound + 1e-9
            assert result.verdict_cells and result.baseline_cells

    def test_verdict_reduces_error_bounds_after_training(self, runner):
        runner.train_on(TRAINING)
        result = runner.evaluate_query(TEST_QUERIES[0], max_batches=1)
        assert result.verdict[0].relative_error_bound < result.baseline[0].relative_error_bound

    def test_time_bound_comparison(self, runner):
        runner.train_on(TRAINING)
        baseline, verdict = runner.evaluate_time_bound(TEST_QUERIES[0], time_budget_s=1.0)
        assert baseline.elapsed_seconds <= 1.0 + 1e-6
        assert verdict.relative_error_bound <= baseline.relative_error_bound + 1e-9


class TestProfileHelpers:
    def make_profile(self):
        return [
            ProfilePoint(1.0, 0.20, 0.10),
            ProfilePoint(2.0, 0.10, 0.06),
            ProfilePoint(3.0, 0.05, 0.02),
        ]

    def test_time_to_reach_bound(self):
        profile = self.make_profile()
        assert time_to_reach_bound(profile, 0.10) == 2.0
        assert time_to_reach_bound(profile, 0.01) == 3.0  # never reached -> last
        assert time_to_reach_bound([], 0.1) == float("inf")

    def test_error_bound_at_time(self):
        profile = self.make_profile()
        assert error_bound_at_time(profile, 2.5) == 0.10
        assert error_bound_at_time(profile, 10.0) == 0.05
        assert error_bound_at_time(profile, 0.5) == 0.20  # first batch fallback

    def test_actual_error_at_time(self):
        profile = self.make_profile()
        assert actual_error_at_time(profile, 2.5) == 0.06
        assert actual_error_at_time(profile, 0.1) == 0.10

    def test_aggregate_profile_by_batch(self, runner):
        runner.train_on(TRAINING[:4])
        results = runner.evaluate(TEST_QUERIES, max_batches=2)
        baseline_curve = aggregate_profile_by_batch(results, engine="baseline")
        verdict_curve = aggregate_profile_by_batch(results, engine="verdict")
        assert len(baseline_curve) == 2
        assert len(verdict_curve) == 2
        assert verdict_curve[0].relative_error_bound <= baseline_curve[0].relative_error_bound + 1e-9
        assert aggregate_profile_by_batch([], engine="verdict") == []
