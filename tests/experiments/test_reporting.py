"""Unit tests for the plain-text reporting helpers."""

from repro.experiments.reporting import format_series, format_table


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(
            ["name", "value"],
            [["alpha", 1.2345], ["much_longer_name", 10_000.0]],
            title="Example",
        )
        lines = text.splitlines()
        assert lines[0] == "Example"
        assert "name" in lines[1] and "value" in lines[1]
        assert "alpha" in text
        assert "much_longer_name" in text
        # Numeric formatting keeps sane precision.
        assert "1.234" in text or "1.235" in text
        assert "1e+04" in text

    def test_no_title(self):
        text = format_table(["a"], [[1]])
        assert text.splitlines()[0].startswith("a")

    def test_infinity(self):
        text = format_table(["x"], [[float("inf")]])
        assert "inf" in text


class TestFormatSeries:
    def test_series_lists_points(self):
        text = format_series("curve", [(1.0, 0.5), (2.0, 0.25)], x_label="time", y_label="error")
        assert "curve" in text
        assert "time" in text and "error" in text
        assert text.count("->") >= 3
