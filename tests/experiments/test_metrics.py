"""Unit tests for experiment metrics."""

import pytest

from repro.experiments.metrics import (
    actual_relative_error,
    bound_violation_rate,
    error_reduction,
    percentile,
    relative_error,
    speedup,
)


class TestRelativeError:
    def test_basic(self):
        assert relative_error(110.0, 100.0) == pytest.approx(0.1)
        assert relative_error(90.0, 100.0) == pytest.approx(0.1)

    def test_zero_truth(self):
        assert relative_error(0.0, 0.0) == 0.0
        assert relative_error(1.0, 0.0) == float("inf")

    def test_actual_relative_error_averages_cells(self):
        cells = [(110.0, 100.0), (95.0, 100.0), (1.0, 0.0)]
        # The zero-truth cell is ignored.
        assert actual_relative_error(cells) == pytest.approx((0.1 + 0.05) / 2)

    def test_actual_relative_error_empty(self):
        assert actual_relative_error([]) == 0.0


class TestReductionAndSpeedup:
    def test_error_reduction(self):
        assert error_reduction(0.2, 0.02) == pytest.approx(90.0)
        assert error_reduction(0.2, 0.2) == pytest.approx(0.0)
        assert error_reduction(0.0, 0.1) == 0.0

    def test_speedup(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)
        assert speedup(10.0, 0.0) == float("inf")


class TestBoundViolations:
    def test_rate(self):
        pairs = [(0.1, 0.05), (0.1, 0.2), (0.05, 0.04), (0.02, 0.03)]
        assert bound_violation_rate(pairs) == pytest.approx(0.5)
        assert bound_violation_rate([]) == 0.0

    def test_exact_boundary_is_not_a_violation(self):
        assert bound_violation_rate([(0.1, 0.1)]) == 0.0


class TestPercentile:
    def test_median_and_extremes(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(values, 0.5) == 3.0
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 5.0
        assert percentile(values, 0.25) == pytest.approx(2.0)

    def test_empty_and_invalid(self):
        assert percentile([], 0.5) == 0.0
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)
