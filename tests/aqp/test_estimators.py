"""Unit tests for the CLT estimators."""

import math

import numpy as np
import pytest

from repro.aqp.estimators import (
    avg_estimate,
    confidence_multiplier,
    count_estimate,
    freq_estimate,
    sum_estimate,
)


class TestFreqAndCount:
    def test_freq_point_estimate(self):
        estimate = freq_estimate(25, 100)
        assert estimate.value == pytest.approx(0.25)
        assert estimate.error == pytest.approx(math.sqrt(0.25 * 0.75 / 100))

    def test_freq_zero_selected_has_positive_error(self):
        estimate = freq_estimate(0, 100)
        assert estimate.value == 0.0
        assert estimate.error > 0.0

    def test_freq_no_rows_scanned(self):
        estimate = freq_estimate(0, 0)
        assert estimate.value == 0.0
        assert estimate.error == 1.0

    def test_freq_error_shrinks_with_sample_size(self):
        small = freq_estimate(10, 40)
        large = freq_estimate(1000, 4000)
        assert large.error < small.error

    def test_count_scales_freq(self):
        freq = freq_estimate(30, 100)
        count = count_estimate(30, 100, population_size=10_000)
        assert count.value == pytest.approx(freq.value * 10_000)
        assert count.error == pytest.approx(freq.error * 10_000)


class TestAvgAndSum:
    def test_avg_matches_sample_mean_and_se(self):
        values = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        estimate = avg_estimate(values)
        assert estimate.value == pytest.approx(3.0)
        assert estimate.error == pytest.approx(values.std(ddof=1) / math.sqrt(5))

    def test_avg_empty_uses_fallback(self):
        estimate = avg_estimate(np.array([]), fallback_std=2.5)
        assert estimate.value == 0.0
        assert estimate.error == pytest.approx(2.5)

    def test_avg_single_value_uses_fallback(self):
        estimate = avg_estimate(np.array([7.0]), fallback_std=1.5)
        assert estimate.value == 7.0
        assert estimate.error == pytest.approx(1.5)

    def test_sum_propagates_errors(self):
        avg = avg_estimate(np.array([10.0, 12.0, 8.0, 11.0]))
        count = count_estimate(4, 10, 1000)
        total = sum_estimate(avg, count)
        assert total.value == pytest.approx(avg.value * count.value)
        expected = math.sqrt((count.value * avg.error) ** 2 + (avg.value * count.error) ** 2)
        assert total.error == pytest.approx(expected)

    def test_avg_is_consistent(self, rng):
        """The standard error should be a valid 1-sigma error in practice."""
        population = rng.normal(50.0, 10.0, size=50_000)
        truth = population.mean()
        misses = 0
        trials = 200
        for _ in range(trials):
            sample = rng.choice(population, size=400, replace=False)
            estimate = avg_estimate(sample)
            if abs(estimate.value - truth) > 1.96 * estimate.error:
                misses += 1
        assert misses / trials < 0.12  # ~5% expected, generous margin


class TestConfidenceMultiplier:
    def test_95_percent(self):
        assert confidence_multiplier(0.95) == pytest.approx(1.96, abs=0.01)

    def test_99_percent(self):
        assert confidence_multiplier(0.99) == pytest.approx(2.576, abs=0.01)

    def test_monotone(self):
        assert confidence_multiplier(0.99) > confidence_multiplier(0.9)

    def test_invalid(self):
        with pytest.raises(ValueError):
            confidence_multiplier(1.5)
