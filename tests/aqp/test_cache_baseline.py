"""Unit tests for the answer-caching baseline (Baseline2, Appendix C.1)."""

import pytest

from repro.aqp.cache_baseline import CachingEngine
from repro.aqp.online_agg import OnlineAggregationEngine
from repro.config import SamplingConfig
from repro.sqlparser.parser import parse_query


@pytest.fixture()
def caching_engine(sales_catalog):
    inner = OnlineAggregationEngine(
        sales_catalog, sampling=SamplingConfig(sample_ratio=0.2, num_batches=3, seed=5)
    )
    return CachingEngine(inner, hit_cost_s=0.01)


class TestCachingEngine:
    def test_first_run_is_a_miss(self, caching_engine):
        query = parse_query("SELECT AVG(revenue) FROM sales WHERE week >= 1 AND week <= 10")
        answers = list(caching_engine.run(query))
        assert len(answers) == 3
        assert caching_engine.misses == 1
        assert caching_engine.hits == 0
        assert caching_engine.cache_size == 1

    def test_repeated_query_hits_cache(self, caching_engine):
        sql = "SELECT AVG(revenue) FROM sales WHERE week >= 1 AND week <= 10"
        first = caching_engine.final_answer(parse_query(sql))
        second_answers = list(caching_engine.run(parse_query(sql)))
        assert caching_engine.hits == 1
        assert len(second_answers) == 1
        hit = second_answers[0]
        assert hit.elapsed_seconds == pytest.approx(0.01)
        assert hit.rows_scanned == 0
        # The cached answer carries the accurate (final-batch) estimates.
        assert hit.scalar_estimate().value == pytest.approx(first.scalar_estimate().value)

    def test_structurally_identical_text_hits(self, caching_engine):
        caching_engine.final_answer(
            parse_query("SELECT COUNT(*) FROM sales WHERE week = 3")
        )
        caching_engine.final_answer(
            parse_query("select count(*) from sales where week = 3")
        )
        assert caching_engine.hits == 1

    def test_novel_query_misses(self, caching_engine):
        caching_engine.final_answer(parse_query("SELECT COUNT(*) FROM sales WHERE week = 3"))
        caching_engine.final_answer(parse_query("SELECT COUNT(*) FROM sales WHERE week = 4"))
        assert caching_engine.misses == 2
        assert caching_engine.hits == 0

    def test_cache_keeps_lowest_error_answer(self, caching_engine):
        sql = "SELECT AVG(revenue) FROM sales WHERE week >= 5 AND week <= 20"
        query = parse_query(sql)
        # First run: only one batch (higher error).
        for answer in caching_engine.run(query):
            break
        # A later full run should replace the cache entry with a better one.
        caching_engine.final_answer(query)
        assert caching_engine.cache_size == 1

    def test_catalog_passthrough(self, caching_engine, sales_catalog):
        assert caching_engine.catalog is sales_catalog
