"""Unit tests for the time-bound AQP engine."""

import pytest

from repro.aqp.time_bound import TimeBoundEngine
from repro.config import CostModelConfig, SamplingConfig
from repro.errors import AQPError
from repro.sqlparser.parser import parse_query


@pytest.fixture()
def engine(sales_catalog):
    return TimeBoundEngine(
        sales_catalog,
        sampling=SamplingConfig(sample_ratio=0.5, num_batches=4, seed=6),
        cost_model=CostModelConfig(
            cached=True, planning_overhead_s=0.1, cached_seconds_per_row=1e-4
        ),
    )


class TestTimeBoundEngine:
    def test_respects_time_budget(self, engine):
        query = parse_query("SELECT AVG(revenue) FROM sales")
        answer = engine.execute(query, time_budget_s=0.15)
        # 0.05s of scan at 1e-4 s/row -> about 500 rows.
        assert answer.rows_scanned <= 600
        assert answer.elapsed_seconds <= 0.16 + 1e-9

    def test_larger_budget_scans_more_rows(self, engine):
        query = parse_query("SELECT AVG(revenue) FROM sales")
        small = engine.execute(query, time_budget_s=0.12)
        large = engine.execute(query, time_budget_s=0.3)
        assert large.rows_scanned > small.rows_scanned
        assert large.scalar_estimate().error < small.scalar_estimate().error

    def test_budget_cannot_exceed_sample(self, engine):
        query = parse_query("SELECT AVG(revenue) FROM sales")
        answer = engine.execute(query, time_budget_s=1e6)
        assert answer.rows_scanned == engine.samples.sample_for("sales").sample_size

    def test_tiny_budget_still_scans_one_row(self, engine):
        query = parse_query("SELECT AVG(revenue) FROM sales")
        answer = engine.execute(query, time_budget_s=0.0501)
        assert answer.rows_scanned >= 1

    def test_invalid_budget(self, engine):
        with pytest.raises(AQPError):
            engine.execute(parse_query("SELECT COUNT(*) FROM sales"), time_budget_s=0.0)

    def test_unknown_table(self, engine):
        with pytest.raises(AQPError):
            engine.execute(parse_query("SELECT COUNT(*) FROM missing"), time_budget_s=1.0)

    def test_join_budget_accounts_for_dimension_tables(self, star_catalog):
        engine = TimeBoundEngine(
            star_catalog,
            sampling=SamplingConfig(sample_ratio=1.0, num_batches=2, seed=1),
            cost_model=CostModelConfig(
                cached=True,
                planning_overhead_s=0.0,
                cached_seconds_per_row=1e-3,
                unsampled_table_scan_penalty_s=0.001,
            ),
        )
        query = parse_query(
            "SELECT region, AVG(amount) FROM orders JOIN stores ON store_id = store_id "
            "GROUP BY region"
        )
        answer = engine.execute(query, time_budget_s=0.01)
        assert answer.rows_scanned >= 1
        assert len(answer.rows) >= 1
