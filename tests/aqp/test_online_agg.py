"""Unit tests for the online aggregation engine (NoLearn)."""

import pytest

from repro.aqp.online_agg import OnlineAggregationEngine
from repro.config import CostModelConfig, SamplingConfig
from repro.db.executor import ExactExecutor
from repro.errors import AQPError
from repro.sqlparser.parser import parse_query


@pytest.fixture()
def engine(sales_catalog):
    return OnlineAggregationEngine(
        sales_catalog,
        sampling=SamplingConfig(sample_ratio=0.3, num_batches=5, seed=2),
        cost_model=CostModelConfig(cached=True),
    )


class TestOnlineAggregation:
    def test_yields_one_answer_per_batch(self, engine):
        query = parse_query("SELECT AVG(revenue) FROM sales WHERE week >= 5 AND week <= 25")
        answers = list(engine.run(query))
        assert len(answers) == 5
        assert [a.batches_processed for a in answers] == [1, 2, 3, 4, 5]
        rows_scanned = [a.rows_scanned for a in answers]
        assert rows_scanned == sorted(rows_scanned)

    def test_elapsed_time_increases_with_batches(self, engine):
        query = parse_query("SELECT COUNT(*) FROM sales WHERE week >= 1 AND week <= 10")
        answers = list(engine.run(query))
        elapsed = [a.elapsed_seconds for a in answers]
        assert elapsed == sorted(elapsed)
        assert elapsed[0] >= engine.cost_model.planning_overhead_s

    def test_error_bounds_shrink_as_batches_accumulate(self, engine):
        query = parse_query("SELECT AVG(revenue) FROM sales")
        answers = list(engine.run(query))
        first_error = answers[0].scalar_estimate().error
        last_error = answers[-1].scalar_estimate().error
        assert last_error < first_error

    def test_final_answer_close_to_exact(self, engine, sales_catalog):
        query = parse_query("SELECT AVG(revenue) FROM sales WHERE week >= 10 AND week <= 40")
        exact = ExactExecutor(sales_catalog).execute(query).scalar()
        final = engine.final_answer(query)
        estimate = final.scalar_estimate()
        assert abs(estimate.value - exact) <= 4 * estimate.error + 1e-9

    def test_count_estimate_scales_to_population(self, engine, sales_catalog):
        query = parse_query("SELECT COUNT(*) FROM sales WHERE week >= 1 AND week <= 26")
        exact = ExactExecutor(sales_catalog).execute(query).scalar()
        final = engine.final_answer(query)
        estimate = final.scalar_estimate()
        assert estimate.value == pytest.approx(exact, rel=0.2)

    def test_group_by_rows_have_internal_estimates(self, engine):
        query = parse_query(
            "SELECT region, SUM(revenue), COUNT(*) FROM sales WHERE week <= 30 GROUP BY region"
        )
        final = engine.final_answer(query)
        assert len(final.rows) >= 2
        for row in final.rows:
            sum_estimate = row.estimates["sum_revenue"]
            assert sum_estimate.internal.avg_value is not None
            assert sum_estimate.internal.freq_value > 0
            count_estimate = row.estimates["count_star"]
            assert count_estimate.internal.avg_value is None

    def test_execute_with_stop_condition(self, engine):
        query = parse_query("SELECT AVG(revenue) FROM sales")
        answers = engine.execute(query, stop=lambda a: a.batches_processed >= 2)
        assert len(answers) == 2

    def test_execute_with_max_batches(self, engine):
        query = parse_query("SELECT AVG(revenue) FROM sales")
        answers = engine.execute(query, max_batches=3)
        assert len(answers) == 3

    def test_first_answer(self, engine):
        query = parse_query("SELECT AVG(revenue) FROM sales")
        first = engine.first_answer(query)
        assert first.batches_processed == 1

    def test_unknown_table_raises(self, engine):
        with pytest.raises(AQPError):
            list(engine.run(parse_query("SELECT COUNT(*) FROM missing")))

    def test_join_charges_dimension_scan(self, star_catalog):
        engine = OnlineAggregationEngine(
            star_catalog,
            sampling=SamplingConfig(sample_ratio=1.0, num_batches=2, seed=1),
            cost_model=CostModelConfig(cached=True),
        )
        no_join = parse_query("SELECT AVG(amount) FROM orders")
        with_join = parse_query(
            "SELECT region, AVG(amount) FROM orders JOIN stores ON store_id = store_id "
            "GROUP BY region"
        )
        plain = list(engine.run(no_join))[-1]
        joined = list(engine.run(with_join))[-1]
        assert joined.elapsed_seconds > plain.elapsed_seconds

    def test_ssd_cost_model_is_slower(self, sales_catalog):
        sampling = SamplingConfig(sample_ratio=0.2, num_batches=3, seed=4)
        cached = OnlineAggregationEngine(
            sales_catalog, sampling=sampling, cost_model=CostModelConfig(cached=True)
        )
        ssd = OnlineAggregationEngine(
            sales_catalog, sampling=sampling, cost_model=CostModelConfig(cached=False)
        )
        query = parse_query("SELECT AVG(revenue) FROM sales")
        assert ssd.final_answer(query).elapsed_seconds > cached.final_answer(query).elapsed_seconds

    def test_having_filters_estimated_groups(self, engine):
        query = parse_query(
            "SELECT region, COUNT(*) FROM sales GROUP BY region HAVING count_star >= 0"
        )
        final = engine.final_answer(query)
        assert len(final.rows) >= 1
        strict = parse_query(
            "SELECT region, COUNT(*) FROM sales GROUP BY region HAVING count_star > 1000000"
        )
        assert len(engine.final_answer(strict).rows) == 0
