"""Property-based equivalence of the partitioned scan layer.

The partitioned, pruned, (optionally) multi-threaded execution path must be
**byte-identical** to the retained legacy paths:

* ``scan_selected`` == ``np.flatnonzero(evaluate_predicate(...))`` for every
  predicate shape, row count (including counts that do not divide the
  partition size), NaN placement, and append history;
* ``ExactExecutor(partitioned=True, num_threads=k)`` == the legacy
  ``vectorized=False`` row loop for whole query results (group order, key
  tuples, aggregate floats);
* dictionary-encoded categorical predicates == the retained per-row loops;
* repeated multi-threaded scans of the same query are deterministic
  (the thread-pool hammer).
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.db.catalog import Catalog
from repro.db.executor import ExactExecutor
from repro.db.expressions import _comparison_mask, evaluate_predicate
from repro.db.partition import table_partitions
from repro.db.scan import scan_selected
from repro.db.schema import (
    ColumnKind,
    Schema,
    categorical_dimension,
    measure,
    numeric_dimension,
)
from repro.db.table import Table
from repro.sqlparser import ast
from repro.sqlparser.parser import parse_query

REGIONS = ["east", "west", "north", "sd"]

CONDITIONS = [
    "week >= 6",
    "week < 3",
    "week = 4",
    "week <> 4",
    "region = 'east'",
    "region <> 'east'",
    "region = 'absent'",
    "region IN ('east', 'sd')",
    "region NOT IN ('east', 'sd')",
    "region LIKE '%s%'",
    "region NOT LIKE 'e___'",
    "region BETWEEN 'a' AND 'n'",
    "m BETWEEN -10 AND 10",
    "week IN (0, 7, 99)",
    "week >= 2 AND region = 'west'",
    "week < 1 OR week > 8 OR region = 'north'",
    "NOT week = 3",
    "week > 100",  # prunes everything
    "m + week > 5",  # derived expression: never prunes, still correct
]

QUERIES = [
    "SELECT COUNT(*), FREQ(*) FROM t WHERE {cond}",
    "SELECT SUM(m), AVG(m), MIN(m), MAX(m) FROM t WHERE {cond}",
    "SELECT region, SUM(m), COUNT(*) FROM t WHERE {cond} GROUP BY region",
    "SELECT week, region, AVG(m) FROM t WHERE {cond} GROUP BY week, region",
]


def build_table(weeks, regions, measures) -> Table:
    schema = Schema.of(
        [
            numeric_dimension("week", ColumnKind.INT),
            categorical_dimension("region"),
            measure("m"),
        ]
    )
    return Table("t", schema, {"week": weeks, "region": regions, "m": measures})


def assert_results_identical(left, right):
    assert [r.group_values for r in left.rows] == [r.group_values for r in right.rows]
    for new_row, old_row in zip(left.rows, right.rows):
        for name in new_row.aggregates:
            a, b = new_row.aggregates[name], old_row.aggregates[name]
            assert a == b or (math.isnan(a) and math.isnan(b)), (name, a, b)


table_inputs = st.integers(min_value=0, max_value=120).flatmap(
    lambda rows: st.tuples(
        st.lists(
            st.integers(min_value=0, max_value=9), min_size=rows, max_size=rows
        ),
        st.lists(st.sampled_from(REGIONS), min_size=rows, max_size=rows),
        st.lists(
            st.sampled_from([-4.5, 0.0, 1.25, 3.0, 88.0, float("nan")]),
            min_size=rows,
            max_size=rows,
        ),
    )
)


class TestScanSelectionEquivalence:
    @given(
        data=table_inputs,
        partition_rows=st.sampled_from([3, 7, 16]),
        condition=st.sampled_from(CONDITIONS),
    )
    @settings(max_examples=120, deadline=None)
    def test_selected_indices_match_legacy_mask(self, data, partition_rows, condition):
        weeks, regions, measures = data
        table = build_table(weeks, regions, measures)
        table_partitions(table, partition_rows=partition_rows)
        predicate = parse_query(f"SELECT COUNT(*) FROM t WHERE {condition}").where
        selected, report = scan_selected(table, predicate)
        expected = np.flatnonzero(evaluate_predicate(predicate, table))
        assert np.array_equal(selected, expected)
        assert report.rows_scanned <= report.rows_total
        assert report.partitions_scanned + report.partitions_pruned == report.partitions_total


class TestExecutorEquivalence:
    @given(
        data=table_inputs,
        partition_rows=st.sampled_from([4, 9, 32]),
        condition=st.sampled_from(CONDITIONS),
        query_template=st.sampled_from(QUERIES),
        num_threads=st.sampled_from([1, 4]),
    )
    @settings(max_examples=120, deadline=None)
    def test_partitioned_equals_legacy_row_loop(
        self, data, partition_rows, condition, query_template, num_threads
    ):
        weeks, regions, measures = data
        table = build_table(weeks, regions, measures)
        table_partitions(table, partition_rows=partition_rows)
        catalog = Catalog.of([table], fact_tables=["t"])
        query = parse_query(query_template.format(cond=condition))

        partitioned = ExactExecutor(
            catalog, vectorized=True, partitioned=True, num_threads=num_threads
        )
        legacy = ExactExecutor(catalog, vectorized=False, partitioned=False)
        assert_results_identical(partitioned.execute(query), legacy.execute(query))

    @given(data=table_inputs, condition=st.sampled_from(CONDITIONS))
    @settings(max_examples=40, deadline=None)
    def test_append_mid_trace_stays_identical(self, data, condition):
        weeks, regions, measures = data
        table = build_table(weeks, regions, measures)
        table_partitions(table, partition_rows=8)
        catalog = Catalog.of([table], fact_tables=["t"])
        query = parse_query(f"SELECT region, SUM(m), COUNT(*) FROM t WHERE {condition} GROUP BY region")
        partitioned = ExactExecutor(catalog, partitioned=True)
        legacy = ExactExecutor(catalog, vectorized=False, partitioned=False)
        assert_results_identical(partitioned.execute(query), legacy.execute(query))
        # Append (reusing prefix partitions) and compare again.
        delta = build_table(weeks[: len(weeks) // 2], regions[: len(weeks) // 2], measures[: len(weeks) // 2])
        catalog.append_rows("t", delta)
        assert_results_identical(partitioned.execute(query), legacy.execute(query))


class TestDictionaryPredicateEquivalence:
    """Satellite: dictionary-code comparisons == the retained per-row loops."""

    object_columns = st.lists(
        st.sampled_from(["east", "west", "", "e", 3, 7.5, None, float("nan")]),
        min_size=0,
        max_size=60,
    )

    @given(values=object_columns, literal=st.sampled_from(["east", "", 3, 7.5]))
    @settings(max_examples=80, deadline=None)
    def test_equality_mask_identical(self, values, literal):
        schema = Schema.of([categorical_dimension("c")])
        table = Table("t", schema, {"c": values})
        column = table.column("c")
        for op in (ast.ComparisonOp.EQ, ast.ComparisonOp.NE):
            legacy = _comparison_mask(column, op, literal)
            predicate = ast.Comparison(
                left=ast.ColumnRef(name="c"), op=op, right=ast.Literal(value=literal)
            )
            new = evaluate_predicate(predicate, table)
            assert np.array_equal(new, legacy)

    @given(values=object_columns)
    @settings(max_examples=60, deadline=None)
    def test_in_list_mask_identical(self, values):
        schema = Schema.of([categorical_dimension("c")])
        table = Table("t", schema, {"c": values})
        allowed = ("east", 3, "")
        for negated in (False, True):
            legacy = np.asarray([v in set(allowed) for v in table.column("c")], dtype=bool)
            if negated:
                legacy = ~legacy
            predicate = ast.InPredicate(
                column=ast.ColumnRef(name="c"), values=allowed, negated=negated
            )
            assert np.array_equal(evaluate_predicate(predicate, table), legacy)

    @given(
        values=st.lists(st.sampled_from(REGIONS + ["zz", "aaa"]), max_size=60),
        low=st.sampled_from(["a", "e", "n"]),
        high=st.sampled_from(["f", "w", "zzz"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_between_mask_identical(self, values, low, high):
        schema = Schema.of([categorical_dimension("c")])
        table = Table("t", schema, {"c": values})
        legacy = np.asarray([low <= v <= high for v in table.column("c")], dtype=bool)
        predicate = ast.BetweenPredicate(column=ast.ColumnRef(name="c"), low=low, high=high)
        assert np.array_equal(evaluate_predicate(predicate, table), legacy)

    @given(
        values=st.lists(st.sampled_from(REGIONS + ["", "easter"]), max_size=60),
        pattern=st.sampled_from(["e%", "%st", "_est", "%s%", "east", "%"]),
        negated=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_like_mask_identical(self, values, pattern, negated):
        from repro.db.expressions import _like_regex

        schema = Schema.of([categorical_dimension("c")])
        table = Table("t", schema, {"c": values})
        regex = _like_regex(pattern)
        legacy = np.asarray(
            [regex.fullmatch(str(v)) is not None for v in table.column("c")], dtype=bool
        )
        if negated:
            legacy = ~legacy
        predicate = ast.LikePredicate(
            column=ast.ColumnRef(name="c"), pattern=pattern, negated=negated
        )
        assert np.array_equal(evaluate_predicate(predicate, table), legacy)


class TestThreadPoolDeterminism:
    def test_hammer_repeated_parallel_scans_identical(self):
        rng = np.random.default_rng(3)
        rows = 5000
        table = build_table(
            np.sort(rng.integers(0, 10, rows)).tolist(),
            [REGIONS[i] for i in rng.integers(0, len(REGIONS), rows)],
            rng.normal(0.0, 10.0, rows).tolist(),
        )
        table_partitions(table, partition_rows=256)
        catalog = Catalog.of([table], fact_tables=["t"])
        query = parse_query(
            "SELECT region, SUM(m), AVG(m), COUNT(*) FROM t "
            "WHERE week >= 4 AND region <> 'sd' GROUP BY region"
        )
        reference = ExactExecutor(catalog, vectorized=False, partitioned=False).execute(query)
        executor = ExactExecutor(catalog, partitioned=True, num_threads=4)
        predicate = query.where
        first_selected, _ = scan_selected(table, predicate, num_threads=4)
        for _ in range(25):
            selected, _ = scan_selected(table, predicate, num_threads=4)
            assert np.array_equal(selected, first_selected)
            assert_results_identical(executor.execute(query), reference)
