"""Property-based tests (hypothesis) for the core invariants.

These exercise the paper's formal claims over randomised inputs:

* Theorem 1: the improved error never exceeds the raw error;
* the block-form inference (Eq. 11/12) equals direct conditioning (Eq. 4/5);
* covariance factor matrices are symmetric positive semi-definite with
  factors in [0, 1] and correlations bounded by one;
* the analytic kernel double integral matches numeric quadrature;
* the CLT estimators and error metrics behave sanely for arbitrary inputs.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.aqp.estimators import avg_estimate, count_estimate, freq_estimate, sum_estimate
from repro.core.covariance import AggregateModel, SnippetCovariance
from repro.core.inference import GaussianInference
from repro.core.kernel import se_average_factor, se_double_integral
from repro.core.regions import (
    AttributeDomains,
    NumericDomain,
    NumericRange,
    Region,
)
from repro.core.snippet import AggregateKind, Snippet, SnippetKey
from repro.experiments.metrics import error_reduction, percentile, relative_error

KEY = SnippetKey(kind=AggregateKind.AVG, table="t", attribute="m")
DOMAINS = AttributeDomains(numeric={"x": NumericDomain("x", 0.0, 10.0, 0.01)})


ranges = st.tuples(
    st.floats(min_value=0.0, max_value=9.0),
    st.floats(min_value=0.05, max_value=3.0),
).map(lambda pair: (pair[0], min(pair[0] + pair[1], 10.0)))

length_scales = st.floats(min_value=0.05, max_value=30.0)


def make_snippet(bounds: tuple[float, float], answer: float, error: float) -> Snippet:
    region = Region(numeric_ranges=(NumericRange("x", bounds[0], bounds[1]),))
    return Snippet(key=KEY, region=region, raw_answer=answer, raw_error=error)


snippet_lists = st.lists(
    st.tuples(
        ranges,
        st.floats(min_value=-100.0, max_value=100.0),
        st.floats(min_value=0.01, max_value=5.0),
    ),
    min_size=1,
    max_size=8,
).map(lambda items: [make_snippet(*item) for item in items])


class TestKernelProperties:
    @given(
        a=st.floats(min_value=-5, max_value=5),
        width_1=st.floats(min_value=0.01, max_value=4),
        c=st.floats(min_value=-5, max_value=5),
        width_2=st.floats(min_value=0.01, max_value=4),
        scale=length_scales,
    )
    @settings(max_examples=60, deadline=None)
    def test_double_integral_bounds(self, a, width_1, c, width_2, scale):
        value = float(se_double_integral(a, a + width_1, c, c + width_2, scale))
        assert value >= 0.0
        # The integrand is at most one, so the integral is at most the area.
        assert value <= width_1 * width_2 + 1e-9

    @given(
        a=st.floats(min_value=-5, max_value=5),
        width_1=st.floats(min_value=0.01, max_value=4),
        c=st.floats(min_value=-5, max_value=5),
        width_2=st.floats(min_value=0.01, max_value=4),
        scale=length_scales,
    )
    @settings(max_examples=60, deadline=None)
    def test_average_factor_in_unit_interval_and_symmetric(self, a, width_1, c, width_2, scale):
        forward = float(se_average_factor(a, a + width_1, c, c + width_2, scale))
        backward = float(se_average_factor(c, c + width_2, a, a + width_1, scale))
        assert 0.0 <= forward <= 1.0 + 1e-12
        assert forward == pytest.approx(backward, rel=1e-9, abs=1e-12)


class TestCovarianceProperties:
    @given(snippets=snippet_lists, scale=length_scales)
    @settings(max_examples=40, deadline=None)
    def test_factor_matrix_symmetric_psd_and_bounded(self, snippets, scale):
        covariance = SnippetCovariance(
            DOMAINS, AggregateModel(key=KEY, length_scales={"x": scale})
        )
        matrix = covariance.factor_matrix(snippets)
        assert np.all(matrix >= -1e-12)
        assert np.all(matrix <= 1.0 + 1e-9)
        np.testing.assert_allclose(matrix, matrix.T, atol=1e-10)
        eigenvalues = np.linalg.eigvalsh(matrix)
        assert eigenvalues.min() >= -1e-7
        # Implied correlations are bounded by one.
        diagonal = np.sqrt(np.outer(np.diag(matrix), np.diag(matrix)))
        with np.errstate(invalid="ignore", divide="ignore"):
            correlations = np.where(diagonal > 0, matrix / diagonal, 0.0)
        assert np.nanmax(correlations) <= 1.0 + 1e-6


class TestInferenceProperties:
    @given(
        snippets=snippet_lists,
        scale=length_scales,
        new_range=ranges,
        new_answer=st.floats(min_value=-100.0, max_value=100.0),
        new_error=st.floats(min_value=0.0, max_value=5.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_theorem1_improved_error_never_larger(
        self, snippets, scale, new_range, new_answer, new_error
    ):
        inference = GaussianInference()
        model = AggregateModel(key=KEY, length_scales={"x": scale})
        prepared = inference.prepare(KEY, snippets, model, DOMAINS)
        new = make_snippet(new_range, new_answer, new_error)
        result = inference.infer(prepared, new)
        assert result.model_error <= new_error + 1e-9
        assert math.isfinite(result.model_answer)

    @given(
        snippets=snippet_lists,
        new_range=ranges,
        new_answer=st.floats(min_value=-50.0, max_value=50.0),
        new_error=st.floats(min_value=0.01, max_value=3.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_block_form_equals_direct_conditioning(
        self, snippets, new_range, new_answer, new_error
    ):
        from repro.config import VerdictConfig

        inference = GaussianInference(VerdictConfig(calibrate_model_variance=False))
        model = AggregateModel(key=KEY, length_scales={"x": 2.0})
        new = make_snippet(new_range, new_answer, new_error)
        prepared = inference.prepare(KEY, snippets, model, DOMAINS)
        block = inference.infer(prepared, new)
        direct = inference.infer_direct(KEY, snippets, new, model, DOMAINS)
        # The two computations are algebraically identical; tolerances are
        # loose enough to absorb numerical conditioning when hypothesis
        # generates (near-)duplicate regions.
        assert block.model_answer == pytest.approx(direct.model_answer, rel=1e-2, abs=1e-5)
        assert block.model_error == pytest.approx(direct.model_error, rel=1e-2, abs=1e-5)


class TestEstimatorProperties:
    @given(
        selected=st.integers(min_value=0, max_value=1_000),
        extra=st.integers(min_value=0, max_value=1_000),
        population=st.integers(min_value=1, max_value=10_000_000),
    )
    @settings(max_examples=80, deadline=None)
    def test_freq_and_count_sane(self, selected, extra, population):
        scanned = selected + extra
        freq = freq_estimate(selected, scanned)
        assert 0.0 <= freq.value <= 1.0
        assert freq.error >= 0.0
        count = count_estimate(selected, scanned, population)
        assert 0.0 <= count.value <= population
        assert count.error >= 0.0

    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6), min_size=0, max_size=50
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_avg_and_sum_finite(self, values):
        array = np.asarray(values, dtype=np.float64)
        avg = avg_estimate(array, fallback_std=1.0)
        assert math.isfinite(avg.value) and avg.error >= 0.0
        count = count_estimate(len(values), max(len(values), 1), 1_000)
        total = sum_estimate(avg, count)
        assert math.isfinite(total.value) and total.error >= 0.0


class TestMetricProperties:
    @given(
        estimate=st.floats(min_value=-1e9, max_value=1e9),
        truth=st.floats(min_value=-1e9, max_value=1e9),
    )
    @settings(max_examples=80, deadline=None)
    def test_relative_error_non_negative(self, estimate, truth):
        assert relative_error(estimate, truth) >= 0.0

    @given(
        baseline=st.floats(min_value=1e-6, max_value=1e3),
        improvement=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_error_reduction_bounded_by_100(self, baseline, improvement):
        improved = baseline * improvement
        reduction = error_reduction(baseline, improved)
        assert -1e-9 <= reduction <= 100.0 + 1e-9

    @given(
        values=st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=1, max_size=30),
        fraction=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_percentile_within_range(self, values, fraction):
        result = percentile(values, fraction)
        assert min(values) - 1e-9 <= result <= max(values) + 1e-9
