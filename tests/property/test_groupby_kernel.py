"""Property-based equivalence of the vectorized group-by kernel.

The factorized kernel (`repro.db.groupby.factorize` + segment aggregation)
must reproduce the retained legacy path (`iter_groups_legacy`, the original
per-row loop) *byte for byte*: same group order, same key tuples (including
Python value types), same aggregate floats.  The strategies sweep int, float,
and object group columns, empty selections, single-group and all-distinct
extremes, and multi-column keys.
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.db.executor import ExactExecutor
from repro.db.catalog import Catalog
from repro.db.groupby import factorize, iter_groups_legacy
from repro.db.schema import ColumnKind, Schema, categorical_dimension, measure, numeric_dimension
from repro.db.table import Table
from repro.sqlparser.parser import parse_query

def build_table(ints, floats, objects, measures):
    rows = len(measures)
    schema = Schema.of(
        [
            numeric_dimension("i", ColumnKind.INT),
            numeric_dimension("f"),
            categorical_dimension("c"),
            measure("m"),
        ]
    )
    return Table(
        "t",
        schema,
        {"i": ints[:rows], "f": floats[:rows], "c": objects[:rows], "m": measures},
    )


def keys_match(left: tuple, right: tuple) -> bool:
    """Tuple equality that also requires identical types and treats NaN keys
    as matching positionally (NaN != NaN, so plain == cannot compare them)."""
    if len(left) != len(right):
        return False
    for a, b in zip(left, right):
        if type(a) is not type(b):
            return False
        if isinstance(a, float) and math.isnan(a):
            if not math.isnan(b):
                return False
        elif a != b:
            return False
    return True


table_inputs = st.integers(min_value=0, max_value=40).flatmap(
    lambda rows: st.tuples(
        st.lists(st.integers(min_value=-3, max_value=3), min_size=rows, max_size=rows),
        st.lists(
            # NaN exercises the hashed-encoding fallback, where every NaN row
            # must form its own group exactly like the legacy dict keys.
            st.sampled_from([0.0, -0.5, 1.25, 7.5, 100.0, float("nan")]),
            min_size=rows,
            max_size=rows,
        ),
        st.lists(st.sampled_from(["a", "b", "c", "dd"]), min_size=rows, max_size=rows),
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=rows,
            max_size=rows,
        ),
        st.lists(st.booleans(), min_size=rows, max_size=rows),
    )
)

group_column_choices = st.sampled_from(
    [("i",), ("f",), ("c",), ("i", "c"), ("f", "i"), ("c", "f", "i")]
)


@settings(max_examples=120, deadline=None)
@given(inputs=table_inputs, group_columns=group_column_choices)
def test_factorize_matches_legacy_bytewise(inputs, group_columns):
    ints, floats, objects, measures, mask_bits = inputs
    table = build_table(ints, floats, objects, measures)
    mask = np.asarray(mask_bits, dtype=bool)

    legacy = list(iter_groups_legacy(table, mask, group_columns))
    grouped = factorize(table, mask, group_columns)

    if grouped is None:
        assert legacy == []
        return

    assert grouped.num_groups == len(legacy)
    for group, (legacy_key, legacy_mask) in enumerate(legacy):
        # keys_match also checks Python value types (int vs float matters).
        assert keys_match(grouped.keys[group], legacy_key)
        assert np.array_equal(grouped.group_mask(group, len(table)), legacy_mask)
        assert list(grouped.group_indices(group)) == list(np.flatnonzero(legacy_mask))


@settings(max_examples=60, deadline=None)
@given(inputs=table_inputs, group_columns=group_column_choices)
def test_executor_vectorized_equals_legacy_bytewise(inputs, group_columns):
    ints, floats, objects, measures, mask_bits = inputs
    table = build_table(ints, floats, objects, measures)
    catalog = Catalog.of([table], fact_tables=["t"])
    group_by = ", ".join(group_columns)
    query = parse_query(
        "SELECT "
        f"{group_by}, SUM(m), AVG(m), COUNT(*), MIN(m), MAX(m), FREQ(*) "
        f"FROM t GROUP BY {group_by}"
    )
    vectorized = ExactExecutor(catalog, vectorized=True).execute(query)
    legacy = ExactExecutor(catalog, vectorized=False).execute(query)

    assert len(vectorized.rows) == len(legacy.rows)
    for new_row, old_row in zip(vectorized.rows, legacy.rows):
        assert keys_match(new_row.group_values, old_row.group_values)
        assert new_row.aggregates.keys() == old_row.aggregates.keys()
        for name in new_row.aggregates:
            new_value = new_row.aggregates[name]
            old_value = old_row.aggregates[name]
            # Byte-identical, not approximately equal.
            assert np.float64(new_value).tobytes() == np.float64(old_value).tobytes()
