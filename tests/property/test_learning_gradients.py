"""Property tests for the analytic likelihood gradients (Appendix A fast path).

The learning fast path hands L-BFGS-B closed-form derivatives of the
Eq. 13 negative log-likelihood with respect to the log length scales.  These
tests check the two layers of that derivation against central finite
differences of the corresponding *values*:

* the per-attribute kernel derivative ``d se_average_factor / d log l``
  (the erf/Gaussian antiderivative calculus), across range shapes; and
* the full workspace gradient (product-kernel structure plus the
  sigma^2-through-``mean_diagonal`` chain rule), across attribute counts,
  snippet counts and range pools.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.kernel import se_average_factor, se_average_factor_with_grad
from repro.core.learning import LikelihoodWorkspace, negative_log_likelihood
from repro.workloads.synthetic import make_gp_snippets, make_gp_snippets_multi

bounded = st.floats(min_value=-8.0, max_value=8.0, allow_nan=False)
widths = st.floats(min_value=1e-3, max_value=6.0, allow_nan=False)
scales = st.floats(min_value=0.05, max_value=20.0, allow_nan=False)


class TestKernelGradient:
    @given(low_1=bounded, width_1=widths, low_2=bounded, width_2=widths, scale=scales)
    @settings(max_examples=200, deadline=None)
    def test_matches_central_differences(self, low_1, width_1, low_2, width_2, scale):
        high_1 = low_1 + width_1
        high_2 = low_2 + width_2
        factor, gradient = se_average_factor_with_grad(
            low_1, high_1, low_2, high_2, scale
        )
        reference = se_average_factor(low_1, high_1, low_2, high_2, scale)
        assert float(factor) == float(reference)
        step = 1e-4
        plus = se_average_factor(low_1, high_1, low_2, high_2, scale * np.exp(step))
        minus = se_average_factor(low_1, high_1, low_2, high_2, scale * np.exp(-step))
        finite_difference = (float(plus) - float(minus)) / (2.0 * step)
        # The finite-difference *reference* loses precision when the G terms
        # (order l^2 + l|t|) dwarf the integral (order w1*w2): each value
        # carries ~eps * G_max / (w1*w2) of cancellation error, amplified by
        # 1/(2*step).  The analytic gradient has no such term.
        t_max = max(
            abs(high_1 - low_2), abs(high_1 - high_2),
            abs(low_1 - low_2), abs(low_1 - high_2),
        )
        g_max = 0.5 * scale**2 + scale * t_max
        cancellation = (
            8.0 * np.finfo(float).eps * g_max / (width_1 * width_2) / (2.0 * step)
        )
        tolerance = 1e-6 + 10.0 * cancellation + 1e-4 * abs(finite_difference)
        assert abs(float(gradient) - finite_difference) <= tolerance

    def test_degenerate_width_falls_back_to_point_kernel(self):
        factor, gradient = se_average_factor_with_grad(1.0, 1.0, 0.0, 2.0, 1.5)
        assert float(factor) == 1.0  # midpoints coincide
        assert float(gradient) == 0.0
        factor, gradient = se_average_factor_with_grad(3.0, 3.0, 0.0, 2.0, 1.5)
        difference = 3.0 - 1.0
        expected = np.exp(-((difference / 1.5) ** 2))
        assert float(factor) == pytest.approx(float(expected))
        step = 1e-5
        plus = se_average_factor(3.0, 3.0, 0.0, 2.0, 1.5 * np.exp(step))
        minus = se_average_factor(3.0, 3.0, 0.0, 2.0, 1.5 * np.exp(-step))
        assert float(gradient) == pytest.approx(
            (float(plus) - float(minus)) / (2.0 * step), rel=1e-4
        )


def _central_difference(workspace, theta, index, step=1e-5):
    offset = np.zeros(len(theta))
    offset[index] = step
    return (workspace.nll(theta + offset) - workspace.nll(theta - offset)) / (
        2.0 * step
    )


class TestWorkspaceGradient:
    @given(
        num_attributes=st.integers(min_value=1, max_value=3),
        num_snippets=st.integers(min_value=5, max_value=40),
        distinct_ranges=st.integers(min_value=2, max_value=12),
        seed=st.integers(min_value=0, max_value=50),
        log_scale=st.floats(min_value=-1.5, max_value=2.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_central_differences(
        self, num_attributes, num_snippets, distinct_ranges, seed, log_scale
    ):
        true_scales = {f"x{i}": 1.0 + 0.5 * i for i in range(num_attributes)}
        snippets, domains, key = make_gp_snippets_multi(
            num_snippets,
            true_scales,
            distinct_ranges_per_attribute=distinct_ranges,
            seed=seed,
        )
        workspace = LikelihoodWorkspace(key, snippets, domains)
        rng = np.random.default_rng(seed)
        theta = log_scale + rng.uniform(-0.3, 0.3, size=num_attributes)
        value, gradient = workspace.nll_and_grad(theta)
        assert value == workspace.nll(theta)
        for index in range(num_attributes):
            finite_difference = _central_difference(workspace, theta, index)
            scale = max(1.0, abs(finite_difference), abs(value) * 1e-3)
            assert gradient[index] == pytest.approx(
                finite_difference, abs=2e-4 * scale
            )

    @given(
        num_snippets=st.integers(min_value=5, max_value=30),
        seed=st.integers(min_value=0, max_value=30),
        log_scale=st.floats(min_value=-2.0, max_value=2.2),
    )
    @settings(max_examples=30, deadline=None)
    def test_gradient_with_categorical_constants(self, num_snippets, seed, log_scale):
        snippets, domains, key = make_gp_snippets_multi(
            num_snippets,
            {"x0": 1.5},
            categorical_sizes={"region": 6},
            seed=seed,
        )
        workspace = LikelihoodWorkspace(key, snippets, domains)
        theta = np.array([log_scale])
        _, gradient = workspace.nll_and_grad(theta)
        finite_difference = _central_difference(workspace, theta, 0)
        assert gradient[0] == pytest.approx(
            finite_difference, rel=1e-3, abs=1e-4 * max(1.0, abs(finite_difference))
        )


class TestWorkspaceMatchesReference:
    def test_bit_identical_on_fig7_snippets(self):
        """The workspace NLL must equal the legacy path on the Figure 7
        synthetic snippets (bit-identical; the 1e-12 bound is the contract)."""
        snippets, domains, key = make_gp_snippets(
            num_snippets=80, true_length_scale=1.5, seed=3
        )
        workspace = LikelihoodWorkspace(key, snippets, domains)
        assert workspace.attributes == ("x",)
        for theta in np.log([0.05, 0.3, 1.0, 1.5, 4.0, 9.0]):
            scale = float(np.exp(theta))
            reference = negative_log_likelihood({"x": scale}, key, snippets, domains)
            fast = workspace.nll([theta])
            assert abs(fast - reference) <= 1e-12 * max(1.0, abs(reference))

    def test_bit_identical_with_mixed_schema(self):
        snippets, domains, key = make_gp_snippets_multi(
            50,
            {"x0": 2.0, "x1": 0.7},
            categorical_sizes={"region": 9, "kind": 4},
            seed=5,
        )
        workspace = LikelihoodWorkspace(key, snippets, domains)
        for probe in [(0.4, 0.4), (2.0, 0.7), (7.0, 0.1)]:
            theta = np.log(np.asarray(probe))
            length_scales = {
                name: float(np.exp(value))
                for name, value in zip(workspace.attributes, theta)
            }
            reference = negative_log_likelihood(
                length_scales, key, snippets, domains
            )
            fast = workspace.nll(theta)
            assert abs(fast - reference) <= 1e-12 * max(1.0, abs(reference))
