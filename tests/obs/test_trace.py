"""Unit tests for the span/tracer core: nesting, ring, logs, hot path."""

from __future__ import annotations

import contextvars
import json
import threading

import pytest

from repro.obs.trace import (
    Tracer,
    current_request_id,
    current_span,
    current_trace,
    event,
    mint_request_id,
    read_jsonl,
    set_attrs,
    span,
    valid_request_id,
)


class TestRequestIds:
    def test_minted_ids_are_valid_and_unique(self):
        ids = {mint_request_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(valid_request_id(i) for i in ids)

    @pytest.mark.parametrize(
        "candidate,ok",
        [
            ("abc123", True),
            ("a" * 64, True),
            ("a-b_c.d", True),
            ("", False),
            ("a" * 65, False),
            ("-leading-dash", False),
            ("has space", False),
            ("semi;colon", False),
            ("new\nline", False),
        ],
    )
    def test_validation(self, candidate, ok):
        assert valid_request_id(candidate) is ok

    def test_tracer_adopts_valid_id_and_mints_otherwise(self):
        tracer = Tracer(ring_capacity=4)
        with tracer.request("my-id-1") as root:
            assert root.request_id == "my-id-1"
        with tracer.request("bad id!") as root:
            assert root.request_id != "bad id!"
            assert valid_request_id(root.request_id)


class TestDisabledHotPath:
    def test_span_without_trace_is_none(self):
        with span("anything", key="value") as live:
            assert live is None
        # event / set_attrs are silent no-ops too
        event("nothing")
        set_attrs(foo=1)
        assert current_span() is None
        assert current_trace() is None
        assert current_request_id() is None


class TestSpanTree:
    def test_nesting_attrs_and_timings(self):
        tracer = Tracer(ring_capacity=4)
        with tracer.request("req1", name="request") as root:
            assert current_trace() is root
            assert current_request_id() == "req1"
            with span("outer", a=1) as outer:
                assert current_span() is outer
                set_attrs(b=2)
                with span("inner") as inner:
                    assert current_span() is inner
                event("tick", n=3)
            assert current_span() is root
        data = tracer.get("req1")
        assert data["name"] == "request"
        assert data["request_id"] == "req1"
        assert data["status"] == "ok"
        assert data["wall_s"] >= 0
        (outer_d,) = data["children"]
        assert outer_d["name"] == "outer"
        assert outer_d["attrs"] == {"a": 1, "b": 2}
        inner_d, tick = outer_d["children"]
        assert inner_d["name"] == "inner"
        assert tick == {
            "name": "tick",
            "ts": tick["ts"],
            "wall_s": 0.0,
            "cpu_s": 0.0,
            "status": "ok",
            "attrs": {"n": 3},
        }

    def test_exception_marks_error_and_propagates(self):
        tracer = Tracer(ring_capacity=4)
        with pytest.raises(ValueError):
            with tracer.request("boom"):
                with span("failing"):
                    raise ValueError("kaput")
        data = tracer.get("boom")
        assert data["status"] == "error"
        assert "kaput" in data["error"]
        child = data["children"][0]
        assert child["status"] == "error"
        assert child["error"].startswith("ValueError")

    def test_context_isolation_across_threads(self):
        """A trace opened in one context is invisible to a bare thread."""
        tracer = Tracer(ring_capacity=4)
        seen_in_thread = []

        with tracer.request("iso"):
            thread = threading.Thread(
                target=lambda: seen_in_thread.append(current_trace())
            )
            thread.start()
            thread.join()
            # ... but copy_context carries it over explicitly.
            context = contextvars.copy_context()
            carried = []
            thread2 = threading.Thread(
                target=lambda: carried.append(context.run(current_request_id))
            )
            thread2.start()
            thread2.join()
        assert seen_in_thread == [None]
        assert carried == ["iso"]


class TestTracerStorage:
    def test_ring_evicts_oldest_and_counts_dropped(self):
        tracer = Tracer(ring_capacity=2)
        for index in range(4):
            with tracer.request(f"r{index}"):
                pass
        assert tracer.get("r0") is None
        assert tracer.get("r1") is None
        assert tracer.get("r3")["request_id"] == "r3"
        stats = tracer.stats()
        assert stats == {
            "finished": 4,
            "stored": 2,
            "dropped": 2,
            "slow_queries": 0,
            "ring_capacity": 2,
            "slow_threshold_s": None,
        }

    def test_jsonl_log_one_line_per_trace(self, tmp_path):
        log = tmp_path / "deep" / "trace.jsonl"
        tracer = Tracer(ring_capacity=4, log_path=log)
        with tracer.request("a"):
            with span("child"):
                pass
        with tracer.request("b"):
            pass
        tracer.close()
        lines = list(read_jsonl(log))
        assert [line["request_id"] for line in lines] == ["a", "b"]
        assert lines[0]["children"][0]["name"] == "child"
        # every line is independently parsable JSON
        raw = log.read_text().strip().splitlines()
        assert all(json.loads(line) for line in raw)

    def test_slow_log_threshold(self, tmp_path):
        slow = tmp_path / "slow.jsonl"
        tracer = Tracer(
            ring_capacity=4, slow_log_path=slow, slow_threshold_s=0.0
        )
        with tracer.request("slowpoke"):
            pass
        tracer.close()
        assert tracer.stats()["slow_queries"] == 1
        (entry,) = list(read_jsonl(slow))
        assert entry["request_id"] == "slowpoke"

    def test_fast_requests_skip_slow_log(self, tmp_path):
        slow = tmp_path / "slow.jsonl"
        tracer = Tracer(
            ring_capacity=4, slow_log_path=slow, slow_threshold_s=3600.0
        )
        with tracer.request("quick"):
            pass
        tracer.close()
        assert tracer.stats()["slow_queries"] == 0
        assert not list(read_jsonl(slow))
