"""Unit tests for metric families and the Prometheus text renderer."""

from __future__ import annotations

import math
import re

import pytest

from repro.obs.metrics import MetricFamily, merge_families, render_prometheus

#: One exposition sample line: name{labels} value
SAMPLE_RE = re.compile(
    r"\A(?P<name>[A-Za-z_:][A-Za-z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? (?P<value>\S+)\Z"
)


def parse_exposition(text: str) -> dict:
    """Minimal 0.0.4 parser: validates structure, returns {series: value}."""
    series: dict[str, float] = {}
    typed: dict[str, str] = {}
    for line in text.strip().splitlines():
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert kind in ("counter", "gauge", "histogram")
            assert name not in typed, f"duplicate TYPE for {name}"
            typed[name] = kind
            continue
        match = SAMPLE_RE.match(line)
        assert match, f"malformed sample line: {line!r}"
        base = re.sub(r"_(bucket|sum|count)$", "", match["name"])
        assert match["name"] in typed or base in typed, f"undeclared {match['name']}"
        series[f"{match['name']}{{{match['labels'] or ''}}}"] = float(match["value"])
    return series


class TestMetricFamily:
    def test_kind_is_checked(self):
        with pytest.raises(ValueError):
            MetricFamily("x", "summary", "nope")

    def test_add_histogram_checks_bucket_arity(self):
        family = MetricFamily("h", "histogram", "help")
        with pytest.raises(ValueError):
            family.add_histogram({}, (1.0, 2.0), [1, 2], 0.5, 3)  # missing +Inf

    def test_add_histogram_on_counter_rejected(self):
        with pytest.raises(ValueError):
            MetricFamily("c", "counter", "help").add_histogram({}, (), [0], 0, 0)


class TestRenderer:
    def test_counter_and_gauge(self):
        families = [
            MetricFamily("req_total", "counter", "Requests.")
            .add({"route": "learned"}, 3)
            .add({"route": "exact"}, 1),
            MetricFamily("active", "gauge", "Now running.").add({}, 2),
        ]
        text = render_prometheus(families)
        series = parse_exposition(text)
        assert series['req_total{route="learned"}'] == 3
        assert series['req_total{route="exact"}'] == 1
        assert series["active{}"] == 2

    def test_histogram_buckets_are_cumulative_with_inf(self):
        family = MetricFamily("lat", "histogram", "Latency.")
        # bounds (0.1, 1.0): 2 below 0.1, 3 in (0.1,1], 1 overflow
        family.add_histogram({"op": "scan"}, (0.1, 1.0), [2, 3, 1], 2.5, 6)
        series = parse_exposition(render_prometheus([family]))
        assert series['lat_bucket{le="0.1",op="scan"}'] == 2
        assert series['lat_bucket{le="1",op="scan"}'] == 5
        assert series['lat_bucket{le="+Inf",op="scan"}'] == 6
        assert series['lat_sum{op="scan"}'] == 2.5
        assert series['lat_count{op="scan"}'] == 6

    def test_label_escaping(self):
        family = MetricFamily("weird", "gauge", "Help with\nnewline.").add(
            {"q": 'say "hi"\\now'}, 1
        )
        text = render_prometheus([family])
        assert '\\"hi\\"' in text
        assert "Help with\\nnewline." in text
        # escaped payload still one line per sample
        assert len(text.strip().splitlines()) == 3

    def test_labels_sorted_deterministically(self):
        one = MetricFamily("m", "counter", "h").add({"b": "2", "a": "1"}, 1)
        two = MetricFamily("m", "counter", "h").add({"a": "1", "b": "2"}, 1)
        assert render_prometheus([one]) == render_prometheus([two])

    def test_float_and_int_formatting(self):
        family = MetricFamily("v", "gauge", "h").add({}, 2.0).add({"k": "f"}, 2.5)
        text = render_prometheus([family])
        assert "v 2\n" in text
        assert "v{k=\"f\"} 2.5" in text

    def test_empty_is_empty(self):
        assert render_prometheus([]) == ""


class TestMergeFamilies:
    def test_merges_same_name_preserving_order(self):
        tenant_a = MetricFamily("req_total", "counter", "Requests.").add(
            {"tenant": "a"}, 1
        )
        other = MetricFamily("active", "gauge", "Now.").add({}, 4)
        tenant_b = MetricFamily("req_total", "counter", "Requests.").add(
            {"tenant": "b"}, 2
        )
        merged = merge_families([tenant_a, other, tenant_b])
        assert [family.name for family in merged] == ["req_total", "active"]
        series = parse_exposition(render_prometheus(merged))
        assert series['req_total{tenant="a"}'] == 1
        assert series['req_total{tenant="b"}'] == 2

    def test_merge_leaves_inputs_usable(self):
        base = MetricFamily("x", "counter", "h").add({}, 1)
        merged = merge_families([base, MetricFamily("x", "counter", "h").add({}, 2)])
        assert len(base.samples) == 1  # the merge copied, not aliased
        assert len(merged[0].samples) == 2

    def test_parser_rejects_duplicate_type_blocks(self):
        """The helper parser enforces what merge_families exists to fix."""
        unmerged = [
            MetricFamily("dup", "counter", "h").add({"t": "a"}, 1),
            MetricFamily("dup", "counter", "h").add({"t": "b"}, 1),
        ]
        with pytest.raises(AssertionError):
            parse_exposition(render_prometheus(unmerged))
        parse_exposition(render_prometheus(merge_families(unmerged)))


class TestServiceMetricsFamilies:
    def test_service_metrics_render_parses(self):
        from repro.serve.metrics import ServiceMetrics

        metrics = ServiceMetrics()
        metrics.observe("learned", 0.01, model_seconds=0.5, budget_met=True)
        metrics.observe("exact", 0.2, model_seconds=2.0, fallback=True)
        metrics.record_event("deadline.exceeded")
        series = parse_exposition(
            render_prometheus(metrics.metric_families({"tenant": "t"}))
        )
        assert series['verdict_requests_total{route="learned",tenant="t"}'] == 1
        assert series['verdict_route_fallbacks_total{route="exact",tenant="t"}'] == 1
        assert (
            series['verdict_events_total{event="deadline.exceeded",tenant="t"}'] == 1
        )
        assert math.isclose(
            series['verdict_route_wall_seconds_sum{route="exact",tenant="t"}'], 0.2
        )
        assert series['verdict_route_wall_seconds_count{route="exact",tenant="t"}'] == 1
