"""Unit tests for query decomposition into snippets (Figure 3)."""

import pytest

from repro.sqlparser import ast
from repro.sqlparser.decompose import count_snippets, decompose_query
from repro.sqlparser.parser import parse_query


class TestNoGroupBy:
    def test_single_aggregate_single_snippet(self):
        query = parse_query("SELECT AVG(revenue) FROM sales WHERE week >= 1")
        specs = decompose_query(query)
        assert len(specs) == 1
        assert specs[0].aggregate.function is ast.AggregateFunction.AVG
        assert specs[0].predicate == query.where
        assert specs[0].group_values == ()

    def test_multiple_aggregates(self):
        query = parse_query("SELECT AVG(a), SUM(b), COUNT(*) FROM t")
        specs = decompose_query(query)
        assert len(specs) == 3
        assert [spec.aggregate_index for spec in specs] == [0, 1, 2]

    def test_no_aggregates_yields_nothing(self):
        query = parse_query("SELECT week FROM sales")
        assert decompose_query(query) == []


class TestGroupBy:
    def test_figure3_example(self):
        """The Figure 3 decomposition: two aggregates x two group values."""
        query = parse_query(
            "SELECT A1, AVG(A2), SUM(A3) FROM r WHERE A2 > 5 GROUP BY A1"
        )
        specs = decompose_query(query, group_rows=[("a11",), ("a12",)])
        assert len(specs) == 4
        functions = {(s.group_values, s.aggregate.function) for s in specs}
        assert (((("A1", "a11"),)), ast.AggregateFunction.AVG) in functions
        assert (((("A1", "a12"),)), ast.AggregateFunction.SUM) in functions
        # Every snippet predicate conjoins the original filter with the
        # group-value equality predicate.
        for spec in specs:
            assert isinstance(spec.predicate, ast.And)
            equality = spec.predicate.predicates[-1]
            assert isinstance(equality, ast.Comparison)
            assert equality.op is ast.ComparisonOp.EQ

    def test_group_values_dict_and_to_query(self):
        query = parse_query("SELECT region, COUNT(*) FROM sales GROUP BY region")
        specs = decompose_query(query, group_rows=[("east",)])
        spec = specs[0]
        assert spec.group_values_dict == {"region": "east"}
        snippet_query = spec.to_query()
        assert snippet_query.group_by == ()
        assert len(snippet_query.select) == 1

    def test_multi_column_group_by(self):
        query = parse_query(
            "SELECT region, week, AVG(revenue) FROM sales GROUP BY region, week"
        )
        specs = decompose_query(query, group_rows=[("east", 1), ("west", 2)])
        assert len(specs) == 2
        assert specs[0].group_values == (("region", "east"), ("week", 1))

    def test_group_row_arity_mismatch(self):
        query = parse_query("SELECT region, COUNT(*) FROM sales GROUP BY region")
        with pytest.raises(ValueError):
            decompose_query(query, group_rows=[("east", "extra")])


class TestBounds:
    def test_max_snippets_enforced(self):
        query = parse_query("SELECT region, AVG(a), SUM(b) FROM t GROUP BY region")
        group_rows = [(f"g{i}",) for i in range(100)]
        specs = decompose_query(query, group_rows=group_rows, max_snippets=10)
        assert len(specs) == 10

    def test_max_snippets_must_be_positive(self):
        query = parse_query("SELECT COUNT(*) FROM t")
        with pytest.raises(ValueError):
            decompose_query(query, max_snippets=0)

    def test_count_snippets(self):
        query = parse_query("SELECT region, AVG(a), SUM(b) FROM t GROUP BY region")
        assert count_snippets(query, group_rows=[("x",), ("y",)]) == 4
        scalar = parse_query("SELECT AVG(a) FROM t")
        assert count_snippets(scalar) == 1
