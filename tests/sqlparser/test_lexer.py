"""Unit tests for the SQL tokeniser."""

import pytest

from repro.errors import SQLSyntaxError
from repro.sqlparser.lexer import Token, TokenKind, iter_significant, tokenize


class TestTokenize:
    def test_keywords_are_case_insensitive(self):
        tokens = tokenize("select AVG from WHERE")
        kinds = [t.kind for t in iter_significant(tokens)]
        assert kinds == [TokenKind.KEYWORD] * 4
        assert [t.value for t in iter_significant(tokens)] == ["SELECT", "AVG", "FROM", "WHERE"]

    def test_identifiers_and_numbers(self):
        tokens = list(iter_significant(tokenize("revenue 42 3.14 1e3 2.5e-2")))
        assert tokens[0].kind is TokenKind.IDENTIFIER
        assert tokens[1].value == 42
        assert tokens[2].value == pytest.approx(3.14)
        assert tokens[3].value == pytest.approx(1000.0)
        assert tokens[4].value == pytest.approx(0.025)

    def test_string_literals_with_escaped_quote(self):
        tokens = list(iter_significant(tokenize("'hello' 'it''s'")))
        assert tokens[0].value == "hello"
        assert tokens[1].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("'oops")

    def test_operators(self):
        tokens = list(iter_significant(tokenize("a >= 1 AND b <> 2 OR c != 3 AND d <= 4")))
        operators = [t.value for t in tokens if t.kind is TokenKind.OPERATOR]
        assert operators == [">=", "<>", "<>", "<="]

    def test_punctuation(self):
        tokens = list(iter_significant(tokenize("f(a, b.c) * 2;")))
        kinds = [t.kind for t in tokens]
        assert TokenKind.LPAREN in kinds
        assert TokenKind.RPAREN in kinds
        assert TokenKind.COMMA in kinds
        assert TokenKind.DOT in kinds
        assert TokenKind.STAR in kinds
        assert TokenKind.SEMICOLON in kinds

    def test_unexpected_character(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT @ FROM t")

    def test_eof_token_present(self):
        tokens = tokenize("SELECT")
        assert tokens[-1].kind is TokenKind.EOF

    def test_positions_recorded(self):
        tokens = list(iter_significant(tokenize("ab cd")))
        assert tokens[0].position == 0
        assert tokens[1].position == 3

    def test_is_keyword_helper(self):
        token = Token(TokenKind.KEYWORD, "SELECT", 0)
        assert token.is_keyword("SELECT", "FROM")
        assert not token.is_keyword("WHERE")
