"""Unit tests for the supported-query checker (Section 2.2 / Table 3)."""

import pytest

from repro.sqlparser.checker import CheckResult, QueryTypeChecker, check_sql
from repro.sqlparser.parser import parse_query


@pytest.fixture()
def checker():
    return QueryTypeChecker()


def check(checker, sql):
    return checker.check(parse_query(sql))


class TestSupportedQueries:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT AVG(revenue) FROM sales",
            "SELECT COUNT(*) FROM sales WHERE week >= 1 AND week <= 10",
            "SELECT SUM(revenue * (1 - discount)) FROM sales WHERE region = 'east'",
            "SELECT region, AVG(price), COUNT(*) FROM sales GROUP BY region",
            "SELECT region, SUM(revenue) FROM sales JOIN dim ON k = k "
            "WHERE week BETWEEN 1 AND 5 GROUP BY region",
            "SELECT region, SUM(revenue) FROM sales GROUP BY region HAVING sum_revenue > 10",
            "SELECT COUNT(*) FROM sales WHERE region IN ('a', 'b') AND week >= 3",
            "SELECT FREQ(*) FROM sales WHERE week = 2",
        ],
    )
    def test_supported(self, checker, sql):
        result = check(checker, sql)
        assert result.supported, result.reasons
        assert result.has_aggregate
        assert bool(result) is True


class TestUnsupportedQueries:
    @pytest.mark.parametrize(
        "sql, expected_fragment",
        [
            ("SELECT MIN(price) FROM sales", "unsupported aggregate MIN"),
            ("SELECT MAX(price) FROM sales", "unsupported aggregate MAX"),
            ("SELECT COUNT(DISTINCT region) FROM sales", "DISTINCT"),
            ("SELECT week FROM sales WHERE week >= 1", "no aggregate"),
            ("SELECT AVG(revenue) FROM sales WHERE week = 1 OR week = 5", "disjunction"),
            ("SELECT AVG(revenue) FROM sales WHERE NOT week = 1", "negation"),
            ("SELECT COUNT(*) FROM sales WHERE brand LIKE 'b%'", "LIKE"),
            ("SELECT COUNT(*) FROM sales WHERE region NOT IN ('a')", "NOT IN"),
            (
                "SELECT AVG(revenue) FROM sales WHERE price >= (SELECT AVG(price) FROM sales)",
                "nested",
            ),
            ("SELECT COUNT(*) FROM (SELECT week FROM sales) t", "nested"),
            ("SELECT region, COUNT(*) FROM sales", "not in GROUP BY"),
            (
                "SELECT COUNT(*) FROM sales WHERE week IN (SELECT week FROM other)",
                "nested",
            ),
        ],
    )
    def test_unsupported_with_reason(self, checker, sql, expected_fragment):
        result = check(checker, sql)
        assert not result.supported
        assert any(expected_fragment in reason for reason in result.reasons), result.reasons

    def test_multiple_reasons_are_deduplicated(self, checker):
        result = check(
            checker,
            "SELECT MIN(a), MIN(b) FROM t WHERE x = 1 OR y = 2",
        )
        assert result.reasons.count("unsupported aggregate MIN") == 1

    def test_having_can_be_disallowed(self):
        strict = QueryTypeChecker(allow_having=False)
        result = check(
            strict, "SELECT region, SUM(x) FROM t GROUP BY region HAVING sum_x > 1"
        )
        assert not result.supported
        assert "HAVING clause" in result.reasons


class TestCheckSql:
    def test_parse_error_reported_not_raised(self):
        result = check_sql("THIS IS NOT SQL")
        assert not result.supported
        assert any("parse error" in reason for reason in result.reasons)

    def test_supported_passthrough(self):
        assert check_sql("SELECT COUNT(*) FROM t").supported

    def test_check_result_is_falsy_when_unsupported(self):
        result = CheckResult(supported=False, reasons=("x",))
        assert not result
