"""Unit tests for the SQL parser."""

import pytest

from repro.errors import SQLSyntaxError
from repro.sqlparser import ast
from repro.sqlparser.parser import parse_query


class TestSelectList:
    def test_single_aggregate(self):
        query = parse_query("SELECT AVG(revenue) FROM sales")
        assert query.table == "sales"
        assert len(query.select) == 1
        aggregate = query.select[0].expression
        assert isinstance(aggregate, ast.Aggregate)
        assert aggregate.function is ast.AggregateFunction.AVG
        assert isinstance(aggregate.argument, ast.ColumnRef)

    def test_count_star_and_alias(self):
        query = parse_query("SELECT COUNT(*) AS n FROM sales")
        item = query.select[0]
        assert item.alias == "n"
        assert item.output_name == "n"
        assert item.expression.is_star

    def test_multiple_aggregates_and_group_columns(self):
        query = parse_query(
            "SELECT region, AVG(price), SUM(revenue) FROM sales GROUP BY region"
        )
        assert len(query.select) == 3
        assert len(query.aggregates) == 2
        assert query.group_by_names == ["region"]
        assert [item.output_name for item in query.select] == [
            "region",
            "avg_price",
            "sum_revenue",
        ]

    def test_derived_aggregate_argument(self):
        query = parse_query("SELECT SUM(revenue * (1 - discount)) FROM sales")
        argument = query.select[0].expression.argument
        assert isinstance(argument, ast.BinaryOp)
        assert argument.op == "*"
        assert isinstance(argument.right, ast.BinaryOp)

    def test_distinct_aggregate(self):
        query = parse_query("SELECT COUNT(DISTINCT region) FROM sales")
        assert query.select[0].expression.distinct

    def test_min_max_parse(self):
        query = parse_query("SELECT MIN(price), MAX(price) FROM sales")
        functions = [a.function for a in query.aggregates]
        assert functions == [ast.AggregateFunction.MIN, ast.AggregateFunction.MAX]


class TestWhere:
    def test_conjunctive_ranges(self):
        query = parse_query(
            "SELECT AVG(revenue) FROM sales WHERE week >= 5 AND week <= 10 AND region = 'east'"
        )
        assert isinstance(query.where, ast.And)
        assert len(query.where.predicates) == 3

    def test_between_and_in(self):
        query = parse_query(
            "SELECT COUNT(*) FROM sales WHERE week BETWEEN 2 AND 9 AND region IN ('a', 'b')"
        )
        predicates = query.where.predicates
        assert isinstance(predicates[0], ast.BetweenPredicate)
        assert predicates[0].low == 2 and predicates[0].high == 9
        assert isinstance(predicates[1], ast.InPredicate)
        assert predicates[1].values == ("a", "b")

    def test_or_not_like(self):
        query = parse_query(
            "SELECT COUNT(*) FROM sales WHERE week = 1 OR NOT region LIKE 'ea%'"
        )
        assert isinstance(query.where, ast.Or)
        assert isinstance(query.where.predicates[1], ast.Not)

    def test_not_in(self):
        query = parse_query("SELECT COUNT(*) FROM sales WHERE region NOT IN ('a')")
        predicate = query.where
        assert isinstance(predicate, ast.InPredicate)
        assert predicate.negated

    def test_negative_literals(self):
        query = parse_query("SELECT COUNT(*) FROM sales WHERE balance >= -10.5")
        assert query.where.right.value == pytest.approx(-10.5)

    def test_parenthesised_predicates(self):
        query = parse_query(
            "SELECT COUNT(*) FROM sales WHERE (week >= 1 AND week <= 5) AND region = 'a'"
        )
        assert isinstance(query.where, ast.And)

    def test_qualified_columns(self):
        query = parse_query("SELECT AVG(s.revenue) FROM sales s WHERE s.week >= 2")
        argument = query.select[0].expression.argument
        assert argument.table == "s"
        assert argument.qualified == "s.revenue"


class TestJoinsGroupByHaving:
    def test_join_clause(self):
        query = parse_query(
            "SELECT region, SUM(amount) FROM orders JOIN stores ON store_id = store_id "
            "GROUP BY region"
        )
        assert len(query.joins) == 1
        assert query.joins[0].table == "stores"

    def test_multiple_joins(self):
        query = parse_query(
            "SELECT COUNT(*) FROM lineitem "
            "JOIN orders ON l_orderkey = o_orderkey "
            "JOIN customer ON o_custkey = c_custkey"
        )
        assert [j.table for j in query.joins] == ["orders", "customer"]

    def test_inner_and_left_join_keywords(self):
        query = parse_query(
            "SELECT COUNT(*) FROM a INNER JOIN b ON x = y LEFT OUTER JOIN c ON u = v"
        )
        assert [j.table for j in query.joins] == ["b", "c"]

    def test_non_equi_join_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_query("SELECT COUNT(*) FROM a JOIN b ON x < y")

    def test_having(self):
        query = parse_query(
            "SELECT region, SUM(revenue) FROM sales GROUP BY region HAVING sum_revenue > 10"
        )
        assert query.having is not None

    def test_order_by_and_limit_are_ignored(self):
        query = parse_query(
            "SELECT region, COUNT(*) FROM sales GROUP BY region ORDER BY region DESC LIMIT 10"
        )
        assert query.group_by_names == ["region"]

    def test_trailing_semicolon(self):
        query = parse_query("SELECT COUNT(*) FROM sales;")
        assert query.table == "sales"


class TestSubqueries:
    def test_subquery_in_where_detected(self):
        query = parse_query(
            "SELECT AVG(revenue) FROM sales WHERE price >= (SELECT AVG(price) FROM sales)"
        )
        assert query.has_subquery

    def test_subquery_in_from_detected(self):
        query = parse_query("SELECT COUNT(*) FROM (SELECT week FROM sales) t")
        assert query.has_subquery

    def test_in_subquery_detected(self):
        query = parse_query(
            "SELECT COUNT(*) FROM sales WHERE week IN (SELECT week FROM other)"
        )
        assert query.has_subquery

    def test_flat_query_has_no_subquery(self):
        query = parse_query("SELECT COUNT(*) FROM sales WHERE week = 1")
        assert not query.has_subquery


class TestErrors:
    def test_missing_from(self):
        with pytest.raises(SQLSyntaxError):
            parse_query("SELECT COUNT(*)")

    def test_trailing_garbage(self):
        with pytest.raises(SQLSyntaxError):
            parse_query("SELECT COUNT(*) FROM sales EXTRA nonsense ,")

    def test_bad_in_list(self):
        with pytest.raises(SQLSyntaxError):
            parse_query("SELECT COUNT(*) FROM t WHERE a IN (b)")

    def test_query_hashable_and_comparable(self):
        first = parse_query("SELECT COUNT(*) FROM sales WHERE week = 1")
        second = parse_query("select count(*) from sales where week = 1")
        assert first == second
        assert hash(first) == hash(second)
        different = parse_query("SELECT COUNT(*) FROM sales WHERE week = 2")
        assert first != different
