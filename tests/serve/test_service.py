"""Concurrency and correctness tests for the serving front door.

The hammer tests drive :class:`VerdictService` from many threads mixing
reads with ``record``/``append`` and assert the two serving invariants:

* **no torn answers** -- an exact COUNT(*) always equals the table's row
  count at *some* append boundary, never a value in between;
* **no stale cache** -- after an append, a cached answer computed over the
  old data is never served again.

The restart test is the ISSUE 3 acceptance criterion: a service restarted
from its synopsis store answers a trace identically to the service that
never stopped.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.config import SamplingConfig, VerdictConfig
from repro.db.catalog import Catalog
from repro.errors import ServiceError
from repro.serve import ReadWriteLock, ServiceBudget, SynopsisStore, VerdictService
from repro.serve.planner import Route
from repro.workloads.customer1 import Customer1Workload
from repro.workloads.synthetic import make_sales_table

SAMPLING = SamplingConfig(sample_ratio=0.25, num_batches=4, seed=2)
CONFIG = VerdictConfig(learn_length_scales=False)


def build_service(num_rows: int = 3_000, store=None, **kwargs) -> VerdictService:
    table = make_sales_table(num_rows=num_rows, num_weeks=52, seed=9)
    catalog = Catalog()
    catalog.add_table(table, fact=True)
    return VerdictService(
        catalog, store=store, sampling=SAMPLING, config=CONFIG, **kwargs
    )


def customer1_service(num_rows: int = 6_000, store=None, **kwargs):
    workload = Customer1Workload(num_rows=num_rows, seed=5)
    service = VerdictService(
        workload.build_catalog(),
        store=store,
        sampling=SAMPLING,
        config=CONFIG,
        **kwargs,
    )
    return workload, service


class TestBasicServing:
    def test_exact_budget_routes_to_exact(self):
        with build_service() as service:
            answer = service.query("SELECT COUNT(*) FROM sales", budget=ServiceBudget.exact())
            assert answer.route is Route.EXACT
            assert answer.scalar() == 3_000.0
            assert answer.relative_error_bound == 0.0
            assert answer.budget_met

    def test_repeat_query_hits_cache(self):
        with build_service(record_queries=False) as service:
            sql = "SELECT AVG(revenue) FROM sales WHERE week >= 5 AND week <= 30"
            first = service.query(sql)
            again = service.query(sql)
            assert not first.from_cache
            assert again.from_cache
            assert again.route is Route.CACHED
            assert again.rows == first.rows
            assert service.metrics.requests(Route.CACHED.value) == 1

    def test_recording_makes_learned_route_available(self):
        with build_service() as service:
            for low in (1, 12, 25, 38):
                service.record_answer(
                    f"SELECT AVG(revenue) FROM sales WHERE week >= {low} AND week <= {low + 14}"
                )
            service.train()
            answer = service.query(
                "SELECT AVG(revenue) FROM sales WHERE week >= 8 AND week <= 33",
                budget=ServiceBudget.interactive(0.5),
                record=False,
            )
            assert answer.route is Route.LEARNED
            assert answer.budget_met

    def test_submit_runs_on_worker_pool(self):
        with build_service(max_workers=2, record_queries=False) as service:
            futures = [
                service.submit("SELECT COUNT(*) FROM sales", ServiceBudget.exact())
                for _ in range(8)
            ]
            values = {future.result().scalar() for future in futures}
            assert values == {3_000.0}

    def test_closed_service_rejects_requests(self):
        service = build_service()
        service.close()
        with pytest.raises(ServiceError):
            service.query("SELECT COUNT(*) FROM sales")
        with pytest.raises(ServiceError):
            service.submit("SELECT COUNT(*) FROM sales")
        service.close()  # idempotent

    def test_unsupported_query_is_still_served(self):
        with build_service() as service:
            answer = service.query(
                "SELECT MAX(revenue) FROM sales WHERE week >= 2 AND week <= 50"
            )
            assert not answer.supported
            assert answer.rows


class TestCacheInvalidation:
    def test_append_invalidates_cached_exact_count(self):
        with build_service() as service:
            sql = "SELECT COUNT(*) FROM sales"
            before = service.query(sql, budget=ServiceBudget.exact())
            assert before.scalar() == 3_000.0
            assert service.query(sql, budget=ServiceBudget.exact()).from_cache
            service.append("sales", make_sales_table(num_rows=500, num_weeks=52, seed=3))
            after = service.query(sql, budget=ServiceBudget.exact())
            assert not after.from_cache
            assert after.scalar() == 3_500.0

    def test_record_invalidates_cached_learned_answer(self):
        with build_service(record_queries=False) as service:
            sql = "SELECT AVG(revenue) FROM sales WHERE week >= 5 AND week <= 30"
            service.query(sql)
            assert service.query(sql).from_cache
            service.record_answer(
                "SELECT AVG(revenue) FROM sales WHERE week >= 10 AND week <= 40"
            )
            assert not service.query(sql).from_cache

    def test_tighter_budget_bypasses_looser_cached_answer(self):
        with build_service(record_queries=False) as service:
            sql = "SELECT AVG(revenue) FROM sales WHERE week >= 5 AND week <= 30"
            loose = service.query(sql, budget=ServiceBudget(max_relative_error=0.5))
            assert loose.relative_error_bound > 0.0
            exact = service.query(sql, budget=ServiceBudget.exact())
            assert not exact.from_cache
            assert exact.route is Route.EXACT

    def test_cache_entry_stamped_with_execution_versions(self):
        """An answer computed before a mutation must never be cached as
        current: the version stamp is captured under the table read lock at
        execution time, not read at store time."""
        with build_service(record_queries=False) as service:
            sql = "SELECT COUNT(*) FROM sales"
            parsed, check = service.engine.check(sql)
            decision = service.planner.plan(parsed, check, ServiceBudget.exact())[0]
            _, _, versions = service._execute_route(
                decision, parsed, check, ServiceBudget.exact()
            )
            # A mutation lands between execution and the cache store.
            service.append("sales", make_sales_table(num_rows=100, num_weeks=52, seed=4))
            assert versions[1] != service.catalog.catalog_version
            # The served answer reflects post-append data, not a stale entry.
            answer = service.query(sql, budget=ServiceBudget.exact())
            assert answer.scalar() == 3_100.0

    def test_cache_capacity_is_bounded(self):
        with build_service(record_queries=False, cache_capacity=4) as service:
            for low in range(10):
                service.query(
                    f"SELECT COUNT(*) FROM sales WHERE week >= {low + 1}",
                    budget=ServiceBudget.exact(),
                )
            assert service.cache_size() <= 4


class TestConcurrencyHammer:
    def test_no_torn_answers_under_concurrent_appends(self):
        """Exact COUNT(*) must always equal a row count at an append boundary."""
        service = build_service(max_workers=4)
        base_rows = 3_000
        batch_rows = 250
        num_appends = 4
        valid_counts = {
            float(base_rows + i * batch_rows) for i in range(num_appends + 1)
        }
        observed: list[float] = []
        errors: list[Exception] = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                try:
                    answer = service.query(
                        "SELECT COUNT(*) FROM sales",
                        budget=ServiceBudget.exact(),
                        record=False,
                    )
                    observed.append(answer.scalar())
                except Exception as error:  # pragma: no cover - fails the test
                    errors.append(error)
                    return

        def mixed_reader():
            queries = [
                "SELECT AVG(revenue) FROM sales WHERE week >= 5 AND week <= 30",
                "SELECT COUNT(*) FROM sales WHERE week >= 10 AND week <= 45",
            ]
            index = 0
            while not stop.is_set():
                try:
                    service.query(queries[index % 2], record=(index % 3 == 0))
                    index += 1
                except Exception as error:  # pragma: no cover - fails the test
                    errors.append(error)
                    return

        threads = [threading.Thread(target=reader) for _ in range(3)] + [
            threading.Thread(target=mixed_reader) for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        try:
            for i in range(num_appends):
                service.append(
                    "sales", make_sales_table(num_rows=batch_rows, num_weeks=52, seed=40 + i)
                )
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        service.close()
        assert not errors, errors
        assert observed, "readers never completed a query"
        torn = [count for count in observed if count not in valid_counts]
        assert torn == [], f"torn COUNT(*) answers observed: {torn}"

    def test_cache_never_serves_stale_post_append_count(self):
        """Interleaved cached reads and appends: a count served after append
        ``i`` completed must reflect at least append ``i``."""
        service = build_service(max_workers=4)
        sql = "SELECT COUNT(*) FROM sales"
        floor = 3_000.0
        errors: list[Exception] = []
        floor_lock = threading.Lock()
        stop = threading.Event()

        def reader():
            nonlocal floor
            while not stop.is_set():
                try:
                    with floor_lock:
                        current_floor = floor
                    answer = service.query(sql, budget=ServiceBudget.exact(), record=False)
                    if answer.scalar() < current_floor:
                        raise AssertionError(
                            f"stale answer {answer.scalar()} < floor {current_floor}"
                        )
                except Exception as error:  # pragma: no cover - fails the test
                    errors.append(error)
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for i in range(4):
                service.append(
                    "sales", make_sales_table(num_rows=100, num_weeks=52, seed=60 + i)
                )
                with floor_lock:
                    floor = 3_000.0 + (i + 1) * 100.0
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        service.close()
        assert not errors, errors

    def test_concurrent_identical_queries_agree(self):
        with build_service(max_workers=4, record_queries=False) as service:
            sql = "SELECT AVG(revenue) FROM sales WHERE week >= 3 AND week <= 48"
            futures = [service.submit(sql) for _ in range(16)]
            answers = [future.result() for future in futures]
            values = {answer.scalar() for answer in answers}
            assert len(values) == 1
            assert any(answer.from_cache for answer in answers[1:]) or len(answers) == 1


class TestBackgroundTraining:
    """train_async: off-the-request-path learning with an atomic swap."""

    TRAINING = [
        "SELECT AVG(revenue) FROM sales WHERE week >= {low} AND week <= {high}".format(
            low=low, high=low + 14
        )
        for low in (1, 8, 16, 25, 33)
    ]

    def _record_trace(self, service):
        for sql in self.TRAINING:
            service.record_answer(sql)

    def test_background_train_matches_synchronous_train(self):
        background = build_service()
        synchronous = build_service()
        try:
            self._record_trace(background)
            self._record_trace(synchronous)
            synchronous.train(learn=True)
            results = background.train_async(learn=True).result(timeout=60)
            assert results
            sync_models = synchronous.engine._models
            async_models = background.engine._models
            assert sync_models.keys() == async_models.keys()
            for key in sync_models:
                assert sync_models[key].length_scales == pytest.approx(
                    async_models[key].length_scales
                )
        finally:
            background.close()
            synchronous.close()

    def test_queries_are_served_while_training_runs(self):
        """The hammer: with the compute phase artificially stalled, queries
        must keep completing -- training never blocks the request path."""
        with build_service(max_workers=2) as service:
            self._record_trace(service)
            entered = threading.Event()
            release = threading.Event()
            real_compute = service.engine.compute_training

            def stalled_compute(snapshot):
                entered.set()
                assert release.wait(timeout=30), "test deadlock"
                return real_compute(snapshot)

            service.engine.compute_training = stalled_compute
            try:
                future = service.train_async(learn=True)
                assert entered.wait(timeout=30)
                # Training is now stuck inside its compute phase.  Queries on
                # every route must still complete promptly.
                for _ in range(4):
                    answer = service.query(
                        "SELECT COUNT(*) FROM sales", budget=ServiceBudget.exact()
                    )
                    assert answer.scalar() == 3_000.0
                learned = service.query(
                    "SELECT AVG(revenue) FROM sales WHERE week >= 5 AND week <= 25",
                    record=False,
                )
                assert learned.rows
                assert not future.done()
            finally:
                release.set()
            results = future.result(timeout=60)
            assert results
            # The swap landed: the learned models are installed.
            assert service.engine._models.keys() == results.keys()

    def test_concurrent_train_async_returns_the_inflight_future(self):
        with build_service() as service:
            self._record_trace(service)
            release = threading.Event()
            real_compute = service.engine.compute_training

            def stalled_compute(snapshot):
                assert release.wait(timeout=30)
                return real_compute(snapshot)

            service.engine.compute_training = stalled_compute
            try:
                first = service.train_async()
                second = service.train_async()
                assert first is second
            finally:
                release.set()
            first.result(timeout=60)

    def test_recording_during_training_forces_the_next_round(self):
        with build_service() as service:
            self._record_trace(service)
            service.train_async(learn=False).result(timeout=60)
            assert service.engine.training_current(False)
            service.record_answer(
                "SELECT AVG(revenue) FROM sales WHERE week >= 40 AND week <= 50"
            )
            assert not service.engine.training_current(False)

    def test_training_invalidates_cached_answers(self):
        """Retraining swaps models in, so older cached answers (stamped with
        the previous state epoch) must never be served again."""
        with build_service(record_queries=False) as service:
            self._record_trace(service)
            service.train()
            sql = "SELECT AVG(revenue) FROM sales WHERE week >= 5 AND week <= 25"
            first = service.query(sql)
            assert service.query(sql).from_cache  # warm before retraining
            service.record_answer(
                "SELECT AVG(revenue) FROM sales WHERE week >= 42 AND week <= 50"
            )
            service.train_async(learn=True).result(timeout=60)
            after = service.query(sql)
            assert not after.from_cache
            assert after.route is not Route.CACHED
            assert first.rows  # the old answer itself was fine, just retired

    def test_auto_train_every_triggers_background_training(self):
        with build_service(auto_train_every=3) as service:
            assert service.engine._last_training is None
            self._record_trace(service)
            deadline = threading.Event()
            for _ in range(100):
                if service.engine._last_training is not None:
                    break
                deadline.wait(0.05)
            assert service.engine._last_training is not None

    def test_close_waits_for_inflight_training(self):
        service = build_service()
        self._record_trace(service)
        release = threading.Event()
        real_compute = service.engine.compute_training
        applied = []

        def stalled_compute(snapshot):
            assert release.wait(timeout=30)
            outcome = real_compute(snapshot)
            applied.append(True)
            return outcome

        service.engine.compute_training = stalled_compute
        future = service.train_async()
        closer = threading.Thread(target=service.close)
        closer.start()
        release.set()
        closer.join(timeout=60)
        assert not closer.is_alive()
        assert applied
        assert future.done()


class TestRestartEquivalence:
    def test_restarted_service_matches_never_stopped_service(self, tmp_path):
        """ISSUE 3 acceptance: restart from the store, then replay the same
        trace on both services -- answers must be identical."""
        budget = ServiceBudget.interactive(0.1)
        workload, continuous = customer1_service()
        _, stopping = customer1_service(store=SynopsisStore(tmp_path))

        trace = workload.generate_trace(num_queries=30, seed=8)
        ingest = [q.sql for q in trace[:15]]
        replay = [q.sql for q in trace[15:]]

        for service in (continuous, stopping):
            for sql in ingest:
                service.record_answer(sql)
            service.train()
            for sql in ingest[:4]:
                service.query(sql, budget=budget, record=True)

        stopping.close()
        _, restarted = customer1_service(store=SynopsisStore(tmp_path))
        assert restarted.restored
        assert len(restarted.engine.synopsis) == len(continuous.engine.synopsis)

        for sql in replay:
            expected = continuous.query(sql, budget=budget, record=True)
            actual = restarted.query(sql, budget=budget, record=True)
            assert actual.route == expected.route
            assert actual.rows == expected.rows
            assert actual.relative_error_bound == expected.relative_error_bound
        continuous.close()
        restarted.close()

    def test_shutdown_flushes_store_and_restart_restores(self, tmp_path):
        store = SynopsisStore(tmp_path)
        with build_service(store=store) as service:
            for low in (1, 15, 30):
                service.record_answer(
                    f"SELECT AVG(revenue) FROM sales WHERE week >= {low} AND week <= {low + 12}"
                )
            service.train()
            recorded = len(service.engine.synopsis)
        assert store.exists()
        reborn = build_service(store=SynopsisStore(tmp_path))
        assert reborn.restored
        assert len(reborn.engine.synopsis) == recorded
        reborn.close()


class TestReadWriteLock:
    def test_readers_are_concurrent_and_writers_exclusive(self):
        lock = ReadWriteLock()
        active = {"readers": 0, "writers": 0}
        peak = {"readers": 0}
        violations: list[str] = []
        guard = threading.Lock()
        barrier = threading.Barrier(4)

        def read():
            barrier.wait()
            with lock.read():
                with guard:
                    active["readers"] += 1
                    peak["readers"] = max(peak["readers"], active["readers"])
                    if active["writers"]:
                        violations.append("reader overlapped writer")
                import time

                time.sleep(0.02)
                with guard:
                    active["readers"] -= 1

        def write():
            barrier.wait()
            with lock.write():
                with guard:
                    active["writers"] += 1
                    if active["readers"] or active["writers"] > 1:
                        violations.append("writer overlapped")
                import time

                time.sleep(0.01)
                with guard:
                    active["writers"] -= 1

        threads = [threading.Thread(target=read) for _ in range(3)] + [
            threading.Thread(target=write)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert violations == []
        assert peak["readers"] >= 2, "readers never ran concurrently"


def test_served_answer_group_rows_match_exact(tmp_path):
    """Grouped answers keep group identities across routes."""
    workload, service = customer1_service()
    with service:
        answer = service.query(
            "SELECT region, SUM(revenue) FROM sales "
            "JOIN dim_store ON store_key = store_key GROUP BY region",
            budget=ServiceBudget.exact(),
        )
        groups = {row.group_values[0] for row in answer.rows}
        assert groups == {f"region_{i}" for i in range(8)}
        assert all(np.isfinite(list(row.values.values())).all() for row in answer.rows)


class TestShutdownOrdering:
    """ISSUE 6 regression: close() must drain direct in-flight requests
    before the final store snapshot, write exactly one snapshot under
    concurrent closers, and never persist anything behind it."""

    def test_close_waits_for_direct_inflight_query(self, tmp_path):
        store = SynopsisStore(tmp_path / "store")
        service = build_service(store=store)
        started = threading.Event()
        release = threading.Event()
        original_record = service.engine.record

        def slow_record(parsed, raw):
            started.set()
            assert release.wait(timeout=10)
            return original_record(parsed, raw)

        service.engine.record = slow_record
        outcome: dict = {}

        def request():
            # Direct call (not submit): the worker pool never sees it, so
            # only the in-flight drain can make close() wait for it.
            outcome["answer"] = service.query(
                "SELECT AVG(revenue) FROM sales WHERE week >= 3 AND week <= 40",
                record=True,
            )

        requester = threading.Thread(target=request)
        requester.start()
        assert started.wait(timeout=10)

        closer = threading.Thread(target=service.close)
        closer.start()
        # close() is draining but must not have snapshotted yet: the
        # in-flight request's record has not happened.
        deadline = 5.0
        while service.lifecycle_phase != "draining" and deadline > 0:
            threading.Event().wait(0.01)
            deadline -= 0.01
        assert service.lifecycle_phase == "draining"
        assert store.snapshots_written == 0
        release.set()
        requester.join(timeout=10)
        closer.join(timeout=10)
        assert service.lifecycle_phase == "closed"
        assert store.snapshots_written == 1
        assert outcome["answer"].recorded

        # The final snapshot captured the in-flight request's mutation:
        # a service restored from the store holds its snippet.
        restored = build_service(store=SynopsisStore(tmp_path / "store"))
        try:
            assert restored.restored
            assert len(list(restored.engine.synopsis.keys())) >= 1
        finally:
            restored.close()

    def test_concurrent_close_single_snapshot(self, tmp_path):
        store = SynopsisStore(tmp_path / "store")
        service = build_service(store=store)
        service.record_answer(
            "SELECT AVG(revenue) FROM sales WHERE week >= 5 AND week <= 25"
        )
        barrier = threading.Barrier(6)

        def close():
            barrier.wait()
            service.close()
            # Every closer, not just the winning one, returns only after
            # the final snapshot is durable.
            assert service.lifecycle_phase == "closed"
            assert store.snapshots_written == 1

        threads = [threading.Thread(target=close) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert store.snapshots_written == 1

    def test_flush_after_close_is_noop(self, tmp_path):
        store = SynopsisStore(tmp_path / "store")
        service = build_service(store=store)
        service.record_answer(
            "SELECT AVG(revenue) FROM sales WHERE week >= 5 AND week <= 25"
        )
        service.close()
        snapshot_bytes = (tmp_path / "store" / "snapshot.json").read_bytes()
        assert service.flush() == "noop"
        assert (tmp_path / "store" / "snapshot.json").read_bytes() == snapshot_bytes
        assert store.deltas_written == 0 or not (tmp_path / "store" / "deltas.jsonl").read_text()

    def test_draining_service_rejects_new_requests(self):
        service = build_service()
        release = threading.Event()
        started = threading.Event()
        original = service.exact.execute

        def slow_execute(parsed):
            started.set()
            assert release.wait(timeout=10)
            return original(parsed)

        service.exact.execute = slow_execute
        requester = threading.Thread(
            target=service.query,
            args=("SELECT COUNT(*) FROM sales",),
            kwargs={"budget": ServiceBudget.exact()},
        )
        requester.start()
        assert started.wait(timeout=10)
        closer = threading.Thread(target=service.close)
        closer.start()
        deadline = 5.0
        while service.lifecycle_phase != "draining" and deadline > 0:
            threading.Event().wait(0.01)
            deadline -= 0.01
        with pytest.raises(ServiceError):
            service.query("SELECT COUNT(*) FROM sales")
        release.set()
        requester.join(timeout=10)
        closer.join(timeout=10)
        assert service.lifecycle_phase == "closed"
