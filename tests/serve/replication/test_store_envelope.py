"""Unit tests of the store-level replication envelope.

Every WAL event a leader persists -- delta records and snapshots -- now
carries a replication envelope (``seq``, ``epoch``, ``lineage``) so it can
be shipped to a follower and applied through the byte-identical restore
path.  These tests pin the envelope contract at the
:class:`~repro.serve.store.SynopsisStore` level, below HTTP:

* flushed delta records carry contiguous sequence numbers stamped with the
  store's fencing epoch, and a leader snapshot is itself a WAL event (it
  advances the sequence) while a replica snapshot is not;
* ``delta_tail`` ships exactly the contiguous CRC-valid records after a
  position, stopping at torn bytes;
* ``ship_append`` is verbatim (follower WAL bytes == leader WAL bytes) and
  rejects gaps and fenced epochs with typed errors;
* ``install_shipped_snapshot`` reproduces the leader's learned state
  byte-identically and positions the follower at the snapshot's sequence;
* a replica store refuses local flushes, legacy snapshots are never
  shippable, and the fencing sidecar survives a reopen.
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.aqp.online_agg import OnlineAggregationEngine
from repro.config import SamplingConfig, VerdictConfig
from repro.core.engine import VerdictEngine
from repro.core.serialize import canonical_json, decode_checked_record
from repro.db.catalog import Catalog
from repro.errors import EpochFencedError, FaultInjectedError, ReplicationGapError
from repro.faults import FaultPlan, FaultRule
from repro.serve.store import StoreError, SynopsisStore
from repro.workloads.synthetic import make_sales_table

TRAINING = [
    "SELECT AVG(revenue) FROM sales WHERE week >= 1 AND week <= 20",
    "SELECT AVG(revenue) FROM sales WHERE week >= 10 AND week <= 30",
]
DELTA_SQL = [
    "SELECT COUNT(*) FROM sales WHERE week >= 20 AND week <= 50",
    "SELECT AVG(revenue) FROM sales WHERE week >= 25 AND week <= 45",
    "SELECT COUNT(*) FROM sales WHERE week >= 2 AND week <= 18",
]


def build_engine() -> VerdictEngine:
    table = make_sales_table(num_rows=3_000, num_weeks=52, seed=9)
    catalog = Catalog()
    catalog.add_table(table, fact=True)
    aqp = OnlineAggregationEngine(
        catalog, sampling=SamplingConfig(sample_ratio=0.25, num_batches=4, seed=2)
    )
    return VerdictEngine(catalog, aqp, config=VerdictConfig(learn_length_scales=False))


def engine_fingerprint(engine: VerdictEngine) -> str:
    return canonical_json(engine.state_dict(include_prepared=True))


def record_one(engine: VerdictEngine, sql: str) -> None:
    parsed, _ = engine.check(sql)
    engine.record(parsed, engine.aqp.final_answer(parsed))


def seeded_leader(directory) -> tuple[SynopsisStore, VerdictEngine]:
    """A leader store at epoch 1 with one snapshot and three delta records."""
    engine = build_engine()
    for sql in TRAINING:
        engine.execute(sql)
    store = SynopsisStore(directory)
    store.adopt_epoch(1, "lineage-a")
    assert store.flush(engine) == "snapshot"
    for sql in DELTA_SQL:
        record_one(engine, sql)
        assert store.flush(engine) == "delta"
    return store, engine


@pytest.fixture(autouse=True)
def no_leftover_plan():
    faults.clear()
    yield
    faults.clear()


class TestEnvelope:
    def test_delta_records_carry_contiguous_seq_and_epoch(self, tmp_path):
        store, _ = seeded_leader(tmp_path)
        lines = store.delta_path.read_text().splitlines()
        records = [decode_checked_record(line) for line in lines]
        assert all(isinstance(record, dict) for record in records)
        # Snapshot took seq 1; the three deltas follow contiguously.
        assert [record["seq"] for record in records] == [2, 3, 4]
        assert all(record["epoch"] == 1 for record in records)
        assert all(record["lineage"] == "lineage-a" for record in records)
        assert store.sequence == 4
        assert store.snapshot_sequence == 1

    def test_leader_snapshot_advances_sequence_and_is_shippable(self, tmp_path):
        store, engine = seeded_leader(tmp_path)
        before = store.sequence
        assert store.compact(engine) == "snapshot"
        assert store.sequence == before + 1
        assert store.snapshot_sequence == store.sequence
        assert store.snapshot_shippable
        assert store.delta_log_length == 0

    def test_replica_snapshot_does_not_advance_sequence(self, tmp_path):
        leader, leader_engine = seeded_leader(tmp_path / "leader")
        leader.compact(leader_engine)
        follower = SynopsisStore(tmp_path / "follower", replica=True)
        follower_engine = build_engine()
        follower.install_shipped_snapshot(
            follower_engine, leader.snapshot_path.read_text()
        )
        before = follower.sequence
        assert follower.save_snapshot(follower_engine) == "snapshot"
        assert follower.sequence == before

    def test_legacy_snapshot_is_not_shippable(self, tmp_path):
        store, engine = seeded_leader(tmp_path)
        # Strip the replication block, keeping the document otherwise valid.
        from repro.serve.store import (
            decode_snapshot_document,
            encode_snapshot_document,
        )

        store.compact(engine)
        payload = decode_snapshot_document(store.snapshot_path.read_text())
        del payload["replication"]
        store.snapshot_path.write_text(encode_snapshot_document(payload))
        reopened = SynopsisStore(tmp_path)
        assert reopened.load_into(build_engine())
        assert not reopened.snapshot_shippable
        # The synthetic sequence forces "from 0" pulls to snapshot_required.
        assert reopened.snapshot_sequence == 1


class TestDeltaTail:
    def test_tail_filters_by_position_and_caps_batches(self, tmp_path):
        store, _ = seeded_leader(tmp_path)
        assert len(store.delta_tail(0)) == 3
        assert len(store.delta_tail(2)) == 2
        assert store.delta_tail(4) == []
        assert len(store.delta_tail(0, max_records=2)) == 2
        # Tail lines are the file's bytes, verbatim.
        assert store.delta_tail(0) == store.delta_path.read_text().splitlines()

    def test_tail_stops_at_torn_bytes(self, tmp_path):
        store, _ = seeded_leader(tmp_path)
        lines = store.delta_path.read_text().splitlines()
        torn = lines[:2] + [lines[2][: len(lines[2]) // 2]]
        store.delta_path.write_text("\n".join(torn) + "\n")
        assert store.delta_tail(0) == lines[:2]


class TestShipAppend:
    def ship_all(self, tmp_path) -> tuple:
        leader, leader_engine = seeded_leader(tmp_path / "leader")
        leader.compact(leader_engine)
        for sql in DELTA_SQL:
            record_one(leader_engine, sql)
            leader.flush(leader_engine)
        follower = SynopsisStore(tmp_path / "follower", replica=True)
        follower_engine = build_engine()
        follower.install_shipped_snapshot(
            follower_engine, leader.snapshot_path.read_text()
        )
        return leader, leader_engine, follower, follower_engine

    def test_shipped_wal_is_byte_identical(self, tmp_path):
        leader, leader_engine, follower, follower_engine = self.ship_all(tmp_path)
        for line in leader.delta_tail(follower.sequence):
            follower.ship_append(follower_engine, line)
        assert follower.delta_path.read_bytes() == leader.delta_path.read_bytes()
        assert follower.sequence == leader.sequence
        assert engine_fingerprint(follower_engine) == engine_fingerprint(
            leader_engine
        )

    def test_sequence_gap_is_typed(self, tmp_path):
        leader, _, follower, follower_engine = self.ship_all(tmp_path)
        tail = leader.delta_tail(follower.sequence)
        with pytest.raises(ReplicationGapError):
            follower.ship_append(follower_engine, tail[1])  # skipped tail[0]

    def test_base_version_mismatch_is_typed(self, tmp_path):
        leader, _, follower, follower_engine = self.ship_all(tmp_path)
        tail = leader.delta_tail(follower.sequence)
        follower.ship_append(follower_engine, tail[0])
        record_one(follower_engine, DELTA_SQL[0])  # local divergence
        record = decode_checked_record(tail[1])
        assert record["base_version"] != follower_engine.synopsis.version
        with pytest.raises(ReplicationGapError):
            follower.ship_append(follower_engine, tail[1])

    def test_fenced_epoch_record_is_rejected(self, tmp_path):
        leader, _, follower, follower_engine = self.ship_all(tmp_path)
        tail = leader.delta_tail(follower.sequence)
        follower.adopt_epoch(2, "lineage-b")  # a promotion happened elsewhere
        with pytest.raises(EpochFencedError):
            follower.ship_append(follower_engine, tail[0])  # stamped epoch 1

    def test_apply_fault_point_fires_before_durability(self, tmp_path):
        leader, _, follower, follower_engine = self.ship_all(tmp_path)
        tail = leader.delta_tail(follower.sequence)
        faults.install(
            FaultPlan([FaultRule(point="repl.apply.record", action="error")])
        )
        with pytest.raises(FaultInjectedError):
            follower.ship_append(follower_engine, tail[0])
        # The fault fired before the append: nothing reached the WAL.
        assert follower.delta_tail(0) == []


class TestShippedSnapshot:
    def test_install_reproduces_state_byte_identically(self, tmp_path):
        leader, leader_engine = seeded_leader(tmp_path / "leader")
        leader.compact(leader_engine)
        follower = SynopsisStore(tmp_path / "follower", replica=True)
        follower_engine = build_engine()
        follower.install_shipped_snapshot(
            follower_engine, leader.snapshot_path.read_text()
        )
        assert engine_fingerprint(follower_engine) == engine_fingerprint(
            leader_engine
        )
        assert follower.sequence == leader.snapshot_sequence
        assert follower.fencing_epoch == 1
        # And the installed document itself is the leader's bytes.
        assert (
            follower.snapshot_path.read_bytes() == leader.snapshot_path.read_bytes()
        )

    def test_corrupt_document_is_typed_not_applied(self, tmp_path):
        leader, leader_engine = seeded_leader(tmp_path / "leader")
        leader.compact(leader_engine)
        follower = SynopsisStore(tmp_path / "follower", replica=True)
        follower_engine = build_engine()
        document = leader.snapshot_path.read_text()
        from repro.errors import ReplicationError

        with pytest.raises(ReplicationError):
            follower.install_shipped_snapshot(
                follower_engine, document[: len(document) // 2]
            )
        assert follower.sequence == 0
        assert not follower.snapshot_path.is_file()


class TestReplicaAndFencing:
    def test_replica_store_refuses_local_flush(self, tmp_path):
        leader, leader_engine = seeded_leader(tmp_path / "leader")
        leader.compact(leader_engine)
        follower = SynopsisStore(tmp_path / "follower", replica=True)
        follower_engine = build_engine()
        follower.install_shipped_snapshot(
            follower_engine, leader.snapshot_path.read_text()
        )
        record_one(follower_engine, DELTA_SQL[0])  # dirty local engine
        with pytest.raises(StoreError):
            follower.flush(follower_engine)

    def test_fencing_sidecar_survives_reopen(self, tmp_path):
        store = SynopsisStore(tmp_path)
        store.adopt_epoch(3, "lineage-c")
        reopened = SynopsisStore(tmp_path)
        assert reopened.fencing_epoch == 3
        assert reopened.fencing_lineage == "lineage-c"

    def test_older_epoch_is_fenced(self, tmp_path):
        store = SynopsisStore(tmp_path)
        store.adopt_epoch(3, "lineage-c")
        with pytest.raises(EpochFencedError):
            store.adopt_epoch(2, "lineage-b")

    def test_equal_epoch_divergent_lineage_is_fenced(self, tmp_path):
        store = SynopsisStore(tmp_path)
        store.adopt_epoch(3, "lineage-c")
        with pytest.raises(EpochFencedError):
            store.adopt_epoch(3, "lineage-d")
        store.adopt_epoch(3, "lineage-c")  # same lineage is fine

    def test_directory_fsync_fault_point_guards_snapshot_rotation(self, tmp_path):
        store, engine = seeded_leader(tmp_path)
        faults.install(
            FaultPlan([FaultRule(point="store.dir.fsync", action="error")])
        )
        with pytest.raises(FaultInjectedError):
            store.compact(engine)
