"""In-process leader/follower pairs: pull-apply, degraded mode, promotion.

Two real HTTP servers on loopback -- a leader and a follower whose
:class:`~repro.serve.replication.follower.ReplicationPuller` pulls the
leader's WAL -- exercised through real :class:`VerdictClient` traffic:

* the follower converges to the leader and serves byte-identical answers
  (by :func:`answer_fingerprint`);
* degraded read-only mode: every mutating route is rejected with a typed
  503 naming the leader, asks still work (with recording forced off);
* ``/v1/healthz`` and ``/v1/replication/status`` report role, epoch, and
  lag; audit records are stamped with role and epoch;
* sync-ack mode blocks feedback acks on a follower's confirming pull and
  surfaces an unconfirmed write as a typed 503 (``replication_timeout``);
* promotion bumps the fencing epoch, the promoted follower accepts writes,
  and the deposed leader's late write is rejected with a typed epoch error.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.serve.client import ConflictError, ServerClosingError, VerdictClient
from repro.serve.http.protocol import answer_fingerprint
from repro.serve.replication import ReplicationManager, ReplicationPuller
from repro.serve.replication.state import ROLE_FOLLOWER, ROLE_LEADER

from http_harness import sales_rows, start_server

ROWS = {"acme": 1_500}
ASK_SQL = "SELECT AVG(revenue) FROM sales WHERE week >= 5 AND week <= 40"
RECORD_SQL = [
    "SELECT AVG(revenue) FROM sales WHERE week >= 1 AND week <= 20",
    "SELECT COUNT(*) FROM sales WHERE week >= 10 AND week <= 35",
    "SELECT AVG(revenue) FROM sales WHERE week >= 18 AND week <= 50",
]


def wait_until(predicate, timeout_s: float = 15.0, interval_s: float = 0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval_s)
    raise AssertionError("condition not reached within the timeout")


class Pair:
    """One leader + one pulling follower, with per-node clients."""

    def __init__(self, root, ack_mode: str = "async", ack_timeout_s: float = 10.0):
        self.leader_repl = ReplicationManager(
            root / "leader",
            role=ROLE_LEADER,
            ack_mode=ack_mode,
            ack_timeout_s=ack_timeout_s,
        )
        self.leader = start_server(
            root / "leader", ROWS, replication=self.leader_repl, flush_every=1
        )
        leader_url = f"127.0.0.1:{self.leader.port}"
        self.follower_repl = ReplicationManager(
            root / "follower", role=ROLE_FOLLOWER, leader_url=leader_url
        )
        self.follower = start_server(
            root / "follower",
            ROWS,
            replication=self.follower_repl,
            precreate=False,
            flush_every=1,
        )
        self.puller = ReplicationPuller(
            self.follower_repl,
            self.follower.tenants,
            leader_url,
            poll_interval_s=0.05,
        )
        self.follower_repl.bind(puller=self.puller)
        self.puller.start()

    def client(self, server, **kwargs) -> VerdictClient:
        kwargs.setdefault("tenant", "acme")
        kwargs.setdefault("max_retries", 0)
        return VerdictClient(host="127.0.0.1", port=server.port, **kwargs)

    def leader_seq(self) -> int:
        with self.leader.tenants.lease("acme") as tenant:
            return tenant.store.sequence

    def follower_seq(self) -> int:
        if not self.follower.tenants.exists("acme"):
            return -1
        with self.follower.tenants.lease("acme") as tenant:
            return tenant.store.sequence

    def wait_caught_up(self):
        wait_until(lambda: self.follower_seq() >= self.leader_seq())

    def close(self):
        self.puller.stop()
        self.follower.close()
        self.leader.close()


@pytest.fixture
def pair(tmp_path):
    built = Pair(tmp_path)
    yield built
    built.close()


class TestCatchUp:
    def test_follower_converges_and_answers_byte_identically(self, pair):
        with pair.client(pair.leader) as leader:
            for sql in RECORD_SQL:
                assert leader.record(sql)
            pair.wait_caught_up()
            with pair.client(pair.follower) as follower:
                ours = follower.ask(ASK_SQL, record=False)
                theirs = leader.ask(ASK_SQL, record=False)
        assert answer_fingerprint(ours) == answer_fingerprint(theirs)
        assert pair.follower_repl.epoch.number == pair.leader_repl.epoch.number

    def test_status_and_healthz_report_role_epoch_lag(self, pair):
        with pair.client(pair.leader) as leader:
            leader.record(RECORD_SQL[0])
            pair.wait_caught_up()
            leader_status = leader.replication_status()
            leader_health = leader.health()
        assert leader_status["replication"]["role"] == "leader"
        assert leader_status["replication"]["epoch"] >= 1
        assert leader_status["stores"]["acme"]["replica"] is False
        # The follower's confirming pulls registered as acks.
        assert leader_status["replication"]["acked"].get("acme", -1) >= 0
        assert leader_health["replication"]["role"] == "leader"
        with pair.client(pair.follower) as follower:
            status = follower.replication_status()
            health = follower.health()
            exposition = follower.metrics_prometheus(tenant="")  # server-wide
        assert status["replication"]["role"] == "follower"
        assert status["replication"]["leader"] == f"127.0.0.1:{pair.leader.port}"
        lag = status["replication"]["tenants"]["acme"]
        assert lag["lag_records"] == 0
        assert health["replication"]["max_lag_records"] == 0
        assert "verdict_replication_role" in exposition
        assert "verdict_replication_lag_records" in exposition

    def test_audit_records_are_stamped_with_role_and_epoch(self, pair, tmp_path):
        with pair.client(pair.leader) as leader:
            leader.record(RECORD_SQL[0])
        lines = [
            json.loads(line)
            for path in sorted((tmp_path / "leader" / "audit").glob("*.jsonl"))
            for line in path.read_text().splitlines()
            if line.strip()
        ]
        assert lines, "the leader must have audited the request"
        assert all(record.get("role") == "leader" for record in lines)
        assert all(isinstance(record.get("epoch"), int) for record in lines)


class TestDegradedMode:
    def test_mutating_routes_are_rejected_with_leader_hint(self, pair):
        with pair.client(pair.leader) as leader:
            leader.record(RECORD_SQL[0])
        pair.wait_caught_up()
        leader_url = f"127.0.0.1:{pair.leader.port}"
        with pair.client(pair.follower, follow_leader_hints=False) as follower:
            for call in (
                lambda: follower.append("sales", sales_rows(5, seed=1)),
                lambda: follower.record(RECORD_SQL[1]),
                lambda: follower.train(),
                lambda: follower.create_tenant("globex"),
            ):
                with pytest.raises(ServerClosingError) as excinfo:
                    call()
                assert excinfo.value.code == "read_only_follower"
                assert excinfo.value.status == 503
                assert leader_url in str(excinfo.value)

    def test_asks_still_serve_and_never_record(self, pair):
        with pair.client(pair.leader) as leader:
            leader.record(RECORD_SQL[0])
        pair.wait_caught_up()
        before = pair.follower_seq()
        with pair.client(pair.follower, follow_leader_hints=False) as follower:
            answer = follower.ask(ASK_SQL, record=True)  # recording forced off
        assert answer["rows"]
        assert pair.follower_seq() == before

    def test_client_follows_the_leader_hint(self, pair):
        """A write sent to the follower lands on the leader transparently."""
        with pair.client(pair.follower) as client:  # hints on by default
            assert client.record(RECORD_SQL[0])
            assert client.failovers_performed == 1
            assert client.port == pair.leader.port


class TestSyncAck:
    def test_acked_write_waits_for_the_follower(self, tmp_path):
        pair = Pair(tmp_path, ack_mode="sync", ack_timeout_s=10.0)
        try:
            with pair.client(pair.leader) as leader:
                assert leader.record(RECORD_SQL[0])
            # The ack returned, so the follower must already cover the seq.
            assert pair.follower_seq() >= pair.leader_seq()
        finally:
            pair.close()

    def test_unconfirmed_write_is_a_typed_timeout(self, tmp_path):
        pair = Pair(tmp_path, ack_mode="sync", ack_timeout_s=0.3)
        try:
            pair.puller.stop()  # no follower pulls: acks cannot be confirmed
            with pair.client(pair.leader) as leader:
                with pytest.raises(ServerClosingError) as excinfo:
                    leader.record(RECORD_SQL[0])
            assert excinfo.value.code == "replication_timeout"
            # Durable locally despite the unconfirmed ack.
            assert pair.leader_seq() >= 1
        finally:
            pair.close()


class TestPromotion:
    def test_promote_bumps_epoch_and_fences_the_old_leader(self, pair):
        with pair.client(pair.leader) as leader:
            for sql in RECORD_SQL:
                leader.record(sql)
        pair.wait_caught_up()
        old_epoch = pair.leader_repl.epoch.number
        with pair.client(pair.follower) as follower:
            result = follower.promote()
        assert result["promoted"] is True
        assert result["replication"]["role"] == "leader"
        assert result["replication"]["epoch"] == old_epoch + 1
        # The new leader accepts writes under the bumped epoch...
        with pair.client(pair.follower, follow_leader_hints=False) as follower:
            assert follower.record(RECORD_SQL[0])
        # ...and the deposed leader was fenced: late writes are hard errors.
        assert pair.leader_repl.fenced
        with pair.client(pair.leader, follow_leader_hints=False) as deposed:
            with pytest.raises(ConflictError) as excinfo:
                deposed.record(RECORD_SQL[1])
        assert excinfo.value.code == "epoch_fenced"

    def test_promote_is_idempotent_on_a_leader(self, pair):
        with pair.client(pair.leader) as leader:
            first = leader.promote()
            second = leader.promote()
        assert first["promoted"] is True
        assert first["replication"]["epoch"] == second["replication"]["epoch"]
