"""Property test: shipping damage never breaks the prefix invariant.

Hypothesis drives arbitrary interleavings of shipping events against a
follower store -- clean applies, torn shipped lines (truncated at any byte),
process crashes (the in-memory store and engine are discarded and reloaded
from disk), and crash-torn tails of the follower's own delta log -- and
asserts the one invariant everything else rests on:

    the follower's applied state is always an exact *prefix* of the
    leader's acked log -- its sequence never exceeds the leader's, and its
    learned state is byte-identical to the oracle state at that sequence.

The oracle is computed once per module by replaying the leader's shipped
lines one at a time through a pristine replica (the same metadata-chain
idea as ``tests/serve/test_store_corruption.py``), giving a fingerprint for
every reachable sequence.
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ReplicationError
from repro.serve.store import SynopsisStore

from test_store_envelope import (
    DELTA_SQL,
    TRAINING,
    build_engine,
    engine_fingerprint,
    record_one,
)

MORE_DELTA_SQL = DELTA_SQL + [
    "SELECT AVG(revenue) FROM sales WHERE week >= 33 AND week <= 52",
    "SELECT COUNT(*) FROM sales WHERE week >= 7 AND week <= 22",
]


@dataclass(frozen=True)
class Shipped:
    """The leader's shipped artifacts plus per-sequence oracle fingerprints."""

    document: str  #: the bootstrap snapshot document
    lines: tuple[str, ...]  #: the shipped delta lines, in order
    snapshot_seq: int
    leader_seq: int
    oracle: dict[int, str]  #: sequence -> canonical engine state


@pytest.fixture(scope="module")
def shipped(tmp_path_factory) -> Shipped:
    directory = tmp_path_factory.mktemp("ship-leader")
    engine = build_engine()
    for sql in TRAINING:
        engine.execute(sql)
    store = SynopsisStore(directory)
    store.adopt_epoch(1, "lineage-a")
    assert store.flush(engine) == "snapshot"
    document = store.snapshot_path.read_text()
    for sql in MORE_DELTA_SQL:
        record_one(engine, sql)
        assert store.flush(engine) == "delta"
    lines = tuple(store.delta_tail(0))
    assert len(lines) == len(MORE_DELTA_SQL)

    oracle_dir = tmp_path_factory.mktemp("ship-oracle")
    oracle_store = SynopsisStore(oracle_dir, replica=True)
    oracle_engine = build_engine()
    oracle_store.install_shipped_snapshot(oracle_engine, document)
    oracle = {oracle_store.sequence: engine_fingerprint(oracle_engine)}
    for line in lines:
        oracle_store.ship_append(oracle_engine, line)
        oracle[oracle_store.sequence] = engine_fingerprint(oracle_engine)
    return Shipped(
        document=document,
        lines=lines,
        snapshot_seq=store.snapshot_sequence,
        leader_seq=store.sequence,
        oracle=oracle,
    )


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_follower_state_is_always_a_prefix_of_the_acked_log(shipped, data):
    directory = Path(tempfile.mkdtemp(prefix="ship-follower-"))
    try:
        store = SynopsisStore(directory, replica=True)
        engine = build_engine()
        store.install_shipped_snapshot(engine, shipped.document)
        position = 0  # shipped lines applied so far

        def check_invariant():
            assert store.sequence <= shipped.leader_seq
            assert store.sequence == shipped.snapshot_seq + position
            assert engine_fingerprint(engine) == shipped.oracle[store.sequence]

        check_invariant()
        for _ in range(data.draw(st.integers(0, 8), label="steps")):
            remaining = len(shipped.lines) - position
            action = data.draw(
                st.sampled_from(
                    (["apply", "torn_ship"] if remaining else [])
                    + ["crash_restart", "crash_torn_tail"]
                ),
                label="action",
            )
            if action == "apply":
                batch = data.draw(st.integers(1, remaining), label="batch")
                for line in shipped.lines[position : position + batch]:
                    store.ship_append(engine, line)
                    position += 1
            elif action == "torn_ship":
                # The next shipped line arrives truncated at an arbitrary
                # byte: the CRC check must reject it atomically -- nothing
                # applied, nothing appended.
                line = shipped.lines[position]
                cut = data.draw(st.integers(1, len(line) - 1), label="cut")
                with pytest.raises(ReplicationError):
                    store.ship_append(engine, line[:cut])
            elif action in ("crash_restart", "crash_torn_tail"):
                if action == "crash_torn_tail" and store.delta_path.is_file():
                    # A crash tears the follower's own delta log at an
                    # arbitrary byte; recovery truncates to the longest
                    # valid prefix, moving the position *backwards*.
                    size = store.delta_path.stat().st_size
                    if size:
                        keep = data.draw(st.integers(0, size - 1), label="keep")
                        with open(store.delta_path, "r+b") as handle:
                            handle.truncate(keep)
                store = SynopsisStore(directory, replica=True)
                engine = build_engine()
                assert store.load_into(engine)
                position = store.sequence - shipped.snapshot_seq
            check_invariant()
    finally:
        shutil.rmtree(directory, ignore_errors=True)
