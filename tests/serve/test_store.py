"""Persistence tests: snapshot -> delta -> compaction round trips.

The store's contract is *exact* resumption: an engine restored from disk
must produce byte-identical inference results to the engine that was
persisted -- including after incremental factor extensions, training, and
data appends.  The property test drives a randomized schedule of
record/query/flush/append operations and checks the invariant at every
flush point.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.aqp.online_agg import OnlineAggregationEngine
from repro.config import SamplingConfig, VerdictConfig
from repro.core.engine import VerdictEngine
from repro.core.synopsis import QuerySynopsis
from repro.db.catalog import Catalog
from repro.serve.store import SynopsisStore
from repro.workloads.synthetic import make_sales_table

TRAINING = [
    "SELECT AVG(revenue) FROM sales WHERE week >= 1 AND week <= 20",
    "SELECT AVG(revenue) FROM sales WHERE week >= 10 AND week <= 30",
    "SELECT AVG(revenue) FROM sales WHERE week >= 25 AND week <= 45",
    "SELECT COUNT(*) FROM sales WHERE week >= 5 AND week <= 35",
    "SELECT COUNT(*) FROM sales WHERE week >= 20 AND week <= 50",
]
PROBES = [
    "SELECT AVG(revenue) FROM sales WHERE week >= 12 AND week <= 40",
    "SELECT COUNT(*) FROM sales WHERE week >= 8 AND week <= 44",
    "SELECT AVG(revenue), COUNT(*) FROM sales WHERE week >= 30 AND week <= 50",
]


def build_engine(num_rows: int = 3_000, seed: int = 9, append_seeds: tuple[int, ...] = ()) -> VerdictEngine:
    """An engine over the deterministic sales table.

    ``append_seeds`` replays data appends into the base table: the store
    persists *learned* state only, so a restarted engine is constructed over
    the database as it stands (base rows plus every appended batch).
    """
    table = make_sales_table(num_rows=num_rows, num_weeks=52, seed=seed)
    for append_seed in append_seeds:
        extra = make_sales_table(num_rows=200, num_weeks=52, seed=append_seed)
        table = table.append(extra.renamed(table.name))
    catalog = Catalog()
    catalog.add_table(table, fact=True)
    aqp = OnlineAggregationEngine(
        catalog, sampling=SamplingConfig(sample_ratio=0.25, num_batches=4, seed=2)
    )
    return VerdictEngine(catalog, aqp, config=VerdictConfig(learn_length_scales=False))


def probe_results(engine: VerdictEngine) -> list[tuple[float, float]]:
    """(value, error) of every probe cell -- compared with exact equality."""
    cells = []
    for sql in PROBES:
        answer = engine.execute(sql, record=False)[-1]
        for row in answer.rows:
            for estimate in row.estimates.values():
                cells.append((estimate.value, estimate.error))
    return cells


def assert_identical_engines(original: VerdictEngine, restored: VerdictEngine) -> None:
    assert len(restored.synopsis) == len(original.synopsis)
    assert restored.synopsis.version == original.synopsis.version
    assert probe_results(restored) == probe_results(original)


def reload(store: SynopsisStore, append_seeds: tuple[int, ...] = ()) -> VerdictEngine:
    engine = build_engine(append_seeds=append_seeds)
    assert store.load_into(engine)
    return engine


class TestSnapshotRoundTrip:
    def test_snapshot_restores_byte_identical_inference(self, tmp_path):
        engine = build_engine()
        for sql in TRAINING:
            engine.execute(sql)
        engine.train()
        store = SynopsisStore(tmp_path)
        assert store.flush(engine) == "snapshot"
        assert_identical_engines(engine, reload(store))

    def test_snapshot_rotation_is_atomic(self, tmp_path):
        engine = build_engine()
        for sql in TRAINING[:2]:
            engine.execute(sql)
        store = SynopsisStore(tmp_path)
        store.flush(engine)
        engine.execute(TRAINING[2])
        store.save_snapshot(engine)
        leftovers = [p.name for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []
        assert_identical_engines(engine, reload(store))

    def test_restart_after_register_append(self, tmp_path):
        engine = build_engine()
        for sql in TRAINING:
            engine.execute(sql)
        engine.train()
        appended = make_sales_table(num_rows=200, num_weeks=52, seed=77)
        engine.register_append("sales", appended)
        store = SynopsisStore(tmp_path)
        assert store.flush(engine) == "snapshot"
        assert_identical_engines(engine, reload(store, append_seeds=(77,)))

    def test_corrupt_snapshot_is_quarantined_not_fatal(self, tmp_path):
        engine = build_engine()
        engine.execute(TRAINING[0])
        store = SynopsisStore(tmp_path)
        store.flush(engine)
        store.snapshot_path.write_text("{not json")
        fresh = SynopsisStore(tmp_path)
        # No previous generation exists yet, so nothing is recoverable --
        # but the store quarantines the bad file and starts empty instead
        # of crash-looping on it.
        assert not fresh.load_into(build_engine())
        assert fresh.quarantined
        assert fresh.counters["snapshots_quarantined"] == 1
        assert not store.snapshot_path.exists()
        assert list(fresh.quarantine_directory.iterdir())
        # The quarantine is sticky on disk: a second restart finds an empty
        # store, not the same corruption again.
        assert not SynopsisStore(tmp_path).load_into(build_engine())

    def test_unsupported_format_is_quarantined_not_fatal(self, tmp_path):
        engine = build_engine()
        engine.execute(TRAINING[0])
        store = SynopsisStore(tmp_path)
        store.flush(engine)
        from repro.core.serialize import decode_snapshot_document, encode_snapshot_document

        payload = decode_snapshot_document(store.snapshot_path.read_text())
        payload["format"] = 999
        store.snapshot_path.write_text(encode_snapshot_document(payload))
        fresh = SynopsisStore(tmp_path)
        assert not fresh.load_into(build_engine())
        assert fresh.quarantined
        assert fresh.counters["snapshots_quarantined"] == 1
        assert any("format" in note for note in fresh.recovery_notes)

    def test_corrupt_current_snapshot_falls_back_to_previous_generation(self, tmp_path):
        engine = build_engine()
        engine.execute(TRAINING[0])
        store = SynopsisStore(tmp_path)
        store.flush(engine)
        engine.execute(TRAINING[1])
        store.save_snapshot(engine)
        assert store.previous_snapshot_path.is_file()
        store.snapshot_path.write_text("garbage bytes")
        fresh = SynopsisStore(tmp_path)
        restored = build_engine()
        assert fresh.load_into(restored)
        assert fresh.quarantined
        assert fresh.counters["previous_generation_recoveries"] == 1
        # The previous generation predates TRAINING[1]'s snippets.
        assert restored.synopsis.version < engine.synopsis.version

    def test_empty_store_loads_nothing(self, tmp_path):
        store = SynopsisStore(tmp_path)
        assert not store.exists()
        assert not store.load_into(build_engine())


class TestDeltaLog:
    def test_record_only_window_flushes_as_delta(self, tmp_path):
        engine = build_engine()
        for sql in TRAINING[:3]:
            engine.execute(sql)
        store = SynopsisStore(tmp_path)
        store.flush(engine)
        # Record raw answers without running inference in between: the
        # learned factors are untouched, so the flush is a cheap delta.
        for sql in TRAINING[3:]:
            parsed, _ = engine.check(sql)
            engine.record(parsed, engine.aqp.final_answer(parsed))
        assert store.flush(engine) == "delta"
        assert store.delta_log_length == 1
        assert_identical_engines(engine, reload(store))

    def test_inference_since_flush_forces_snapshot(self, tmp_path):
        engine = build_engine()
        for sql in TRAINING[:3]:
            engine.execute(sql)
        store = SynopsisStore(tmp_path)
        store.flush(engine)
        # An AVG query whose aggregate function already has a prepared factor:
        # processing extends it (rank-k), which a delta cannot express.
        engine.execute("SELECT AVG(revenue) FROM sales WHERE week >= 18 AND week <= 42")
        assert store.flush(engine) == "snapshot"
        assert_identical_engines(engine, reload(store))

    def test_compaction_folds_log_into_snapshot(self, tmp_path):
        engine = build_engine()
        engine.execute(TRAINING[0])
        store = SynopsisStore(tmp_path, compact_after=2)
        store.flush(engine)
        for sql in TRAINING[1:4]:
            parsed, _ = engine.check(sql)
            engine.record(parsed, engine.aqp.final_answer(parsed))
            store.flush(engine)
        # Third delta flush crossed compact_after=2 and became a snapshot.
        assert store.delta_log_length < 3
        assert store.snapshots_written >= 2
        assert_identical_engines(engine, reload(store))

    def test_torn_final_delta_line_is_tolerated(self, tmp_path):
        engine = build_engine()
        engine.execute(TRAINING[0])
        store = SynopsisStore(tmp_path)
        store.flush(engine)
        parsed, _ = engine.check(TRAINING[1])
        engine.record(parsed, engine.aqp.final_answer(parsed))
        assert store.flush(engine) == "delta"
        with open(store.delta_path, "a", encoding="utf-8") as handle:
            handle.write('{"version": 999, "base_ver')  # simulated crash
        restored = build_engine()
        assert SynopsisStore(tmp_path).load_into(restored)
        # Everything before the torn line replayed.
        assert restored.synopsis.version == engine.synopsis.version

    def test_torn_tail_is_truncated_so_later_flushes_survive_restart(self, tmp_path):
        """A flush after crash recovery must not append onto the torn tail
        (that would merge two records into one unparsable line and silently
        lose every later record on the next restart)."""
        engine = build_engine()
        engine.execute(TRAINING[0])
        store = SynopsisStore(tmp_path)
        store.flush(engine)
        with open(store.delta_path, "a", encoding="utf-8") as handle:
            handle.write('{"version": 999, "base_ver')  # simulated crash
        # Crash recovery: restore, then keep serving and flushing.
        survivor = build_engine()
        recovered_store = SynopsisStore(tmp_path)
        assert recovered_store.load_into(survivor)
        parsed, _ = survivor.check(TRAINING[1])
        survivor.record(parsed, survivor.aqp.final_answer(parsed))
        assert recovered_store.flush(survivor) == "delta"
        # A second restart must replay that delta record.
        final = build_engine()
        assert SynopsisStore(tmp_path).load_into(final)
        assert final.synopsis.version == survivor.synopsis.version
        assert len(final.synopsis) == len(survivor.synopsis)

    def test_noop_flush_when_nothing_changed(self, tmp_path):
        engine = build_engine()
        engine.execute(TRAINING[0])
        store = SynopsisStore(tmp_path)
        assert store.flush(engine) == "snapshot"
        assert store.flush(engine) == "noop"


class TestSynopsisStateDict:
    def test_round_trip_preserves_identity_order_and_log(self):
        engine = build_engine()
        for sql in TRAINING:
            engine.execute(sql)
        synopsis = engine.synopsis
        clone = QuerySynopsis.from_state(synopsis.state_dict())
        assert clone.version == synopsis.version
        assert clone.keys() == synopsis.keys()
        for key in synopsis.keys():
            original = [(s.snippet_id, s.sequence, s.raw_answer, s.raw_error)
                        for s in synopsis.snippets_for(key)]
            restored = [(s.snippet_id, s.sequence, s.raw_answer, s.raw_error)
                        for s in clone.snippets_for(key)]
            assert restored == original
        # The change log survives, so deltas straddling the snapshot work.
        for version in range(max(0, synopsis.version - 3), synopsis.version + 1):
            original_delta = synopsis.changes_since(version)
            restored_delta = clone.changes_since(version)
            if original_delta is None:
                assert restored_delta is None
            else:
                assert restored_delta is not None
                assert restored_delta.dirty == original_delta.dirty
                assert {
                    key: [s.snippet_id for s in snippets]
                    for key, snippets in restored_delta.appended.items()
                } == {
                    key: [s.snippet_id for s in snippets]
                    for key, snippets in original_delta.appended.items()
                }


@settings(max_examples=12, deadline=None)
@given(
    schedule=st.lists(
        st.sampled_from(["record", "query", "flush", "append"]),
        min_size=3,
        max_size=9,
    )
)
def test_property_random_schedule_round_trips_byte_identical(tmp_path_factory, schedule):
    """Snapshot -> delta -> compaction property: any schedule of synopsis
    mutations and flushes reloads to byte-identical inference results."""
    directory = tmp_path_factory.mktemp("store")
    engine = build_engine()
    store = SynopsisStore(directory, compact_after=2)
    training = iter(TRAINING * 3)
    append_seeds: list[int] = []
    for step in schedule:
        if step == "record":
            parsed, _ = engine.check(next(training))
            engine.record(parsed, engine.aqp.final_answer(parsed))
        elif step == "query":
            engine.execute(next(training), record=True)
        elif step == "append":
            seed = 31 + len(append_seeds)
            engine.register_append(
                "sales", make_sales_table(num_rows=200, num_weeks=52, seed=seed)
            )
            append_seeds.append(seed)
        else:
            store.flush(engine)
    store.flush(engine)
    assert_identical_engines(engine, reload(store, append_seeds=tuple(append_seeds)))
