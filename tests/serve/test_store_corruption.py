"""Property tests: the store recovers from *arbitrary* persistence damage.

Hypothesis drives random corruptions of a seeded store directory -- tail
truncations at any byte offset and single-byte flips anywhere in the delta
log or snapshot -- and asserts the recovery contract of
:class:`~repro.serve.store.SynopsisStore`:

* loading never raises, whatever the damage;
* the delta log recovers to exactly its longest valid prefix (computed here
  from the per-record metadata chain, independently of the store's replay);
* recovery is idempotent and byte-identical: two independent loads of the
  same damaged directory produce engines with identical serialised state;
* a quarantined snapshot never crash-loops -- the bad bytes are moved
  aside, so the next restart does not trip over them again.

Every example copies the seeded directory, so corruptions never compound.
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.aqp.online_agg import OnlineAggregationEngine
from repro.config import SamplingConfig, VerdictConfig
from repro.core.engine import VerdictEngine
from repro.core.serialize import canonical_json, decode_checked_record
from repro.db.catalog import Catalog
from repro.serve.store import SynopsisStore
from repro.workloads.synthetic import make_sales_table

TRAINING = [
    "SELECT AVG(revenue) FROM sales WHERE week >= 1 AND week <= 20",
    "SELECT AVG(revenue) FROM sales WHERE week >= 10 AND week <= 30",
    "SELECT COUNT(*) FROM sales WHERE week >= 5 AND week <= 35",
]
DELTA_SQL = [
    "SELECT COUNT(*) FROM sales WHERE week >= 20 AND week <= 50",
    "SELECT AVG(revenue) FROM sales WHERE week >= 25 AND week <= 45",
    "SELECT COUNT(*) FROM sales WHERE week >= 2 AND week <= 18",
    "SELECT AVG(revenue) FROM sales WHERE week >= 33 AND week <= 52",
]


def build_engine() -> VerdictEngine:
    table = make_sales_table(num_rows=3_000, num_weeks=52, seed=9)
    catalog = Catalog()
    catalog.add_table(table, fact=True)
    aqp = OnlineAggregationEngine(
        catalog, sampling=SamplingConfig(sample_ratio=0.25, num_batches=4, seed=2)
    )
    return VerdictEngine(catalog, aqp, config=VerdictConfig(learn_length_scales=False))


@dataclass(frozen=True)
class SeededStore:
    """A pristine store directory plus the ground truth to recover against."""

    directory: Path
    snapshot_version: int  #: synopsis version folded into snapshot.json
    delta_versions: tuple[int, ...]  #: version after each delta record, in order

    def expected_version(self, prefix_records: int) -> int:
        """Synopsis version after replaying ``prefix_records`` delta records."""
        if prefix_records == 0:
            return self.snapshot_version
        return self.delta_versions[prefix_records - 1]


@pytest.fixture(scope="module")
def seeded(tmp_path_factory) -> SeededStore:
    """One snapshot plus several single-record delta flushes."""
    directory = tmp_path_factory.mktemp("pristine-store")
    engine = build_engine()
    for sql in TRAINING:
        engine.execute(sql)
    store = SynopsisStore(directory)
    assert store.flush(engine) == "snapshot"
    snapshot_version = engine.synopsis.version
    delta_versions = []
    for sql in DELTA_SQL:
        parsed, _ = engine.check(sql)
        engine.record(parsed, engine.aqp.final_answer(parsed))
        assert store.flush(engine) == "delta"
        delta_versions.append(engine.synopsis.version)
    return SeededStore(directory, snapshot_version, tuple(delta_versions))


def damaged_copy(seeded: SeededStore, tmp_path_factory) -> Path:
    target = tmp_path_factory.mktemp("damaged")
    shutil.rmtree(target)
    shutil.copytree(seeded.directory, target)
    return target


def load(directory: Path) -> tuple[SynopsisStore, VerdictEngine, bool]:
    store = SynopsisStore(directory)
    engine = build_engine()
    loaded = store.load_into(engine)
    return store, engine, loaded


def engine_fingerprint(engine: VerdictEngine) -> str:
    """Canonical bytes of the full learned state (factors included)."""
    return canonical_json(engine.state_dict(include_prepared=True))


def oracle_prefix(seeded: SeededStore, lines: list[str]) -> int:
    """Longest replayable prefix of (possibly damaged) delta-log lines.

    Mirrors the store's acceptance rules from record *metadata* alone --
    CRC validity and the base-version chain -- without touching an engine,
    so the store's actual recovery has an independent reference.
    """
    current = seeded.snapshot_version
    kept = 0
    for line in lines:
        record = decode_checked_record(line)
        if record is None or not isinstance(record, dict):
            break
        version = record.get("version", -1)
        if version <= current:
            kept += 1  # stale or opaque record: kept but not replayed
            continue
        if record.get("base_version") != current:
            break
        current = version
        kept += 1
    return kept


def oracle_version(seeded: SeededStore, lines: list[str]) -> int:
    current = seeded.snapshot_version
    for line in lines[: oracle_prefix(seeded, lines)]:
        record = decode_checked_record(line)
        version = record.get("version", -1) if isinstance(record, dict) else -1
        if version > current:
            current = version
    return current


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_any_tail_truncation_recovers_the_longest_valid_prefix(
    seeded, tmp_path_factory, data
):
    directory = damaged_copy(seeded, tmp_path_factory)
    delta_path = directory / "deltas.jsonl"
    raw = delta_path.read_bytes()
    cut = data.draw(st.integers(min_value=0, max_value=len(raw) - 1), label="cut")
    delta_path.write_bytes(raw[:cut])

    store, engine, loaded = load(directory)
    assert loaded, "the snapshot is intact; truncated deltas never unload it"
    surviving = [
        line for line in raw[:cut].decode("utf-8", "replace").splitlines() if line
    ]
    assert engine.synopsis.version == oracle_version(seeded, surviving)
    # The log was rewritten to the valid prefix: a second restart replays
    # the identical state with nothing left to repair.
    again_store, again, _ = load(directory)
    assert again_store.counters["tail_recoveries"] == 0
    assert engine_fingerprint(again) == engine_fingerprint(engine)


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_any_single_byte_flip_in_the_delta_log_recovers_a_valid_prefix(
    seeded, tmp_path_factory, data
):
    directory = damaged_copy(seeded, tmp_path_factory)
    delta_path = directory / "deltas.jsonl"
    raw = bytearray(delta_path.read_bytes())
    index = data.draw(st.integers(min_value=0, max_value=len(raw) - 1), label="index")
    flip = data.draw(st.integers(min_value=1, max_value=255), label="xor")
    raw[index] ^= flip
    delta_path.write_bytes(bytes(raw))

    damaged_lines = [
        line for line in bytes(raw).decode("utf-8", "replace").splitlines() if line
    ]
    store, engine, loaded = load(directory)
    assert loaded
    assert engine.synopsis.version == oracle_version(seeded, damaged_lines)
    assert engine.synopsis.version >= seeded.snapshot_version
    # Byte-identical recovery: an independent load of the damaged directory
    # reaches exactly the same learned state.
    _, again, _ = load(directory)
    assert engine_fingerprint(again) == engine_fingerprint(engine)


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_snapshot_damage_never_crashes_or_crash_loops(
    seeded, tmp_path_factory, data
):
    directory = damaged_copy(seeded, tmp_path_factory)
    snapshot_path = directory / "snapshot.json"
    raw = bytearray(snapshot_path.read_bytes())
    if data.draw(st.booleans(), label="truncate"):
        cut = data.draw(st.integers(min_value=0, max_value=len(raw) - 1), label="cut")
        snapshot_path.write_bytes(bytes(raw[:cut]))
    else:
        index = data.draw(
            st.integers(min_value=0, max_value=len(raw) - 1), label="index"
        )
        raw[index] ^= data.draw(st.integers(min_value=1, max_value=255), label="xor")
        snapshot_path.write_bytes(bytes(raw))

    store, engine, loaded = load(directory)  # must not raise, whatever happened
    if loaded:
        # Either the damage spared the checksummed payload (e.g. the cut
        # landed exactly after the body line, which legacy acceptance still
        # reads) or nothing was damaged at all after normalisation.
        assert engine.synopsis.version >= seeded.snapshot_version
    else:
        assert store.quarantined
        assert store.counters["snapshots_quarantined"] >= 1
        assert not snapshot_path.exists(), "the bad bytes were moved aside"
    # Never a crash loop: the next restart must not trip over the same
    # corruption (either it loads, or the quarantine already removed it).
    second_store, second_engine, second_loaded = load(directory)
    assert second_loaded == loaded
    if loaded:
        assert engine_fingerprint(second_engine) == engine_fingerprint(engine)
    else:
        assert second_store.counters["snapshots_quarantined"] == 0


def test_replayed_answers_are_byte_identical_after_tail_corruption(
    seeded, tmp_path_factory
):
    """The crash-matrix contract at engine level: after recovering from a
    torn tail, two independent restores answer probes identically."""
    directory = damaged_copy(seeded, tmp_path_factory)
    delta_path = directory / "deltas.jsonl"
    with open(delta_path, "a", encoding="utf-8") as handle:
        handle.write('{"crc": 123, "record": {"version"')  # torn mid-append

    _, first, loaded = load(directory)
    assert loaded
    _, second, _ = load(directory)

    def probe(engine: VerdictEngine) -> list[tuple[float, float]]:
        cells = []
        for sql in TRAINING:
            answer = engine.execute(sql, record=False)[-1]
            for row in answer.rows:
                for estimate in row.estimates.values():
                    cells.append((estimate.value, estimate.error))
        return cells

    assert first.synopsis.version == seeded.delta_versions[-1]
    assert probe(first) == probe(second)
