"""Circuit breaker state machine (:mod:`repro.serve.breaker`), on a fake clock."""

from __future__ import annotations

import pytest

from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


def make_breaker(clock, **kwargs) -> CircuitBreaker:
    kwargs.setdefault("window", 4)
    kwargs.setdefault("failure_threshold", 0.5)
    kwargs.setdefault("cooldown_s", 10.0)
    return CircuitBreaker("learned", clock=clock, **kwargs)


def trip(breaker: CircuitBreaker) -> None:
    """Fail enough requests to open the breaker."""
    while breaker.state == CLOSED:
        assert breaker.allow()
        breaker.record_failure()


class TestTripping:
    def test_starts_closed_and_admits(self, clock):
        breaker = make_breaker(clock)
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_opens_only_once_window_is_full(self, clock):
        breaker = make_breaker(clock, window=4, failure_threshold=0.5)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == CLOSED, "3 of a 4-wide window is not enough evidence"
        breaker.record_failure()
        assert breaker.state == OPEN

    def test_successes_keep_the_ratio_below_threshold(self, clock):
        breaker = make_breaker(clock, window=4, failure_threshold=0.75)
        for _ in range(8):
            breaker.record_failure()
            breaker.record_success()
            breaker.record_success()
            breaker.record_success()
        assert breaker.state == CLOSED

    def test_open_rejects(self, clock):
        breaker = make_breaker(clock)
        trip(breaker)
        assert not breaker.allow()


class TestRecovery:
    def test_cooldown_expiry_half_opens(self, clock):
        breaker = make_breaker(clock, cooldown_s=10.0)
        trip(breaker)
        clock.advance(9.9)
        assert breaker.state == OPEN
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN

    def test_half_open_admits_a_bounded_probe(self, clock):
        breaker = make_breaker(clock, probe_limit=1)
        trip(breaker)
        clock.advance(11.0)
        assert breaker.allow(), "the first probe goes through"
        assert not breaker.allow(), "concurrent probes beyond the limit are shed"

    def test_probe_success_closes_and_forgets_history(self, clock):
        breaker = make_breaker(clock)
        trip(breaker)
        clock.advance(11.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        # One new failure must not re-trip off the pre-open window.
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_probe_failure_reopens_for_a_full_cooldown(self, clock):
        breaker = make_breaker(clock, cooldown_s=10.0)
        trip(breaker)
        clock.advance(11.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(9.0)
        assert breaker.state == OPEN
        clock.advance(2.0)
        assert breaker.state == HALF_OPEN

    def test_cancel_releases_the_probe_slot_without_an_outcome(self, clock):
        breaker = make_breaker(clock, probe_limit=1)
        trip(breaker)
        clock.advance(11.0)
        assert breaker.allow()
        breaker.cancel()  # e.g. the caller's deadline expired mid-probe
        assert breaker.state == HALF_OPEN, "a cancelled probe is not a failure"
        assert breaker.allow(), "the slot is free for the next probe"


class TestObservability:
    def test_transition_callback_sees_every_edge(self, clock):
        edges: list[tuple[str, str, str]] = []
        breaker = CircuitBreaker(
            "learned",
            window=2,
            failure_threshold=0.5,
            cooldown_s=10.0,
            clock=clock,
            on_transition=lambda name, old, new: edges.append((name, old, new)),
        )
        trip(breaker)
        clock.advance(11.0)
        assert breaker.allow()
        breaker.record_success()
        assert edges == [
            ("learned", CLOSED, OPEN),
            ("learned", OPEN, HALF_OPEN),
            ("learned", HALF_OPEN, CLOSED),
        ]

    def test_snapshot_reports_state_and_counters(self, clock):
        breaker = make_breaker(clock)
        trip(breaker)
        snapshot = breaker.snapshot()
        assert snapshot["state"] == OPEN
        assert snapshot["transitions"] == 1
        assert snapshot["cooldown_remaining_s"] == pytest.approx(10.0)
