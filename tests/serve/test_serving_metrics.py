"""Metrics tests: histogram buckets, quantiles, and thread safety."""

from __future__ import annotations

import threading

from repro.serve.metrics import LatencyHistogram, ServiceMetrics


class TestLatencyHistogram:
    def test_empty_histogram(self):
        histogram = LatencyHistogram()
        assert histogram.count == 0
        assert histogram.quantile(0.5) == 0.0
        assert histogram.mean_seconds == 0.0

    def test_quantiles_exact_below_reservoir_capacity(self):
        histogram = LatencyHistogram()
        for value in range(1, 101):
            histogram.observe(value / 1000.0)
        assert histogram.count == 100
        # Nearest-rank: p50 of 100 ordered values is the 50th (0.050), not
        # the 51st -- the old implementation rounded the rank up by one.
        assert abs(histogram.quantile(0.5) - 0.050) < 1e-12
        assert abs(histogram.quantile(0.99) - 0.099) < 1e-12
        assert abs(histogram.quantile(1.0) - 0.1) < 1e-12
        assert histogram.max_seconds == 0.1

    def test_quantile_nearest_rank_definition(self):
        # Direct check of the ceil-based nearest-rank rule on a small set:
        # for n=4 values, q=0.5 -> rank ceil(2)=2 -> the 2nd smallest.
        histogram = LatencyHistogram()
        for value in (0.4, 0.1, 0.3, 0.2):
            histogram.observe(value)
        assert histogram.quantile(0.0) == 0.1
        assert histogram.quantile(0.25) == 0.1
        assert histogram.quantile(0.5) == 0.2
        assert histogram.quantile(0.75) == 0.3
        assert histogram.quantile(0.51) == 0.3
        assert histogram.quantile(1.0) == 0.4

    def test_buckets_partition_observations(self):
        histogram = LatencyHistogram()
        samples = [0.00005, 0.0005, 0.005, 0.05, 0.5, 5.0, 50.0]
        for value in samples:
            histogram.observe(value)
        state = histogram.as_dict()
        assert sum(state["buckets"].values()) == len(samples)
        assert state["buckets"]["le_inf"] == 1  # the 50 s outlier

    def test_reservoir_overflow_keeps_quantiles_sane(self):
        histogram = LatencyHistogram(reservoir_size=64)
        for value in range(10_000):
            histogram.observe(0.001 if value % 2 else 0.1)
        p50 = histogram.quantile(0.5)
        assert p50 in (0.001, 0.1)
        assert histogram.count == 10_000


class TestServiceMetrics:
    def test_observe_accumulates_per_route(self):
        metrics = ServiceMetrics()
        metrics.observe("learned", 0.01, model_seconds=0.5, budget_met=True)
        metrics.observe("learned", 0.02, model_seconds=0.7, budget_met=False)
        metrics.observe("exact", 0.10, model_seconds=2.0, budget_met=True, fallback=True)
        state = metrics.as_dict()
        assert state["total_requests"] == 3
        learned = state["routes"]["learned"]
        assert learned["requests"] == 2
        assert learned["budget_met"] == 1
        assert learned["model_seconds"] == 1.2
        assert state["routes"]["exact"]["fallbacks"] == 1
        assert metrics.requests("learned") == 2
        assert metrics.requests() == 3
        assert metrics.requests("missing") == 0

    def test_as_dict_is_plain_data(self):
        import json

        metrics = ServiceMetrics()
        metrics.observe("cached", 0.00001)
        json.dumps(metrics.as_dict())  # must not raise

    def test_concurrent_observations_are_not_lost(self):
        metrics = ServiceMetrics()
        per_thread = 2_000

        def worker(route: str):
            for _ in range(per_thread):
                metrics.observe(route, 0.001)

        threads = [
            threading.Thread(target=worker, args=(route,))
            for route in ("cached", "cached", "learned", "exact")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        state = metrics.as_dict()
        assert state["total_requests"] == 4 * per_thread
        assert state["routes"]["cached"]["requests"] == 2 * per_thread
        assert state["routes"]["cached"]["wall_latency"]["count"] == 2 * per_thread
