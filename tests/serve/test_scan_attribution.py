"""Per-service scan attribution (ISSUE 8 satellite).

Two services in one process must not see each other's partition scans in
their own metrics: each ``VerdictService`` threads a shared
:class:`~repro.db.scan.ScanCounters` through its executors, and
``ServiceMetrics.scan_snapshot`` reads exactly that.  The process-wide view
(every scan in the process, whoever issued it) stays available under
``scan_process``.
"""

from __future__ import annotations

from repro.config import SamplingConfig, VerdictConfig
from repro.db.catalog import Catalog
from repro.db.scan import GLOBAL_SCAN_COUNTERS
from repro.serve import ServiceBudget, VerdictService
from repro.workloads.synthetic import make_sales_table

SAMPLING = SamplingConfig(sample_ratio=0.25, num_batches=4, seed=2)
CONFIG = VerdictConfig(learn_length_scales=False)

SQL = "SELECT COUNT(*) FROM sales"


def build_service(num_rows: int = 2_000) -> VerdictService:
    table = make_sales_table(num_rows=num_rows, num_weeks=52, seed=9)
    catalog = Catalog()
    catalog.add_table(table, fact=True)
    return VerdictService(catalog, sampling=SAMPLING, config=CONFIG)


class TestScanAttribution:
    def test_two_services_do_not_cross_attribute(self):
        with build_service() as one, build_service() as two:
            one.query(SQL, budget=ServiceBudget.exact())
            # Distinct SQL texts: identical repeats would hit the answer
            # cache and never reach the scanner.
            for week in (1, 2, 3):
                two.query(
                    f"SELECT COUNT(*) FROM sales WHERE week >= {week}",
                    budget=ServiceBudget.exact(),
                )

            first = one.metrics.scan_snapshot()
            second = two.metrics.scan_snapshot()
            assert first["scans"] == 1
            assert second["scans"] == 3
            # The exact route scans real rows, so attribution is non-trivial.
            assert first["rows_scanned"] > 0
            assert second["rows_scanned"] > first["rows_scanned"]

    def test_process_wide_view_still_sees_both(self):
        with build_service() as one, build_service() as two:
            baseline = one.metrics.process_scan_snapshot()["scans"]
            one.query(SQL, budget=ServiceBudget.exact())
            two.query(SQL, budget=ServiceBudget.exact())
            process = one.metrics.process_scan_snapshot()
            # Both services' scans land in service one's process-wide delta...
            assert process["scans"] - baseline == 2
            # ...while its own attribution stays at one.
            assert one.metrics.scan_snapshot()["scans"] == 1

    def test_global_counters_record_attributed_scans_too(self):
        with build_service() as service:
            before = GLOBAL_SCAN_COUNTERS.snapshot()["scans"]
            service.query(SQL, budget=ServiceBudget.exact())
            assert GLOBAL_SCAN_COUNTERS.snapshot()["scans"] == before + 1

    def test_as_dict_has_both_views(self):
        with build_service() as service:
            service.query(SQL, budget=ServiceBudget.exact())
            state = service.metrics.as_dict()
            assert state["scan"]["scans"] == 1
            assert state["scan_process"]["scans"] >= 1
            assert set(state["scan"]) >= {
                "scans",
                "partitions_total",
                "partitions_scanned",
                "partitions_pruned",
                "rows_total",
                "rows_scanned",
            }
