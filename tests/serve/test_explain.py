"""EXPLAIN tests: full decision record, and strictly no perturbation.

The contract under test: ``VerdictService.explain`` mirrors exactly what
``query`` would do with the same budget *right now*, while leaving the
service untouched -- no scan, no metrics, no cache eviction or LRU
promotion, no breaker probe consumed.
"""

from __future__ import annotations

import pytest

from repro.config import SamplingConfig, VerdictConfig
from repro.db.catalog import Catalog
from repro.serve import ServiceBudget, VerdictService
from repro.serve.planner import Route
from repro.workloads.synthetic import make_sales_table

SAMPLING = SamplingConfig(sample_ratio=0.25, num_batches=4, seed=2)
CONFIG = VerdictConfig(learn_length_scales=False)

SQL = "SELECT AVG(revenue) FROM sales"


@pytest.fixture()
def service():
    table = make_sales_table(num_rows=3_000, num_weeks=52, seed=9)
    catalog = Catalog()
    catalog.add_table(table, fact=True)
    with VerdictService(
        catalog, sampling=SAMPLING, config=CONFIG, cache_capacity=4
    ) as svc:
        yield svc


class TestDecisionRecord:
    def test_candidate_table_shape(self, service):
        plan = service.explain(SQL, budget=ServiceBudget.interactive())
        assert plan["table"] == "sales"
        assert plan["supported"] is True
        routes = [candidate["route"] for candidate in plan["candidates"]]
        assert routes == ["cached", "learned", "online_agg", "exact"]
        by_route = {candidate["route"]: candidate for candidate in plan["candidates"]}
        # Cold service: no cache, no synopsis -> online_agg is cheapest able.
        assert by_route["cached"]["would_attempt"] is False
        assert by_route["learned"]["planned"] is False
        assert "no ready snippets" in by_route["learned"]["reason"]
        online = by_route["online_agg"]
        assert online["planned"] and online["would_attempt"]
        assert online["estimated_seconds"] > 0
        assert online["estimated_rows"] > 0
        assert 0 < online["estimated_error"] < 1
        exact = by_route["exact"]
        assert exact["estimated_error"] == 0.0
        assert exact["estimated_rows"] >= online["estimated_rows"]
        assert plan["chosen_route"] == "online_agg"
        inputs = plan["cost_model_inputs"]
        assert inputs["estimated_exact_rows"] == 3_000
        assert inputs["synopsis_snippets_for_table"] == 0

    def test_exact_budget_plans_only_exact(self, service):
        plan = service.explain(SQL, budget=ServiceBudget.exact())
        assert plan["budget"]["requires_exact"] is True
        assert plan["chosen_route"] == "exact"
        by_route = {candidate["route"]: candidate for candidate in plan["candidates"]}
        assert by_route["online_agg"]["planned"] is False
        assert by_route["online_agg"]["reason"] == "budget demands an exact answer"
        assert by_route["exact"]["estimated_error"] == 0.0

    def test_explain_agrees_with_execution(self, service):
        budget = ServiceBudget.interactive()
        plan = service.explain(SQL, budget=budget)
        answer = service.query(SQL, budget=budget)
        assert answer.route.value == plan["chosen_route"]

    def test_open_breaker_reports_skip(self, service):
        breaker = service._breakers[Route.ONLINE_AGG]
        for _ in range(breaker.window):  # fill the window with failures
            breaker.record_failure()
        plan = service.explain(SQL, budget=ServiceBudget.interactive())
        online = next(
            candidate
            for candidate in plan["candidates"]
            if candidate["route"] == "online_agg"
        )
        assert online["breaker"]["state"] == "open"
        assert online["would_attempt"] is False
        assert "circuit breaker open" in online["skip_reason"]
        assert plan["chosen_route"] == "exact"

    def test_cache_hit_reported(self, service):
        budget = ServiceBudget.interactive()
        service.query(SQL, budget=budget)
        plan = service.explain(SQL, budget=budget)
        assert plan["cache"]["would_hit"] is True
        assert plan["chosen_route"] == "cached"
        cached = plan["candidates"][0]
        assert cached["cached_error_bound"] is not None


class TestNoPerturbation:
    def test_explain_executes_nothing(self, service):
        before_scans = service.scan_counters.snapshot()["scans"]
        service.explain(SQL, budget=ServiceBudget.interactive())
        service.explain(SQL, budget=ServiceBudget.exact())
        assert service.metrics.requests() == 0
        assert service.scan_counters.snapshot()["scans"] == before_scans
        assert service.cache_size() == 0

    def test_explain_does_not_touch_lru_order(self, service):
        budget = ServiceBudget.interactive()
        queries = [
            f"SELECT AVG(revenue) FROM sales WHERE week <= {week}"
            for week in (10, 20, 30, 40)
        ]
        # record=False: recording would bump the synopsis version and make
        # every earlier cache entry stale, hiding the LRU behaviour.
        for sql in queries:  # fill the 4-entry cache, oldest first
            service.query(sql, budget=budget, record=False)
        # EXPLAIN the oldest entry: a lookup would promote it in the LRU.
        plan = service.explain(queries[0], budget=budget)
        assert plan["cache"]["would_hit"] is True
        # One more distinct query evicts the true LRU entry: still queries[0].
        service.query(SQL, budget=budget, record=False)
        assert service.explain(queries[0], budget=budget)["cache"]["would_hit"] is False
        assert service.explain(queries[1], budget=budget)["cache"]["would_hit"] is True

    def test_explain_never_calls_breaker_allow(self, service, monkeypatch):
        """allow() consumes half-open probe slots; EXPLAIN must never call it."""
        for breaker in service._breakers.values():
            monkeypatch.setattr(
                breaker,
                "allow",
                lambda: pytest.fail("explain consumed a breaker probe"),
            )
        service.explain(SQL, budget=ServiceBudget.interactive())
