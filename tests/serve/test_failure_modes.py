"""End-to-end failure hardening of :class:`VerdictService`.

Each test installs a fault plan (:mod:`repro.faults`) and asserts the
serving layer's contract under that failure: a broken route falls back
instead of surfacing a 500, a tripped breaker skips the broken route and
reports itself in :meth:`health`, an expired deadline yields either a
*degraded* partial estimate or a typed :class:`DeadlineExceeded`, a crashed
trainer restarts with backoff (and is declared dead only when restarts are
exhausted), and a failed periodic flush never fails the request that
triggered it.
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.config import SamplingConfig, VerdictConfig
from repro.db.catalog import Catalog
from repro.errors import DeadlineExceeded, FaultInjectedError
from repro.faults import FaultPlan, FaultRule
from repro.serve import ServiceBudget, SynopsisStore, VerdictService
from repro.serve.breaker import OPEN
from repro.serve.planner import Route
from repro.workloads.synthetic import make_sales_table

SAMPLING = SamplingConfig(sample_ratio=0.25, num_batches=4, seed=2)
CONFIG = VerdictConfig(learn_length_scales=False)

INGEST_SQL = [
    f"SELECT AVG(revenue) FROM sales WHERE week >= {low} AND week <= {low + 14}"
    for low in (1, 12, 25, 38)
]


def build_service(num_rows: int = 3_000, store=None, **kwargs) -> VerdictService:
    table = make_sales_table(num_rows=num_rows, num_weeks=52, seed=9)
    catalog = Catalog()
    catalog.add_table(table, fact=True)
    return VerdictService(
        catalog, store=store, sampling=SAMPLING, config=CONFIG, **kwargs
    )


def trained_service(**kwargs) -> VerdictService:
    service = build_service(**kwargs)
    for sql in INGEST_SQL:
        service.record_answer(sql)
    service.train()
    return service


@pytest.fixture(autouse=True)
def no_leftover_plan():
    faults.clear()
    yield
    faults.clear()


def install(*rules: FaultRule) -> FaultPlan:
    return faults.install(FaultPlan(list(rules)))


class TestRouteFallback:
    def test_learned_route_failure_falls_back_to_an_answer(self):
        with trained_service(record_queries=False) as service:
            install(FaultRule(point="service.route.learned", action="error"))
            answer = service.query(
                "SELECT AVG(revenue) FROM sales WHERE week >= 8 AND week <= 33",
                budget=ServiceBudget.interactive(0.5),
            )
            assert answer.route in (Route.ONLINE_AGG, Route.EXACT)
            assert answer.rows, "the fallback must still produce an answer"
            assert service.metrics.event_count("route.learned.error") == 1

    def test_every_approximate_route_failing_still_answers_exactly(self):
        with trained_service(record_queries=False) as service:
            install(
                FaultRule(point="service.route.learned", action="error"),
                FaultRule(point="service.route.online_agg", action="error"),
            )
            answer = service.query(
                "SELECT AVG(revenue) FROM sales WHERE week >= 8 AND week <= 33",
                budget=ServiceBudget.interactive(0.5),
            )
            assert answer.route is Route.EXACT
            assert answer.relative_error_bound == 0.0

    def test_persistent_failures_trip_the_breaker(self):
        with trained_service(
            record_queries=False, breaker_window=2, breaker_cooldown_s=60.0
        ) as service:
            install(FaultRule(point="service.route.learned", action="error"))
            for low in (2, 9, 16):  # distinct queries: no cache interference
                service.query(
                    f"SELECT AVG(revenue) FROM sales WHERE week >= {low} AND week <= {low + 20}",
                    budget=ServiceBudget.interactive(0.5),
                )
            breaker = service._breakers[Route.LEARNED]
            assert breaker.state == OPEN
            # The third request was shed by the breaker, not executed+failed.
            assert service.metrics.event_count("route.learned.error") == 2
            assert service.metrics.event_count("breaker.learned.skip") == 1
            assert service.metrics.event_count("breaker.learned.open") == 1

            health = service.health()
            assert health["status"] == "degraded"
            assert any("learned route breaker" in reason for reason in health["reasons"])


class TestDeadlines:
    def test_exact_query_with_expired_deadline_raises_typed_error(self):
        with build_service(record_queries=False) as service:
            budget = ServiceBudget(max_relative_error=0.0, deadline_s=1e-6)
            with pytest.raises(DeadlineExceeded):
                service.query(
                    "SELECT COUNT(*) FROM sales WHERE week >= 1 AND week <= 52",
                    budget=budget,
                )
            assert service.metrics.event_count("deadline.exceeded") == 1

    def test_deadline_mid_refinement_returns_a_degraded_partial(self):
        with build_service(record_queries=False) as service:
            # The 0.07 target is *between* the batch-1 bound (~0.108) and
            # what the full sample can provably achieve (~0.054), so
            # refinement must continue past batch 1 -- where the injected
            # stall burns the whole deadline.  The batch-1 estimate is the
            # only thing in hand when it expires: served, flagged degraded.
            install(
                FaultRule(point="aqp.batch", action="delay", after=2, delay_s=0.5)
            )
            answer = service.query(
                "SELECT AVG(revenue) FROM sales WHERE week >= 5 AND week <= 40",
                budget=ServiceBudget(max_relative_error=0.07, deadline_s=0.2),
            )
            assert answer.degraded
            assert answer.degraded_reason
            assert not answer.budget_met
            assert answer.rows, "a degraded answer is still an answer"
            assert answer.batches_processed >= 1

    def test_degraded_answers_are_never_cached(self):
        sql = "SELECT AVG(revenue) FROM sales WHERE week >= 5 AND week <= 40"
        with build_service(record_queries=False) as service:
            install(
                FaultRule(point="aqp.batch", action="delay", after=2, delay_s=0.5)
            )
            degraded = service.query(
                sql, budget=ServiceBudget(max_relative_error=0.07, deadline_s=0.2)
            )
            assert degraded.degraded
            faults.clear()
            again = service.query(sql, budget=ServiceBudget.interactive(0.5))
            assert not again.from_cache
            assert not again.degraded


class TestTrainerRestarts:
    def test_one_crash_is_retried_and_succeeds(self):
        with trained_service(trainer_restart_backoff_s=0.01) as service:
            install(FaultRule(point="service.train", action="error", times=1))
            service.train_async().result(timeout=60)
            assert service.trainer_restarts == 1
            assert service.metrics.event_count("trainer.restart") == 1
            assert service.health()["status"] == "ok"

    def test_exhausted_restarts_declare_the_trainer_dead(self):
        with trained_service(
            trainer_max_restarts=1, trainer_restart_backoff_s=0.01
        ) as service:
            install(FaultRule(point="service.train", action="error"))
            with pytest.raises(FaultInjectedError):
                service.train_async().result(timeout=60)
            assert service.metrics.event_count("trainer.dead") == 1
            health = service.health()
            assert health["status"] == "degraded"
            assert any("trainer dead" in reason for reason in health["reasons"])

            # A later successful round revives it.
            faults.clear()
            service.train_async().result(timeout=60)
            assert service.health()["status"] == "ok"


class TestFlushFailures:
    def test_failed_periodic_flush_does_not_fail_the_request(self, tmp_path):
        store = SynopsisStore(tmp_path / "store")
        with build_service(store=store, flush_every=1) as service:
            install(FaultRule(point="service.flush", action="error"))
            assert service.record_answer(INGEST_SQL[0]) is True
            assert service.metrics.event_count("flush.error") >= 1
            faults.clear()
            # The state stayed dirty; the next mutation persists it.
            assert service.record_answer(INGEST_SQL[1]) is True
            assert store.snapshots_written + store.deltas_written >= 1


class TestObservability:
    def test_observability_reports_breakers_trainer_and_store(self, tmp_path):
        store = SynopsisStore(tmp_path / "store")
        with build_service(store=store, flush_every=1) as service:
            service.record_answer(INGEST_SQL[0])
            report = service.observability()
            assert report["breakers"]["learned"]["state"] == "closed"
            assert report["breakers"]["online_agg"]["state"] == "closed"
            assert report["trainer"] == {"restarts": 0, "dead": False}
            assert report["store"]["snapshots_written"] >= 1
            assert "events" in report
