"""Unit tests for per-tenant resource governance and brownout.

Everything here runs against fake clocks: token-bucket refill, shed
pricing, and the brownout saturation detector's window arithmetic are all
deterministic functions of injected time, so no test sleeps.
"""

from __future__ import annotations

import pytest

from repro.serve.governor import (
    BrownoutController,
    CancelRegistry,
    ResourceGovernor,
    TokenBucket,
)
from repro.deadline import CancelToken
from repro.errors import QueryCancelled
from repro.serve.http.admission import ShedLoad
from repro.serve.planner import ServiceBudget


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# --------------------------------------------------------------------------- #
# TokenBucket
# --------------------------------------------------------------------------- #


class TestTokenBucket:
    def test_starts_full_and_spends_exactly(self):
        clock = FakeClock()
        bucket = TokenBucket(capacity=10.0, refill_per_s=5.0, clock=clock)
        ok, remaining, wait = bucket.try_acquire(3.0)
        assert ok and wait == 0.0
        assert remaining == pytest.approx(7.0)
        assert bucket.spent == pytest.approx(3.0)
        assert bucket.granted == 1 and bucket.denied == 0

    def test_denied_reports_refill_wait(self):
        clock = FakeClock()
        bucket = TokenBucket(capacity=4.0, refill_per_s=2.0, clock=clock)
        assert bucket.try_acquire(4.0)[0]
        ok, remaining, wait = bucket.try_acquire(1.0)
        assert not ok
        assert remaining == pytest.approx(0.0)
        assert wait == pytest.approx(0.5)  # 1 token at 2/s
        assert bucket.denied == 1

    def test_refills_continuously_and_caps_at_capacity(self):
        clock = FakeClock()
        bucket = TokenBucket(capacity=4.0, refill_per_s=2.0, clock=clock)
        bucket.try_acquire(4.0)
        clock.advance(1.0)
        assert bucket.remaining == pytest.approx(2.0)
        clock.advance(100.0)
        assert bucket.remaining == pytest.approx(4.0)

    def test_oversized_cost_is_clamped_to_capacity(self):
        # A request priced above the whole bucket must still be servable:
        # it drains the full bucket rather than waiting forever.
        clock = FakeClock()
        bucket = TokenBucket(capacity=4.0, refill_per_s=2.0, clock=clock)
        ok, remaining, wait = bucket.try_acquire(100.0)
        assert ok and wait == 0.0
        assert remaining == pytest.approx(0.0)
        assert bucket.spent == pytest.approx(4.0)
        # And when empty, the wait is the full-capacity refill, not 50s.
        ok, _, wait = bucket.try_acquire(100.0)
        assert not ok
        assert wait == pytest.approx(2.0)

    def test_conservation_spent_equals_sum_of_granted_charges(self):
        clock = FakeClock()
        bucket = TokenBucket(capacity=8.0, refill_per_s=4.0, clock=clock)
        charged = 0.0
        for step, cost in enumerate([1.0, 3.5, 9.0, 2.0, 0.5, 7.0]):
            ok, remaining, _ = bucket.try_acquire(cost)
            if ok:
                charged += min(cost, bucket.capacity)
            assert 0.0 <= remaining <= bucket.capacity
            clock.advance(0.25 * step)
        assert bucket.spent == pytest.approx(charged)

    def test_credit_returns_tokens_capped(self):
        clock = FakeClock()
        bucket = TokenBucket(capacity=4.0, refill_per_s=2.0, clock=clock)
        bucket.try_acquire(3.0)
        bucket.credit(100.0)
        assert bucket.remaining == pytest.approx(4.0)
        assert bucket.spent == pytest.approx(0.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(capacity=0.0, refill_per_s=1.0)
        with pytest.raises(ValueError):
            TokenBucket(capacity=1.0, refill_per_s=0.0)
        bucket = TokenBucket(capacity=1.0, refill_per_s=1.0)
        with pytest.raises(ValueError):
            bucket.try_acquire(-1.0)


# --------------------------------------------------------------------------- #
# ResourceGovernor
# --------------------------------------------------------------------------- #


class TestResourceGovernor:
    def test_unconfigured_governor_admits_everything(self):
        governor = ResourceGovernor()
        assert not governor.enabled
        for _ in range(50):
            with governor.admit("acme", cost=100.0):
                pass
        snapshot = governor.snapshot()
        assert snapshot["tenants"]["acme"]["admitted"] == 50
        assert snapshot["tenants"]["acme"]["shed_tokens"] == 0

    def test_quota_shed_carries_state_and_refill_retry_after(self):
        clock = FakeClock()
        governor = ResourceGovernor(tenant_qps=1.0, burst_s=2.0, clock=clock)
        with governor.admit("acme", cost=2.0):
            pass  # drains the 2-token bucket
        with pytest.raises(ShedLoad) as excinfo:
            with governor.admit("acme", cost=1.0):
                pytest.fail("over-quota admit must not run")
        shed = excinfo.value
        # Retry-After comes from the bucket refill (1 token at 1/s), not
        # any global queue horizon.
        assert shed.retry_after_s == pytest.approx(1.0)
        assert shed.quota["remaining_tokens"] == pytest.approx(0.0)
        assert shed.quota["capacity_tokens"] == pytest.approx(2.0)
        assert shed.quota["refill_s"] == pytest.approx(1.0)
        assert governor.snapshot()["tenants"]["acme"]["shed_tokens"] == 1

    def test_quota_recovers_after_refill(self):
        clock = FakeClock()
        governor = ResourceGovernor(tenant_qps=1.0, burst_s=2.0, clock=clock)
        with governor.admit("acme", cost=2.0):
            pass
        with pytest.raises(ShedLoad):
            governor.admit("acme", cost=1.0).__enter__()
        clock.advance(1.5)
        with governor.admit("acme", cost=1.0):
            pass

    def test_tenants_are_isolated(self):
        clock = FakeClock()
        governor = ResourceGovernor(tenant_qps=1.0, burst_s=1.0, clock=clock)
        with governor.admit("hog", cost=1.0):
            pass
        with pytest.raises(ShedLoad):
            governor.admit("hog", cost=1.0).__enter__()
        # The other tenant's bucket is untouched.
        with governor.admit("meek", cost=1.0):
            pass

    def test_concurrency_cap_sheds_and_releases(self):
        governor = ResourceGovernor(tenant_concurrency=1)
        gate = governor.admit("acme", cost=1.0)
        gate.__enter__()
        try:
            with pytest.raises(ShedLoad) as excinfo:
                governor.admit("acme", cost=1.0).__enter__()
            assert "concurrency cap" in str(excinfo.value)
            assert excinfo.value.quota["active"] == 1
        finally:
            gate.__exit__(None, None, None)
        with governor.admit("acme", cost=1.0):
            pass  # slot freed
        snapshot = governor.snapshot()["tenants"]["acme"]
        assert snapshot["shed_concurrency"] == 1
        assert snapshot["active"] == 0

    def test_slot_is_released_when_the_body_raises(self):
        governor = ResourceGovernor(tenant_concurrency=1)
        with pytest.raises(RuntimeError):
            with governor.admit("acme", cost=1.0):
                raise RuntimeError("boom")
        assert governor.snapshot()["tenants"]["acme"]["active"] == 0

    def test_pricing_scales_with_estimated_seconds(self):
        governor = ResourceGovernor(cost_unit_s=0.1)
        assert governor.price(0.0) == pytest.approx(1.0)
        assert governor.price(1.0) == pytest.approx(11.0)
        assert governor.price(-5.0) == pytest.approx(1.0)

    def test_price_query_uses_exact_estimate_only_when_required(self):
        class Planner:
            def estimated_exact_seconds(self, parsed):
                return 2.0

            def estimated_first_batch_seconds(self, parsed):
                return 0.05

        governor = ResourceGovernor(cost_unit_s=0.1)
        exact = governor.price_query(Planner(), None, ServiceBudget.exact())
        cheap = governor.price_query(
            Planner(), None, ServiceBudget(max_relative_error=0.05)
        )
        assert exact == pytest.approx(21.0)
        assert cheap == pytest.approx(1.5)
        assert exact > 10 * cheap  # the starvation protection

    def test_unpriceable_query_costs_the_base_token(self):
        class BrokenPlanner:
            def estimated_exact_seconds(self, parsed):
                raise KeyError("unknown table")

            def estimated_first_batch_seconds(self, parsed):
                raise KeyError("unknown table")

        governor = ResourceGovernor(cost_unit_s=0.1)
        assert governor.price_query(
            BrokenPlanner(), None, ServiceBudget.exact()
        ) == pytest.approx(1.0)

    def test_metric_families_cover_every_outcome(self):
        clock = FakeClock()
        governor = ResourceGovernor(tenant_qps=1.0, burst_s=1.0, clock=clock)
        with governor.admit("acme", cost=1.0):
            pass
        with pytest.raises(ShedLoad):
            governor.admit("acme", cost=1.0).__enter__()
        governor.record_cancel("acme", "requested")
        families = {family.name: family for family in governor.metric_families()}
        assert set(families) == {
            "verdict_governor_outcomes_total",
            "verdict_governor_tokens_spent_total",
            "verdict_governor_tokens_remaining",
            "verdict_governor_active",
            "verdict_governor_cancels_total",
            "verdict_cancel_requests_total",
        }
        outcomes = {
            (labels["tenant"], labels["outcome"]): value
            for labels, value in families["verdict_governor_outcomes_total"].samples
        }
        assert outcomes[("acme", "admitted")] == 1
        assert outcomes[("acme", "shed_tokens")] == 1
        cancels = families["verdict_governor_cancels_total"].samples
        assert cancels == [({"tenant": "acme", "reason": "requested"}, 1)]

    def test_rejects_bad_parameters(self):
        for kwargs in (
            {"tenant_qps": 0.0},
            {"tenant_concurrency": 0},
            {"burst_s": 0.0},
            {"cost_unit_s": 0.0},
        ):
            with pytest.raises(ValueError):
                ResourceGovernor(**kwargs)


class TestCancelRegistry:
    def test_cancel_arms_a_tracked_token_exactly_once(self):
        registry = CancelRegistry()
        token = CancelToken()
        with registry.track("req-1", token, "acme"):
            found, tenant = registry.cancel("req-1")
            assert found and tenant == "acme"
            assert token.cancelled and token.reason == "requested"
            # Repeats are idempotent: found again, not delivered again.
            assert registry.cancel("req-1") == (True, "acme")
        assert registry.requested == 2
        assert registry.delivered == 1
        with pytest.raises(QueryCancelled):
            token.check("test")

    def test_unknown_and_finished_requests_are_not_found(self):
        registry = CancelRegistry()
        assert registry.cancel("never-seen") == (False, "")
        token = CancelToken()
        with registry.track("req-1", token, "acme"):
            pass
        assert registry.cancel("req-1") == (False, "")
        assert registry.unknown == 2
        assert registry.in_flight() == 0

    def test_track_unregisters_even_on_error(self):
        registry = CancelRegistry()
        with pytest.raises(RuntimeError):
            with registry.track("req-1", CancelToken(), "acme"):
                raise RuntimeError("boom")
        assert registry.in_flight() == 0


# --------------------------------------------------------------------------- #
# BrownoutController
# --------------------------------------------------------------------------- #


def make_brownout(clock, **kwargs) -> BrownoutController:
    kwargs.setdefault("threshold_s", 0.5)
    kwargs.setdefault("window_s", 1.0)
    kwargs.setdefault("saturated_windows", 2)
    kwargs.setdefault("healthy_windows", 2)
    return BrownoutController(clock=clock, **kwargs)


def saturate_windows(brownout, clock, count: int, wait_s: float = 2.0) -> None:
    """Feed ``count`` consecutive saturated windows."""
    for _ in range(count):
        brownout.observe(wait_s)
        clock.advance(brownout.window_s)
        brownout.tick()


def idle_windows(brownout, clock, count: int) -> None:
    for _ in range(count):
        clock.advance(brownout.window_s)
        brownout.tick()


class TestBrownoutController:
    def test_escalates_after_consecutive_saturated_windows(self):
        clock = FakeClock()
        brownout = make_brownout(clock)
        saturate_windows(brownout, clock, 1)
        assert brownout.level == 0  # one window is not a trend
        saturate_windows(brownout, clock, 1)
        assert brownout.level == 1
        assert brownout.escalations == 1
        saturate_windows(brownout, clock, 2)
        assert brownout.level == 2

    def test_a_healthy_window_resets_the_saturated_streak(self):
        clock = FakeClock()
        brownout = make_brownout(clock)
        saturate_windows(brownout, clock, 1)
        idle_windows(brownout, clock, 1)  # empty window = healthy
        saturate_windows(brownout, clock, 1)
        assert brownout.level == 0  # never two in a row

    def test_deescalates_after_consecutive_healthy_windows(self):
        clock = FakeClock()
        brownout = make_brownout(clock)
        saturate_windows(brownout, clock, 4)
        assert brownout.level == 2
        idle_windows(brownout, clock, 2)
        assert brownout.level == 1
        idle_windows(brownout, clock, 2)
        assert brownout.level == 0
        assert brownout.deescalations == 2

    def test_level_is_capped_at_max_level(self):
        clock = FakeClock()
        brownout = make_brownout(clock, max_level=2)
        saturate_windows(brownout, clock, 20)
        assert brownout.level == 2

    def test_p99_is_nearest_rank_not_mean(self):
        clock = FakeClock()
        brownout = make_brownout(clock)
        # 99 fast observations and one slow one: p99 picks the 99th of 100
        # sorted samples (0.0), so a single outlier does not saturate.
        for _ in range(99):
            brownout.observe(0.0)
        brownout.observe(10.0)
        clock.advance(1.0)
        brownout.tick()
        assert brownout.last_p99 == pytest.approx(0.0)
        assert brownout.windows_saturated == 0

    def test_long_idle_gap_recovers_in_one_tick(self):
        clock = FakeClock()
        brownout = make_brownout(clock)
        saturate_windows(brownout, clock, 4)
        assert brownout.level == 2
        clock.advance(3600.0)  # an idle hour
        brownout.tick()
        assert brownout.level == 0
        # The bulk fast-forward accounted the gap as healthy windows.
        assert brownout.windows_healthy > 100

    def test_effective_budget_widens_relative_error(self):
        clock = FakeClock()
        brownout = make_brownout(clock, widen_factor=2.0)
        budget = ServiceBudget(max_relative_error=0.02, max_latency_s=3.0)
        assert brownout.effective_budget(budget) is budget  # level 0
        saturate_windows(brownout, clock, 2)
        widened = brownout.effective_budget(budget)
        assert widened.max_relative_error == pytest.approx(0.04)
        assert widened.max_latency_s == 3.0  # only the error budget moves

    def test_exact_requirement_survives_shallow_brownout(self):
        clock = FakeClock()
        brownout = make_brownout(clock, exact_relax_level=2)
        saturate_windows(brownout, clock, 2)
        assert brownout.level == 1
        exact = ServiceBudget.exact()
        assert brownout.effective_budget(exact) is exact

    def test_exact_requirement_relaxed_at_deep_brownout(self):
        clock = FakeClock()
        brownout = make_brownout(clock, exact_relax_level=2, exact_floor=0.02)
        saturate_windows(brownout, clock, 4)
        assert brownout.level == 2
        relaxed = brownout.effective_budget(ServiceBudget.exact())
        assert relaxed.max_relative_error == pytest.approx(0.02)
        saturate_windows(brownout, clock, 2)
        assert brownout.level == 3
        deeper = brownout.effective_budget(ServiceBudget.exact())
        assert deeper.max_relative_error == pytest.approx(0.04)

    def test_best_effort_budget_passes_through(self):
        clock = FakeClock()
        brownout = make_brownout(clock)
        saturate_windows(brownout, clock, 4)
        budget = ServiceBudget(max_latency_s=1.0)
        assert brownout.effective_budget(budget) is budget

    def test_metric_families_and_snapshot(self):
        clock = FakeClock()
        brownout = make_brownout(clock)
        saturate_windows(brownout, clock, 2)
        names = [family.name for family in brownout.metric_families()]
        assert names == [
            "verdict_brownout_level",
            "verdict_brownout_transitions_total",
            "verdict_brownout_windows_total",
            "verdict_brownout_queue_wait_p99_seconds",
        ]
        snapshot = brownout.snapshot()
        assert snapshot["level"] == 1
        assert snapshot["escalations"] == 1
        assert snapshot["windows_saturated"] == 2

    def test_rejects_bad_parameters(self):
        for kwargs in (
            {"threshold_s": 0.0},
            {"window_s": 0.0},
            {"saturated_windows": 0},
            {"healthy_windows": 0},
            {"max_level": 0},
            {"widen_factor": 1.0},
            {"exact_relax_level": 9},
            {"exact_floor": 0.0},
        ):
            with pytest.raises(ValueError):
                make_brownout(FakeClock(), **kwargs)
