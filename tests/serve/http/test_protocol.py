"""Unit tests for the wire protocol: strict validation, mapping, fingerprints."""

from __future__ import annotations

import json

import pytest

from repro.errors import (
    CatalogError,
    ServiceError,
    SQLSyntaxError,
    TableError,
    UnsupportedQueryError,
)
from repro.serve.http import protocol
from repro.serve.http.admission import ShedLoad, ShuttingDown
from repro.serve.http.protocol import ApiError


def error_of(callable_, payload) -> ApiError:
    with pytest.raises(ApiError) as excinfo:
        callable_(payload)
    return excinfo.value


class TestAskValidation:
    def test_valid_minimal(self):
        request = protocol.parse_ask({"tenant": "acme", "sql": "SELECT COUNT(*) FROM t"})
        assert request.tenant == "acme"
        assert request.budget is None
        assert request.record is None

    def test_budget_fields_build_a_budget(self):
        request = protocol.parse_ask(
            {"tenant": "acme", "sql": "SELECT 1", "max_relative_error": 0.05}
        )
        assert request.budget.max_relative_error == 0.05
        assert request.budget.max_latency_s is None

    def test_non_object_body(self):
        assert error_of(protocol.parse_ask, [1, 2]).code == "bad_request"
        assert error_of(protocol.parse_ask, "x").status == 400

    def test_unknown_field_rejected(self):
        error = error_of(
            protocol.parse_ask, {"tenant": "a", "sql": "SELECT 1", "sq1": "typo"}
        )
        assert error.code == "bad_request"
        assert "sq1" in error.message

    def test_missing_required_field(self):
        assert "sql" in error_of(protocol.parse_ask, {"tenant": "a"}).message

    def test_wrong_type_rejected(self):
        error = error_of(protocol.parse_ask, {"tenant": "a", "sql": 7})
        assert error.status == 400 and "sql" in error.message

    def test_bool_is_not_a_number(self):
        # JSON true is a Python bool, which is an int subclass; the budget
        # fields must still reject it.
        error = error_of(
            protocol.parse_ask,
            {"tenant": "a", "sql": "SELECT 1", "max_relative_error": True},
        )
        assert error.status == 400

    def test_empty_sql_rejected(self):
        assert error_of(protocol.parse_ask, {"tenant": "a", "sql": "   "}).status == 400

    def test_negative_error_budget_rejected(self):
        error = error_of(
            protocol.parse_ask,
            {"tenant": "a", "sql": "SELECT 1", "max_relative_error": -0.5},
        )
        assert error.status == 400

    @pytest.mark.parametrize(
        "name", ["", ".hidden", "a/b", "a b", "-lead", "x" * 65, "tenant\n"]
    )
    def test_bad_tenant_names(self, name):
        error = error_of(protocol.parse_ask, {"tenant": name, "sql": "SELECT 1"})
        assert error.status == 400

    @pytest.mark.parametrize("name", ["a", "acme", "Tenant_1.prod-eu", "0x9"])
    def test_good_tenant_names(self, name):
        assert protocol.parse_ask({"tenant": name, "sql": "SELECT 1"}).tenant == name


class TestAppendValidation:
    def test_valid(self):
        request = protocol.parse_append(
            {"tenant": "a", "table": "sales", "rows": {"week": [1, 2]}}
        )
        assert request.adjust is True
        assert request.rows == {"week": [1, 2]}

    def test_adjust_false(self):
        request = protocol.parse_append(
            {"tenant": "a", "table": "sales", "rows": {"week": [1]}, "adjust": False}
        )
        assert request.adjust is False

    def test_empty_rows_rejected(self):
        error = error_of(
            protocol.parse_append, {"tenant": "a", "table": "t", "rows": {}}
        )
        assert error.code == "bad_rows"

    def test_non_list_values_rejected(self):
        error = error_of(
            protocol.parse_append, {"tenant": "a", "table": "t", "rows": {"week": 3}}
        )
        assert error.code == "bad_rows"


class TestOtherRequests:
    def test_record(self):
        assert protocol.parse_record({"tenant": "a", "sql": "SELECT 1"}).sql == "SELECT 1"

    def test_train_defaults(self):
        request = protocol.parse_train({"tenant": "a"})
        assert request.wait is True and request.learn is None

    def test_train_background(self):
        assert protocol.parse_train({"tenant": "a", "wait": False}).wait is False

    def test_tenant_only(self):
        assert protocol.parse_tenant_only({"tenant": "a"}).tenant == "a"
        assert error_of(protocol.parse_tenant_only, {}).status == 400


class TestExceptionMapping:
    @pytest.mark.parametrize(
        "error, status, code",
        [
            (ShedLoad("full"), 429, "shed_load"),
            (ShuttingDown("bye"), 503, "shutting_down"),
            (SQLSyntaxError("parse"), 400, "invalid_sql"),
            (UnsupportedQueryError("nope"), 400, "unsupported_query"),
            (CatalogError("unknown table 'x'"), 404, "unknown_table"),
            (TableError("missing column"), 400, "bad_rows"),
            (ServiceError("service is closed"), 503, "shutting_down"),
            (RuntimeError("boom"), 500, "internal"),
        ],
    )
    def test_mapping(self, error, status, code):
        mapped = protocol.map_exception(error)
        assert (mapped.status, mapped.code) == (status, code)

    def test_api_error_passthrough(self):
        original = protocol.unknown_tenant("ghost")
        assert protocol.map_exception(original) is original

    def test_body_shape(self):
        body = protocol.unknown_tenant("ghost").body()
        assert body["error"]["code"] == "unknown_tenant"
        assert "ghost" in body["error"]["message"]


class TestFingerprint:
    STATE = {
        "sql": "SELECT COUNT(*) FROM sales",
        "route": "exact",
        "rows": [{"group": [], "values": {"count": 10.0}, "errors": {"count": 0.0}}],
        "relative_error_bound": 0.0,
        "model_seconds": 0.25,
        "wall_seconds": 0.0123,
        "supported": True,
        "budget_met": True,
        "from_cache": False,
        "recorded": False,
        "batches_processed": 0,
    }

    def test_nondeterministic_fields_excluded(self):
        warm = dict(
            self.STATE,
            wall_seconds=9.9,
            model_seconds=0.0,
            from_cache=True,
            route="cached",
            recorded=True,
        )
        assert protocol.answer_fingerprint(self.STATE) == protocol.answer_fingerprint(warm)

    def test_deterministic_fields_included(self):
        changed = dict(self.STATE, relative_error_bound=0.01)
        assert protocol.answer_fingerprint(self.STATE) != protocol.answer_fingerprint(
            changed
        )

    def test_canonical_bytes(self):
        fingerprint = protocol.answer_fingerprint(self.STATE)
        # Canonical form: sorted keys, compact separators, valid JSON.
        decoded = json.loads(fingerprint)
        assert list(decoded) == sorted(decoded)
        assert b": " not in fingerprint and b", " not in fingerprint
