"""Failover behaviour of :class:`VerdictClient`, against scripted stubs.

Two-endpoint scenarios the replicated pair creates: connect-refused
rotation (safe for *any* request -- nothing was sent), following the
``leader`` hint in a follower's typed 503 rejection, the hop cap that stops
two confused nodes bouncing a request forever, the per-call
``retry_budget_s`` wall clock (:class:`RetriesExhausted`), and the
fail-fast handling of a sync-ack ``replication_timeout``.
"""

from __future__ import annotations

import json
import socket
import threading
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.serve.client import (
    RetriesExhausted,
    ServerClosingError,
    VerdictClient,
    parse_endpoint,
)

OK_BODY = json.dumps(
    {"status": "ok", "recorded": True, "tenants": [], "answer": {}}
).encode()


def follower_rejection(leader: str | None) -> bytes:
    error = {"code": "read_only_follower", "message": "read-only follower"}
    if leader:
        error["leader"] = leader
    return json.dumps({"error": error}).encode()


REPLICATION_TIMEOUT_BODY = json.dumps(
    {"error": {"code": "replication_timeout", "message": "unconfirmed"}}
).encode()


class _ScriptedHandler(BaseHTTPRequestHandler):
    """Replays ``server.script`` steps: ``(status, headers, body)``."""

    def _serve(self) -> None:
        script = self.server.script  # type: ignore[attr-defined]
        self.server.requests.append((self.command, self.path))  # type: ignore[attr-defined]
        status, headers, body = (
            script.popleft() if script else (200, {}, OK_BODY)
        )
        length = int(self.headers.get("Content-Length", 0))
        if length:
            self.rfile.read(length)
        self.send_response(status)
        for name, value in headers.items():
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    do_GET = _serve
    do_POST = _serve

    def log_message(self, *args) -> None:
        pass


@pytest.fixture
def make_stub():
    servers = []
    threads = []

    def build():
        server = ThreadingHTTPServer(("127.0.0.1", 0), _ScriptedHandler)
        server.script = deque()
        server.requests = []
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        servers.append(server)
        threads.append(thread)
        return server

    yield build
    for server in servers:
        server.shutdown()
        server.server_close()
    for thread in threads:
        thread.join(timeout=10)


def endpoint(stub) -> str:
    return f"127.0.0.1:{stub.server_address[1]}"


def dead_endpoint() -> str:
    """An endpoint that refuses connections (bound once, then released)."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return f"127.0.0.1:{port}"


def make_client(endpoints, **kwargs) -> VerdictClient:
    kwargs.setdefault("tenant", "acme")
    kwargs.setdefault("backoff_base_s", 0.001)
    kwargs.setdefault("backoff_cap_s", 0.002)
    return VerdictClient(endpoints=endpoints, **kwargs)


class TestParseEndpoint:
    def test_accepted_forms(self):
        assert parse_endpoint("host:9000") == ("host", 9000)
        assert parse_endpoint("host") == ("host", 8123)
        assert parse_endpoint("http://host:9000/v1") == ("host", 9000)

    def test_rejected_forms(self):
        from repro.serve.client import ClientError

        for bad in ("", ":9000", "host:notaport"):
            with pytest.raises(ClientError):
                parse_endpoint(bad)


class TestConnectRefusedRotation:
    def test_mutation_rotates_to_the_live_endpoint(self, make_stub):
        """A refused connect was provably never sent: ANY request retries."""
        live = make_stub()
        with make_client([dead_endpoint(), endpoint(live)]) as client:
            assert client.record("SELECT COUNT(*) FROM sales") is True
        assert client.failovers_performed == 1
        assert len(live.requests) == 1
        assert (client.host, client.port) == parse_endpoint(endpoint(live))

    def test_single_dead_endpoint_still_fails(self):
        from repro.serve.client import TransportError

        with make_client([dead_endpoint()]) as client:
            with pytest.raises(TransportError):
                client.health()
        assert client.failovers_performed == 0


class TestLeaderHints:
    def test_follower_rejection_hint_is_followed_for_mutations(self, make_stub):
        follower, leader = make_stub(), make_stub()
        follower.script.append(
            (503, {}, follower_rejection(endpoint(leader)))
        )
        with make_client([endpoint(follower)]) as client:
            assert client.record("SELECT COUNT(*) FROM sales") is True
        assert len(follower.requests) == 1
        assert len(leader.requests) == 1
        assert client.failovers_performed == 1
        # The adopted leader sticks for subsequent calls.
        client_port = client.port
        assert client_port == leader.server_address[1]

    def test_hintless_rejection_rotates_to_the_next_endpoint(self, make_stub):
        follower, leader = make_stub(), make_stub()
        follower.script.append((503, {}, follower_rejection(None)))
        with make_client([endpoint(follower), endpoint(leader)]) as client:
            assert client.record("SELECT COUNT(*) FROM sales") is True
        assert len(leader.requests) == 1

    def test_hint_following_can_be_disabled(self, make_stub):
        follower, leader = make_stub(), make_stub()
        follower.script.append(
            (503, {}, follower_rejection(endpoint(leader)))
        )
        with make_client(
            [endpoint(follower)], follow_leader_hints=False
        ) as client:
            with pytest.raises(ServerClosingError) as excinfo:
                client.record("SELECT COUNT(*) FROM sales")
        assert excinfo.value.code == "read_only_follower"
        assert len(leader.requests) == 0

    def test_ping_pong_between_confused_nodes_is_bounded(self, make_stub):
        """Two nodes each naming the other leader must not loop forever."""
        first, second = make_stub(), make_stub()
        for _ in range(8):
            first.script.append((503, {}, follower_rejection(endpoint(second))))
            second.script.append((503, {}, follower_rejection(endpoint(first))))
        with make_client([endpoint(first)]) as client:
            with pytest.raises(ServerClosingError) as excinfo:
                client.record("SELECT COUNT(*) FROM sales")
        assert excinfo.value.code == "read_only_follower"
        # Hops are capped at len(endpoints) + 2, so the total requests seen
        # across both nodes stay small.
        assert len(first.requests) + len(second.requests) <= 5


class TestRetryBudget:
    def test_budget_exhaustion_is_typed(self, make_stub):
        stub = make_stub()
        # The server asks for a longer wait than the whole budget allows:
        # the client must raise instead of sleeping into the deadline.
        stub.script.append((429, {"Retry-After": "0.5"}, OK_BODY))
        with make_client([endpoint(stub)], retry_budget_s=0.05) as client:
            with pytest.raises(RetriesExhausted):
                client.health()
        assert len(stub.requests) == 1

    def test_budget_permits_short_retries(self, make_stub):
        stub = make_stub()
        stub.script.extend([(429, {}, OK_BODY), (200, {}, OK_BODY)])
        with make_client([endpoint(stub)], retry_budget_s=5.0) as client:
            assert client.health()["status"] == "ok"
        assert client.retries_performed == 1


class TestReplicationTimeout:
    def test_sync_ack_timeout_fails_fast(self, make_stub):
        """A 503 replication_timeout means 'durable locally, unconfirmed
        remotely' -- blind retry could double-apply, so the client must
        surface it on the first response."""
        stub = make_stub()
        stub.script.append((503, {}, REPLICATION_TIMEOUT_BODY))
        with make_client([endpoint(stub)]) as client:
            with pytest.raises(ServerClosingError) as excinfo:
                client.record("SELECT COUNT(*) FROM sales")
        assert excinfo.value.code == "replication_timeout"
        assert len(stub.requests) == 1
        assert client.retries_performed == 0
