"""End-to-end endpoint tests: real sockets, real client, in-process server."""

from __future__ import annotations

import http.client
import json
import socket

import pytest

from repro.serve.client import (
    BadRequestError,
    ConflictError,
    NotFoundError,
    VerdictClient,
)
from http_harness import sales_rows, start_server

ROWS = {"acme": 2_000, "globex": 2_400}


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    server = start_server(tmp_path_factory.mktemp("http"), ROWS)
    yield server
    server.close()


@pytest.fixture()
def client(server):
    with VerdictClient(port=server.port, tenant="acme") as client:
        yield client


class TestAsk:
    def test_exact_count(self, client):
        answer = client.ask("SELECT COUNT(*) FROM sales", max_relative_error=0.0)
        assert answer["route"] == "exact"
        assert answer["rows"][0]["values"]["count_star"] == ROWS["acme"]
        assert answer["relative_error_bound"] == 0.0
        assert answer["budget_met"] is True

    def test_per_call_tenant_override(self, client):
        answer = client.ask(
            "SELECT COUNT(*) FROM sales", tenant="globex", max_relative_error=0.0
        )
        assert answer["rows"][0]["values"]["count_star"] == ROWS["globex"]

    def test_repeat_ask_hits_cache(self, client):
        sql = "SELECT AVG(revenue) FROM sales WHERE week >= 3 AND week <= 31"
        first = client.ask(sql)
        again = client.ask(sql)
        assert first["from_cache"] is False
        assert again["from_cache"] is True
        assert again["rows"] == first["rows"]

    def test_invalid_sql_is_400(self, client):
        with pytest.raises(BadRequestError) as excinfo:
            client.ask("SELEC COUNT(*) FROM sales")
        assert excinfo.value.code == "invalid_sql"

    def test_unknown_table_is_404(self, client):
        with pytest.raises(NotFoundError) as excinfo:
            client.ask("SELECT COUNT(*) FROM missing")
        assert excinfo.value.code == "unknown_table"

    def test_unknown_tenant_is_404(self, client):
        with pytest.raises(NotFoundError) as excinfo:
            client.ask("SELECT COUNT(*) FROM sales", tenant="ghost")
        assert excinfo.value.code == "unknown_tenant"


class TestFeedback:
    def test_append_changes_count(self, server, tmp_path):
        with VerdictClient(port=server.port, tenant="globex") as client:
            before = client.ask("SELECT COUNT(*) FROM sales", max_relative_error=0.0)
            outcome = client.append("sales", sales_rows(32, seed=1))
            assert outcome["appended_rows"] == 32
            after = client.ask("SELECT COUNT(*) FROM sales", max_relative_error=0.0)
        count = after["rows"][0]["values"]["count_star"]
        assert count == before["rows"][0]["values"]["count_star"] + 32

    def test_append_schema_mismatch_is_400(self, client):
        with pytest.raises(BadRequestError) as excinfo:
            client.append("sales", {"week": [1, 2]})
        assert excinfo.value.code == "bad_rows"

    def test_append_unknown_table_is_404(self, client):
        with pytest.raises(NotFoundError) as excinfo:
            client.append("missing", sales_rows(2))
        assert excinfo.value.code == "unknown_table"

    def test_record_then_train_enables_learned_route(self, client):
        for low in (1, 12, 25, 38):
            sql = (
                "SELECT AVG(revenue) FROM sales "
                f"WHERE week >= {low} AND week <= {low + 14}"
            )
            assert client.record(sql) is True
        assert client.train()["trained"] is True
        answer = client.ask(
            "SELECT AVG(revenue) FROM sales WHERE week >= 8 AND week <= 27"
        )
        assert answer["route"] in ("learned", "cached")

    def test_record_invalid_sql_never_burns_a_scan(self, client):
        admitted_before = client.metrics(tenant="")["admission"]["admitted"]
        with pytest.raises(BadRequestError):
            client.record("SELECT FROM FROM")
        assert client.metrics(tenant="")["admission"]["admitted"] == admitted_before


class TestMetricsAndAdmin:
    def test_server_wide_metrics(self, client):
        metrics = client.metrics(tenant="")
        assert metrics["admission"]["max_active"] == 4
        assert metrics["tenants"]["registered"] == len(ROWS)
        assert metrics["audit_entries"] > 0

    def test_tenant_metrics(self, client):
        client.ask("SELECT COUNT(*) FROM sales", max_relative_error=0.0)
        metrics = client.metrics()
        assert metrics["tenant"] == "acme"
        assert metrics["lifecycle_phase"] == "serving"
        assert metrics["metrics"]["total_requests"] >= 1

    def test_create_and_list_tenants(self, client):
        created = client.create_tenant("newco")
        assert created["tenant"] == "newco"
        names = {record["tenant"] for record in client.list_tenants()}
        assert {"acme", "globex", "newco"} <= names

    def test_create_duplicate_is_409(self, client):
        with pytest.raises(ConflictError) as excinfo:
            client.create_tenant("acme")
        assert excinfo.value.code == "tenant_exists"

    def test_snapshot_persists(self, server, client):
        assert client.snapshot()["snapshot"] == "snapshot"
        store_dir = server.tenants.tenant_directory("acme") / "store"
        assert (store_dir / "snapshot.json").is_file()

    def test_health(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["uptime_s"] >= 0

    def test_unknown_route_is_404(self, client):
        with pytest.raises(NotFoundError) as excinfo:
            client._request("GET", "/v1/nope")
        assert excinfo.value.code == "unknown_route"


class TestWirePlumbing:
    """Raw-socket cases the well-behaved client never produces."""

    def raw(self, server, method, path, body=None, headers=None):
        connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        try:
            connection.request(method, path, body=body, headers=headers or {})
            response = connection.getresponse()
            return response.status, json.loads(response.read() or b"{}")
        finally:
            connection.close()

    def test_malformed_json_is_400(self, server):
        status, payload = self.raw(
            server, "POST", "/v1/ask", body=b"{not json", headers={"Content-Length": "9"}
        )
        assert status == 400
        assert payload["error"]["code"] == "bad_request"

    def test_missing_content_length_is_400(self, server):
        # http.client always sets Content-Length itself, so speak raw bytes.
        with socket.create_connection(("127.0.0.1", server.port), timeout=10) as sock:
            sock.sendall(b"POST /v1/ask HTTP/1.1\r\nHost: t\r\n\r\n")
            # Headers and body may arrive in separate segments; read until
            # the declared body length is in hand.
            data = b""
            while b"\r\n\r\n" not in data:
                data += sock.recv(65536)
            head, _, body = data.partition(b"\r\n\r\n")
            length = next(
                int(line.split(b":", 1)[1])
                for line in head.split(b"\r\n")
                if line.lower().startswith(b"content-length:")
            )
            while len(body) < length:
                body += sock.recv(65536)
        assert head.split(b" ", 2)[1] == b"400"
        assert b"missing Content-Length" in body

    def test_oversized_body_is_400(self, server):
        status, payload = self.raw(
            server,
            "POST",
            "/v1/ask",
            body=b"",
            headers={"Content-Length": str(64 * 1024 * 1024)},
        )
        assert status == 400

    def test_non_object_body_is_400(self, server):
        status, payload = self.raw(server, "POST", "/v1/ask", body=b"[1, 2]")
        assert status == 400
        assert "object" in payload["error"]["message"]


class TestAudit:
    def test_requests_are_journalled(self, server, client):
        client.ask("SELECT COUNT(*) FROM sales", max_relative_error=0.0)
        with pytest.raises(NotFoundError):
            client.ask("SELECT 1 FROM nowhere")
        entries = [
            json.loads(line)
            for line in server.audit.path.read_text().splitlines()
        ]
        assert entries, "audit log is empty"
        sequences = [entry["seq"] for entry in entries]
        assert sequences == sorted(set(sequences)), "audit seq must be unique+ordered"
        asks = [entry for entry in entries if entry["endpoint"] == "POST /v1/ask"]
        assert any(entry["status"] == 200 and entry["tenant"] == "acme" for entry in asks)
        assert any(entry.get("error") == "unknown_table" for entry in asks)
        assert all("latency_s" in entry for entry in entries)


class TestTenantIsolation:
    def test_answer_caches_do_not_leak_across_tenants(self, tmp_path):
        # Same SQL, both tenants: a shared/global cache would serve one
        # tenant's answer to the other. Distinct row counts make that
        # detectable. Fresh server: the module one has mutated tenants.
        sql = "SELECT COUNT(*) FROM sales"
        rows = {"east": 1_300, "west": 1_700}
        server = start_server(tmp_path, rows)
        try:
            with VerdictClient(port=server.port) as client:
                for _ in range(2):  # second pass is cache-hot per tenant
                    for tenant, expected in rows.items():
                        answer = client.ask(sql, tenant=tenant, max_relative_error=0.0)
                        assert answer["rows"][0]["values"]["count_star"] == expected
        finally:
            server.close()

    def test_lru_eviction_snapshots_and_reloads(self, tmp_path):
        rows = {"t0": 1_200, "t1": 1_500, "t2": 1_800}
        server = start_server(tmp_path, rows, max_loaded=1)
        try:
            with VerdictClient(port=server.port) as client:
                for tenant in rows:
                    client.record(
                        "SELECT AVG(revenue) FROM sales WHERE week >= 2 AND week <= 30",
                        tenant=tenant,
                    )
                stats = client.metrics(tenant="")["tenants"]
                assert stats["loaded"] <= 1
                assert stats["evictions"] >= 2
                # Eviction wrote each victim's snapshot; a reload restores it.
                for tenant in rows:
                    metrics = client.metrics(tenant=tenant)
                    assert metrics["restored"] >= 1, f"{tenant} lost state on eviction"
                    count = client.ask(
                        "SELECT COUNT(*) FROM sales",
                        tenant=tenant,
                        max_relative_error=0.0,
                    )["rows"][0]["values"]["count_star"]
                    assert count == rows[tenant]
        finally:
            server.close()


class TestServerShutdown:
    def test_close_is_idempotent_and_rejects_after(self, tmp_path):
        server = start_server(tmp_path, {"solo": 1_200}, audit=False)
        with VerdictClient(port=server.port, tenant="solo") as client:
            assert client.health()["status"] == "ok"
        server.close()
        server.close()  # second close is a no-op
        with pytest.raises(Exception):  # refused or reset: socket is gone
            with VerdictClient(port=server.port, tenant="solo") as client:
                client.health()
