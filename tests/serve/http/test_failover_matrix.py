"""Failover matrix: kill the leader at every shipping fault point, promote.

The acceptance test of the replication subsystem.  For each fault row a
real leader subprocess (sync-ack mode, fault armed via ``REPRO_FAULTS``)
and a real follower subprocess (``--follow``) are started; client traffic
drives feedback records through the leader until the armed point kills it
(:data:`~repro.faults.FAULT_EXIT_CODE`); the follower is promoted; and the
zero-acked-loss contract is checked:

* every record the client saw *acked* survives on the promoted follower
  (sync-ack means an ack implies the follower durably applied the write);
* the promoted follower's answers are byte-identical (by
  :func:`answer_fingerprint`) to a never-failed oracle server that replayed
  the seed plus exactly the surviving prefix of the drive -- some ``K``
  records with ``acked <= K <= attempted``.  The follower may additionally
  be empty (bootstrap never completed) only when nothing was acked.

The full matrix is long; by default a two-row smoke subset runs (one torn
ship, one leader WAL kill).  Set ``REPLICATION=full`` (the dedicated CI
job does) to run every row.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.faults import FAULT_EXIT_CODE
from repro.serve.client import ClientError, VerdictClient
from repro.serve.http.protocol import answer_fingerprint

REPO_ROOT = Path(__file__).resolve().parents[3]

TENANT = "acme"

INGEST_SQL = [
    f"SELECT AVG(revenue) FROM sales WHERE week >= {low} AND week <= {low + 14}"
    for low in (1, 12, 25, 38)
]

SEED_DELTA_SQL = [
    "SELECT AVG(revenue) FROM sales WHERE week >= 6 AND week <= 21",
    "SELECT AVG(revenue) FROM sales WHERE week >= 30 AND week <= 44",
]

#: The records driven against the fault-armed leader, in order.
DRIVE_SQL = [
    "SELECT AVG(revenue) FROM sales WHERE week >= 3 AND week <= 17",
    "SELECT AVG(revenue) FROM sales WHERE week >= 22 AND week <= 39",
    "SELECT COUNT(*) FROM sales WHERE week >= 11 AND week <= 47",
]

TRACE_SQL = [
    "SELECT COUNT(*) FROM sales",
    "SELECT AVG(revenue) FROM sales WHERE week >= 8 AND week <= 27",
    "SELECT AVG(revenue) FROM sales WHERE week >= 20 AND week <= 40",
    "SELECT SUM(revenue) FROM sales WHERE week >= 5 AND week <= 18",
]

#: (fault point, action) armed on the *leader* -- every shipping-path and
#: store point a leader can die at while a follower depends on it.
MATRIX = [
    ("repl.ship.deltas", "torn"),
    ("repl.ship.deltas", "kill"),
    ("repl.ship.snapshot", "torn"),
    ("repl.ship.snapshot", "kill"),
    ("store.delta.append", "kill"),
    ("store.delta.append", "torn"),
    ("store.delta.fsync", "kill"),
    ("store.snapshot.write", "torn"),
    ("store.snapshot.rename", "kill"),
    ("store.dir.fsync", "kill"),
    ("store.replay.record", "kill"),
]

#: One torn ship (follower must reject the mangled record) and one leader
#: WAL kill (the acked/attempted boundary).
SMOKE = {
    ("repl.ship.deltas", "torn"),
    ("store.delta.append", "kill"),
}

FULL_MATRIX = os.environ.get("REPLICATION", "").lower() == "full"


def matrix_params():
    for point, action in MATRIX:
        marks = []
        if not FULL_MATRIX and (point, action) not in SMOKE:
            marks.append(
                pytest.mark.skip(reason="smoke subset; set REPLICATION=full")
            )
        yield pytest.param(point, action, id=f"{point}:{action}", marks=marks)


class ServerProcess:
    """One front-door subprocess, optionally fault-armed and/or a follower."""

    def __init__(
        self,
        root: Path,
        fault_plan: dict | None = None,
        extra_args: list[str] | None = None,
    ):
        environment = dict(os.environ)
        environment["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + environment.get(
            "PYTHONPATH", ""
        )
        environment.pop("REPRO_FAULTS", None)
        if fault_plan is not None:
            environment["REPRO_FAULTS"] = json.dumps(fault_plan)
        self.process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.serve.http",
                "--port",
                "0",
                "--root",
                str(root),
                "--workload",
                "sales",
                "--rows",
                "2000",
                "--batches",
                "3",
                "--seed",
                "7",
                "--flush-every",
                "1",
            ]
            + (extra_args or []),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=environment,
        )
        ready_line = self.process.stdout.readline()
        if not ready_line:
            raise AssertionError(
                f"server died before readiness: {self.process.stderr.read()}"
            )
        self.port = json.loads(ready_line)["listening"]["port"]

    def kill(self) -> None:
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGKILL)
        self.process.wait(timeout=30)

    def terminate(self) -> None:
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=30)


def capture_fingerprints(port: int) -> list[bytes]:
    with VerdictClient(port=port, tenant=TENANT, timeout_s=120.0) as client:
        return [
            answer_fingerprint(client.ask(sql, record=False)) for sql in TRACE_SQL
        ]


@pytest.fixture(scope="module")
def seeded_root(tmp_path_factory) -> Path:
    """A leader state root with learned state, a snapshot, and live deltas."""
    root = tmp_path_factory.mktemp("failover-seed")
    server = ServerProcess(root)
    try:
        with VerdictClient(port=server.port, tenant=TENANT, timeout_s=120.0) as client:
            client.create_tenant()
            for sql in INGEST_SQL:
                assert client.record(sql) is True
            assert client.train()["trained"] is True
            assert client.snapshot()["snapshot"] == "snapshot"
            for sql in SEED_DELTA_SQL:
                assert client.record(sql) is True
    finally:
        server.kill()
    return root


@pytest.fixture(scope="module")
def oracle(seeded_root, tmp_path_factory) -> dict:
    """Never-failed reference fingerprints for every reachable end state.

    Key ``j`` (int): the seed plus the first ``j`` drive records.  Key
    ``"empty"``: a fresh tenant with no learned state at all (a follower
    whose bootstrap never completed).
    """
    fingerprints: dict = {}
    root = tmp_path_factory.mktemp("failover-oracle")
    shutil.rmtree(root)
    shutil.copytree(seeded_root, root)
    server = ServerProcess(root)
    try:
        fingerprints[0] = capture_fingerprints(server.port)
        with VerdictClient(port=server.port, tenant=TENANT, timeout_s=120.0) as client:
            for j, sql in enumerate(DRIVE_SQL, start=1):
                assert client.record(sql) is True
                fingerprints[j] = capture_fingerprints(server.port)
    finally:
        server.terminate()
    empty_root = tmp_path_factory.mktemp("failover-empty")
    server = ServerProcess(empty_root)
    try:
        with VerdictClient(port=server.port, tenant=TENANT, timeout_s=120.0) as client:
            client.create_tenant()
        fingerprints["empty"] = capture_fingerprints(server.port)
    finally:
        server.terminate()
    return fingerprints


def drive_until_death(leader: ServerProcess) -> tuple[int, int]:
    """Feed records (then a snapshot) into the armed leader until it dies.

    Returns ``(attempted, acked)`` record counts.  In sync-ack mode an ack
    only returns after a follower pull confirmed the durable remote apply,
    so ``acked`` is exactly the zero-loss obligation.
    """
    attempted = acked = 0
    try:
        with VerdictClient(
            port=leader.port, tenant=TENANT, timeout_s=120.0, max_retries=0
        ) as client:
            for sql in DRIVE_SQL:
                attempted += 1
                if client.record(sql):
                    acked += 1
            client.snapshot()
    except ClientError:
        pass
    return attempted, acked


@pytest.mark.parametrize("point, action", matrix_params())
def test_leader_death_loses_no_acked_record(
    seeded_root, oracle, tmp_path, point, action
):
    leader_root = tmp_path / "leader"
    shutil.copytree(seeded_root, leader_root)
    follower_root = tmp_path / "follower"

    plan = {"rules": [{"point": point, "action": action}]}
    leader = ServerProcess(
        leader_root,
        fault_plan=plan,
        extra_args=["--repl-ack", "sync", "--repl-ack-timeout", "30"],
    )
    follower = None
    try:
        follower = ServerProcess(
            follower_root,
            extra_args=["--follow", f"127.0.0.1:{leader.port}", "--repl-poll", "0.1"],
        )
        attempted, acked = drive_until_death(leader)
        # The armed point must have killed the leader with the fault code.
        leader.process.wait(timeout=60)
        assert leader.process.returncode == FAULT_EXIT_CODE, (
            f"expected injected-fault exit {FAULT_EXIT_CODE} at {point}, "
            f"got {leader.process.returncode}"
        )

        # Manual failover: promote the follower, which becomes writable.
        with VerdictClient(port=follower.port, tenant=TENANT, timeout_s=120.0) as client:
            result = client.promote()
            assert result["promoted"] is True
            assert result["replication"]["role"] == "leader"
            names = {entry["tenant"] for entry in client.list_tenants()}
            if TENANT not in names:
                client.create_tenant()  # bootstrap never ran: empty state

        survived = capture_fingerprints(follower.port)
        allowed = {
            j: oracle[j]
            for j in range(acked, attempted + 1)
            if isinstance(oracle.get(j), list)
        }
        matches = [j for j, reference in allowed.items() if survived == reference]
        if not matches and acked == 0 and survived == oracle["empty"]:
            matches = ["empty"]
        assert matches, (
            f"promoted follower state at {point}:{action} matches no oracle "
            f"prefix in [{acked}, {attempted}] (acked={acked}, "
            f"attempted={attempted}) -- acked records were lost or the "
            f"replayed state diverged"
        )

        # And the promoted leader accepts new writes under its new epoch.
        # A follower that adopted the leader's epoch promotes strictly past
        # it; one that died before bootstrap promotes from 0, and the
        # fresh lineage token still fences the equal-epoch split brain.
        with VerdictClient(port=follower.port, tenant=TENANT, timeout_s=120.0) as client:
            assert client.record(DRIVE_SQL[0]) is True
            status = client.replication_status()
            assert status["replication"]["role"] == "leader"
            assert status["replication"]["epoch"] >= (
                1 if matches == ["empty"] else 2
            )
            assert status["replication"]["lineage"]
    finally:
        if follower is not None:
            follower.terminate()
        leader.terminate()
