"""Concurrency hammer: many client threads x many tenants, live server.

Three invariants from the issue:

* **no cross-tenant answer-cache leakage** -- tenants get disjoint row
  counts and disjoint append sizes, so every exact ``COUNT(*)`` value a
  tenant can legitimately produce lies in a set disjoint from every other
  tenant's set; one leaked cached answer trips the assertion;
* **no torn counts** -- an exact ``COUNT(*)`` equals the tenant's row count
  at *some* append boundary, never a value in between;
* **clean shutdown under fire** -- closing the server while clients are
  mid-request yields only complete outcomes (success, 429, 503, or a
  transport-level drop), never a half-written response or a hang.
"""

from __future__ import annotations

import threading

import pytest

from repro.serve.client import (
    ClientError,
    SaturatedError,
    ServerClosingError,
    TransportError,
    VerdictClient,
)
from http_harness import sales_rows, start_server

# Disjoint by construction: base counts 800 apart, appends of 16 rows,
# at most APPENDS_PER_WORKER * WORKERS_PER_TENANT appends per tenant.
ROWS = {"alpha": 2_000, "beta": 2_800, "gamma": 3_600}
APPEND_ROWS = 16
WORKERS_PER_TENANT = 3
ASKS_PER_WORKER = 6
APPENDS_PER_WORKER = 2

COUNT_SQL = "SELECT COUNT(*) FROM sales"
AVG_SQL = "SELECT AVG(revenue) FROM sales WHERE week >= 4 AND week <= 29"


def admissible_counts(base: int) -> set[int]:
    appends = WORKERS_PER_TENANT * APPENDS_PER_WORKER
    return {base + APPEND_ROWS * k for k in range(appends + 1)}


def test_admissible_sets_are_disjoint():
    sets = [admissible_counts(base) for base in ROWS.values()]
    assert not set.intersection(*sets)
    for i, left in enumerate(sets):
        for right in sets[i + 1 :]:
            assert left.isdisjoint(right)


def test_hammer_no_leakage_no_torn_counts(tmp_path):
    server = start_server(
        tmp_path, ROWS, max_active=6, max_queued=64, queue_timeout_s=30.0
    )
    failures: list[str] = []
    barrier = threading.Barrier(WORKERS_PER_TENANT * len(ROWS))

    def worker(tenant: str, index: int) -> None:
        allowed = admissible_counts(ROWS[tenant])
        client = VerdictClient(
            port=server.port,
            tenant=tenant,
            max_retries=10,
            backoff_base_s=0.02,
            seed=index,
        )
        try:
            barrier.wait(timeout=30)
            for step in range(ASKS_PER_WORKER):
                count = client.ask(COUNT_SQL, max_relative_error=0.0)["rows"][0][
                    "values"
                ]["count_star"]
                if count not in allowed:
                    failures.append(
                        f"{tenant}: COUNT(*)={count} outside {sorted(allowed)}"
                    )
                # Approximate asks exercise the per-tenant answer cache.
                avg = client.ask(AVG_SQL)
                if not avg["rows"][0]["values"]["avg_revenue"] > 0:
                    failures.append(f"{tenant}: bad AVG answer {avg}")
                if step < APPENDS_PER_WORKER:
                    client.append(
                        "sales", sales_rows(APPEND_ROWS, seed=100 * index + step)
                    )
        except ClientError as error:
            failures.append(f"{tenant}[{index}]: {type(error).__name__}: {error}")
        finally:
            client.close()

    threads = [
        threading.Thread(target=worker, args=(tenant, index), daemon=True)
        for index, tenant in enumerate(
            name for name in ROWS for _ in range(WORKERS_PER_TENANT)
        )
    ]
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=180)
            assert not thread.is_alive(), "hammer worker hung"
    finally:
        server.close()
    assert not failures, failures[:10]

    # Every tenant settled on its own final count: all appends landed, and
    # the values never crossed tenants.
    final = {
        name: ROWS[name] + APPEND_ROWS * WORKERS_PER_TENANT * APPENDS_PER_WORKER
        for name in ROWS
    }
    assert len(set(final.values())) == len(final)


def test_shutdown_with_inflight_requests_yields_only_complete_outcomes(tmp_path):
    server = start_server(
        tmp_path, {"solo": 2_000}, max_active=2, max_queued=8, queue_timeout_s=10.0
    )
    outcomes: list[str] = []
    outcome_lock = threading.Lock()
    stop = threading.Event()
    first_ok = threading.Event()
    started = threading.Barrier(9, timeout=30)

    def worker(index: int) -> None:
        client = VerdictClient(
            port=server.port, tenant="solo", max_retries=0, timeout_s=30.0, seed=index
        )
        started.wait()
        try:
            while not stop.is_set():
                try:
                    answer = client.ask(COUNT_SQL, max_relative_error=0.0)
                    # A successful response must be complete and correct.
                    assert answer["rows"][0]["values"]["count_star"] == 2_000
                    outcome = "ok"
                    first_ok.set()
                except SaturatedError:
                    outcome = "shed"
                except ServerClosingError:
                    outcome = "closing"
                except TransportError:
                    # Socket closed by shutdown: a complete, honest failure.
                    outcome = "dropped"
                    stop.set()
                with outcome_lock:
                    outcomes.append(outcome)
        finally:
            client.close()

    threads = [
        threading.Thread(target=worker, args=(index,), daemon=True)
        for index in range(8)
    ]
    for thread in threads:
        thread.start()
    started.wait()  # all clients firing before we pull the plug
    assert first_ok.wait(timeout=60), "no request ever succeeded"
    server.close()
    stop.set()
    for thread in threads:
        thread.join(timeout=60)
        assert not thread.is_alive(), "client thread hung across shutdown"

    assert outcomes, "no requests completed at all"
    assert set(outcomes) <= {"ok", "shed", "closing", "dropped"}
    # The server was under fire when it closed; at least one request must
    # have succeeded before the shutdown and none may have produced a torn
    # response (the per-outcome asserts above would have recorded failures).
    assert "ok" in outcomes
