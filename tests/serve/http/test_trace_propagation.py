"""End-to-end tracing over HTTP: ids, span trees, exposition, hammer.

The contract under test (ISSUE 8 tentpole):

* every response carries a ``request_id`` (client-supplied ``X-Request-Id``
  adopted when valid, minted otherwise) that keys the audit log, the trace
  ring, and the trace JSONL -- one id, three places, always consistent;
* an executed request's trace is a *complete* span tree -- admission,
  cache lookup, planning, route attempt with predicted-vs-observed cost,
  partition scan -- and stays complete under concurrency: spans never
  leak between simultaneous requests (contextvars isolation);
* ``/v1/metrics?format=prometheus`` is valid text exposition 0.0.4.
"""

from __future__ import annotations

import re
import threading

import pytest

from repro.obs.trace import Tracer, read_jsonl, valid_request_id
from repro.serve.client import NotFoundError, SaturatedError, VerdictClient
from http_harness import start_server

ROWS = {"acme": 2_000, "globex": 2_400}

#: One exposition sample line: name{labels} value
SAMPLE_RE = re.compile(
    r"\A(?P<name>[A-Za-z_:][A-Za-z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? (?P<value>\S+)\Z"
)


def walk(node: dict):
    """Every span in a trace tree, depth-first (events included)."""
    yield node
    for child in node.get("children", ()):
        yield from walk(child)


def span_names(trace: dict) -> list[str]:
    return [node["name"] for node in walk(trace)]


def check_exposition(text: str) -> dict[str, float]:
    """Validate 0.0.4 structure; returns {series: value}."""
    series: dict[str, float] = {}
    typed: set[str] = set()
    for line in text.strip().splitlines():
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert kind in ("counter", "gauge", "histogram"), line
            assert name not in typed, f"duplicate TYPE for {name}"
            typed.add(name)
            continue
        match = SAMPLE_RE.match(line)
        assert match, f"malformed sample line: {line!r}"
        base = re.sub(r"_(bucket|sum|count)$", "", match["name"])
        assert match["name"] in typed or base in typed, f"undeclared {match['name']}"
        series[f"{match['name']}{{{match['labels'] or ''}}}"] = float(match["value"])
    return series


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    root = tmp_path_factory.mktemp("traced")
    tracer = Tracer(ring_capacity=128, log_path=root / "trace" / "trace.jsonl")
    server = start_server(root, ROWS, tracer=tracer)
    yield server
    server.close()


@pytest.fixture()
def client(server):
    with VerdictClient(port=server.port, tenant="acme") as client:
        yield client


class TestRequestIds:
    def test_every_response_carries_an_id(self, client):
        answer = client.ask("SELECT COUNT(*) FROM sales", max_relative_error=0.0)
        assert answer["rows"][0]["values"]["count_star"] == ROWS["acme"]
        assert valid_request_id(client.last_request_id)

    def test_client_supplied_id_is_adopted_end_to_end(self, client):
        client.ask(
            "SELECT AVG(revenue) FROM sales WHERE week <= 40",
            request_id="caller-chose-this-1",
        )
        assert client.last_request_id == "caller-chose-this-1"
        trace = client.trace("caller-chose-this-1")
        assert trace["request_id"] == "caller-chose-this-1"
        assert trace["status"] == "ok"

    def test_invalid_offered_id_is_replaced(self, client):
        client.ask("SELECT COUNT(*) FROM sales", request_id="bad id!")
        assert client.last_request_id != "bad id!"
        assert valid_request_id(client.last_request_id)

    def test_ids_are_unique_across_requests(self, client):
        ids = set()
        for _ in range(5):
            client.ask("SELECT COUNT(*) FROM sales")
            ids.add(client.last_request_id)
        assert len(ids) == 5


class TestTraceRetrieval:
    def test_executed_request_has_complete_span_tree(self, client):
        client.ask(
            "SELECT AVG(revenue) FROM sales WHERE week >= 7 AND week <= 33",
            request_id="full-tree-1",
        )
        trace = client.trace("full-tree-1")
        names = span_names(trace)
        assert "admission" in names
        assert "cache.lookup" in names
        assert "plan" in names
        assert "scan" in names
        route_spans = [
            node for node in walk(trace) if node["name"].startswith("route.")
        ]
        assert route_spans, f"no route attempt span in {names}"
        attempted = route_spans[0]
        # Predicted vs observed cost/error sit side by side on the attempt.
        assert attempted["attrs"]["predicted_seconds"] > 0
        assert attempted["attrs"]["observed_seconds"] >= 0
        assert "predicted_error" in attempted["attrs"]
        assert "observed_error" in attempted["attrs"]
        # Timings are populated on every span.
        for node in walk(trace):
            assert node["wall_s"] >= 0
            assert node["status"] == "ok"

    def test_trace_true_attaches_tree_inline(self, client):
        payload = client.ask_traced(
            "SELECT AVG(revenue) FROM sales WHERE week >= 2 AND week <= 48"
        )
        assert payload["answer"]["route"]
        trace = payload["trace"]
        assert trace is not None
        assert trace["request_id"] == payload["request_id"]
        assert "plan" in span_names(trace)

    def test_unknown_trace_is_404(self, client):
        with pytest.raises(NotFoundError) as excinfo:
            client.trace("never-served-0")
        assert excinfo.value.code == "unknown_trace"


class TestExplainOverHTTP:
    def test_decision_record_round_trips(self, client):
        plan = client.explain("SELECT AVG(revenue) FROM sales WHERE week <= 26")
        assert plan["supported"] is True
        assert plan["table"] == "sales"
        routes = [candidate["route"] for candidate in plan["candidates"]]
        assert routes == ["cached", "learned", "online_agg", "exact"]
        assert plan["chosen_route"] in routes
        assert plan["cost_model_inputs"]["estimated_exact_rows"] == ROWS["acme"]

    def test_explain_works_on_a_saturated_server(self, tmp_path):
        """EXPLAIN bypasses admission: inspectable exactly when it matters."""
        saturated = start_server(
            tmp_path, {"solo": 1_200}, max_active=1, max_queued=0, audit=False
        )
        try:
            slot = saturated.admission.admit()
            slot.__enter__()
            try:
                with VerdictClient(
                    port=saturated.port, tenant="solo", max_retries=0
                ) as client:
                    with pytest.raises(SaturatedError):
                        client.ask("SELECT COUNT(*) FROM sales")
                    plan = client.explain("SELECT COUNT(*) FROM sales")
                    assert plan["chosen_route"]
            finally:
                slot.__exit__(None, None, None)
        finally:
            saturated.close()


class TestPrometheusEndpoint:
    def test_server_wide_exposition_parses(self, client):
        client.ask("SELECT COUNT(*) FROM sales")
        text = client.metrics_prometheus(tenant="")
        series = check_exposition(text)
        assert any(key.startswith("verdict_uptime_seconds") for key in series)
        assert any(
            key.startswith("verdict_admission_outcomes_total") for key in series
        )
        assert any(
            key.startswith("verdict_requests_total") and 'tenant="acme"' in key
            for key in series
        )
        assert any(key.startswith("verdict_traces_finished_total") for key in series)

    def test_tenant_scoped_exposition(self, client):
        client.ask("SELECT COUNT(*) FROM sales")
        series = check_exposition(client.metrics_prometheus(tenant="acme"))
        assert all("tenant=" not in key or 'tenant="acme"' in key for key in series)
        assert any(key.startswith("verdict_requests_total") for key in series)

    def test_unknown_format_is_400(self, client):
        from repro.serve.client import BadRequestError

        with pytest.raises(BadRequestError):
            client._request("GET", "/v1/metrics?format=xml", idempotent=True)


class TestAdmissionOutcomes:
    def test_snapshot_breakdown_and_queue_wait(self, server, client):
        client.ask("SELECT COUNT(*) FROM sales")
        snapshot = server.admission.snapshot()
        assert snapshot["admitted_immediate"] >= 1
        assert {
            "admitted_queued",
            "shed_queue_full",
            "shed_timeout",
            "queue_wait",
            "retry_after_s",
        } <= set(snapshot)
        assert 1.0 <= snapshot["retry_after_s"] <= 30.0

    def test_429_carries_retry_after_header(self, tmp_path):
        server = start_server(
            tmp_path, {"solo": 1_200}, max_active=1, max_queued=0, audit=False
        )
        try:
            slot = server.admission.admit()
            slot.__enter__()
            try:
                with VerdictClient(
                    port=server.port, tenant="solo", max_retries=0
                ) as client:
                    with pytest.raises(SaturatedError):
                        client.ask("SELECT COUNT(*) FROM sales")
                import http.client as http_client

                connection = http_client.HTTPConnection("127.0.0.1", server.port)
                try:
                    connection.request(
                        "POST",
                        "/v1/ask",
                        body='{"tenant": "solo", "sql": "SELECT COUNT(*) FROM sales"}',
                        headers={"Content-Type": "application/json"},
                    )
                    response = connection.getresponse()
                    assert response.status == 429
                    retry_after = response.getheader("Retry-After")
                    assert retry_after is not None
                    assert 1.0 <= float(retry_after) <= 30.0
                    response.read()
                finally:
                    connection.close()
            finally:
                slot.__exit__(None, None, None)
        finally:
            server.close()


WORKERS = 6
ASKS_PER_WORKER = 4


class TestConcurrencyHammer:
    def test_span_trees_stay_complete_and_ids_consistent(self, tmp_path):
        """N concurrent asks: every trace is a whole, non-interleaved tree.

        Distinct SQL per request forces every ask through plan + route +
        scan (no cache hits), so a contextvars leak between simultaneous
        requests would show up as a tree with zero or two ``plan`` spans.
        The request id must then agree across the response payload, the
        audit log, and the trace JSONL.
        """
        tracer = Tracer(
            ring_capacity=WORKERS * ASKS_PER_WORKER * 2,
            log_path=tmp_path / "trace" / "trace.jsonl",
        )
        server = start_server(
            tmp_path,
            ROWS,
            max_active=4,
            max_queued=64,
            queue_timeout_s=30.0,
            tracer=tracer,
        )
        results: list[dict] = []
        failures: list[str] = []
        barrier = threading.Barrier(WORKERS)

        def worker(index: int) -> None:
            tenant = "acme" if index % 2 == 0 else "globex"
            try:
                with VerdictClient(
                    port=server.port,
                    tenant=tenant,
                    max_retries=10,
                    backoff_base_s=0.02,
                    seed=index,
                ) as client:
                    barrier.wait(timeout=30)
                    for attempt in range(ASKS_PER_WORKER):
                        week = index * ASKS_PER_WORKER + attempt + 1
                        payload = client.ask_traced(
                            f"SELECT COUNT(*) FROM sales WHERE week >= {week}",
                            max_relative_error=0.0,
                            record=False,
                        )
                        results.append(payload)
            except Exception as error:  # pragma: no cover - diagnostic
                failures.append(f"worker {index}: {error!r}")

        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(WORKERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        try:
            assert not failures, failures
            assert len(results) == WORKERS * ASKS_PER_WORKER

            ids = [payload["request_id"] for payload in results]
            assert len(set(ids)) == len(ids), "request ids must be unique"

            for payload in results:
                trace = payload["trace"]
                assert trace["request_id"] == payload["request_id"]
                names = span_names(trace)
                # Exactly one of each stage: a leaked span from a
                # concurrent request would break these counts.
                assert names.count("admission") == 1, names
                assert names.count("cache.lookup") == 1, names
                assert names.count("plan") == 1, names
                route_count = sum(
                    1 for name in names if name.startswith("route.")
                )
                assert route_count >= 1, names
                assert "scan" in names
        finally:
            server.close()

        # The same ids, in the audit log...
        (audit_path,) = (tmp_path / "audit").glob("*.jsonl")
        audit_ids = {
            entry.get("request_id")
            for entry in read_jsonl(audit_path)
            if entry.get("endpoint") == "POST /v1/ask"
        }
        assert set(ids) <= audit_ids

        # ...and in the trace JSONL, each tree still whole.
        logged = {
            entry["request_id"]: entry
            for entry in read_jsonl(tmp_path / "trace" / "trace.jsonl")
        }
        assert set(ids) <= set(logged)
        for request_id in ids:
            assert span_names(logged[request_id]).count("plan") == 1
