"""Retry hygiene of :class:`VerdictClient`, against a scripted stub server.

The stub replays a fixed sequence of responses (or connection drops) and
records every request it sees, so each test can assert exactly which calls
were retried, how many times, and -- for ``Retry-After`` -- that the client
never comes back earlier than the server asked.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.serve.client import (
    SaturatedError,
    ServerClosingError,
    TransportError,
    VerdictClient,
)

OK_BODY = json.dumps(
    {"status": "ok", "recorded": True, "tenants": [], "answer": {}}
).encode()

#: Script steps: ``(status, headers)`` or ``(status, headers, body_dict)``
#: to respond, or ``"drop"`` to close the connection without answering.
DROP = "drop"


class _ScriptedHandler(BaseHTTPRequestHandler):
    def _serve(self) -> None:
        script = self.server.script  # type: ignore[attr-defined]
        self.server.requests.append((self.command, self.path))  # type: ignore[attr-defined]
        step = script.popleft() if script else (200, {})
        if step == DROP:
            self.close_connection = True
            self.connection.close()
            return
        status, headers, *rest = step
        body = json.dumps(rest[0]).encode() if rest else OK_BODY
        length = int(self.headers.get("Content-Length", 0))
        if length:
            self.rfile.read(length)
        self.send_response(status)
        for name, value in headers.items():
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    do_GET = _serve
    do_POST = _serve

    def log_message(self, *args) -> None:  # keep pytest output clean
        pass


@pytest.fixture
def stub():
    server = ThreadingHTTPServer(("127.0.0.1", 0), _ScriptedHandler)
    server.script = deque()
    server.requests = []
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


def make_client(stub, **kwargs) -> VerdictClient:
    kwargs.setdefault("backoff_base_s", 0.001)
    kwargs.setdefault("backoff_cap_s", 0.002)
    return VerdictClient(port=stub.server_address[1], tenant="acme", **kwargs)


class TestStatusRetries:
    def test_429_is_retried_until_success(self, stub):
        stub.script.extend([(429, {}), (429, {}), (200, {})])
        with make_client(stub) as client:
            assert client.health()["status"] == "ok"
        assert client.retries_performed == 2
        assert len(stub.requests) == 3

    def test_429_exhaustion_raises_saturated(self, stub):
        stub.script.extend([(429, {})] * 3)
        with make_client(stub, max_retries=2) as client:
            with pytest.raises(SaturatedError):
                client.health()
        assert len(stub.requests) == 3  # initial try + max_retries

    def test_bare_503_fails_fast(self, stub):
        stub.script.append((503, {}))
        with make_client(stub) as client:
            with pytest.raises(ServerClosingError):
                client.health()
        assert len(stub.requests) == 1
        assert client.retries_performed == 0

    def test_503_with_retry_after_is_retried(self, stub):
        stub.script.extend([(503, {"Retry-After": "0.01"}), (200, {})])
        with make_client(stub) as client:
            assert client.health()["status"] == "ok"
        assert client.retries_performed == 1

    def test_retry_after_is_honoured_as_a_floor(self, stub):
        stub.script.extend([(429, {"Retry-After": "0.2"}), (200, {})])
        with make_client(stub) as client:
            started = time.monotonic()
            client.health()
            elapsed = time.monotonic() - started
        # Jitter is upward-only: never back before the server asked.
        assert elapsed >= 0.2
        assert elapsed < 2.0


QUOTA = {
    "tenant_qps": 2.0,
    "tenant_concurrency": None,
    "active": 0,
    "remaining_tokens": 0.25,
    "capacity_tokens": 4.0,
    "refill_s": 0.15,
}

SHED_BODY = {"error": {"code": "shed_load", "message": "out of quota", "quota": QUOTA}}


class TestGovernorQuotaSheds:
    def test_refill_derived_retry_after_is_honoured_as_a_floor(self, stub):
        # A governor shed's Retry-After is the bucket refill wait, not the
        # global queue horizon; the client must not come back earlier.
        stub.script.extend([(429, {"Retry-After": "0.15"}, SHED_BODY), (200, {})])
        with make_client(stub) as client:
            started = time.monotonic()
            client.health()
            elapsed = time.monotonic() - started
        assert elapsed >= 0.15
        assert client.retries_performed == 1
        assert client.last_quota == QUOTA

    def test_quota_state_is_kept_across_retries(self, stub):
        drained = dict(QUOTA, remaining_tokens=0.0)
        refilled = dict(QUOTA, remaining_tokens=1.5)
        stub.script.extend(
            [
                (429, {"Retry-After": "0.01"}, {"error": {"code": "shed_load", "quota": drained}}),
                (429, {"Retry-After": "0.01"}, {"error": {"code": "shed_load", "quota": refilled}}),
                (200, {}),
            ]
        )
        with make_client(stub) as client:
            client.health()
        # last_quota tracks the most recent shed, not the first.
        assert client.last_quota == refilled

    def test_exhausted_retries_surface_the_quota_on_the_error(self, stub):
        stub.script.extend([(429, {}, SHED_BODY)] * 2)
        with make_client(stub, max_retries=1) as client:
            with pytest.raises(SaturatedError) as excinfo:
                client.health()
        assert excinfo.value.code == "shed_load"
        assert excinfo.value.quota == QUOTA
        assert client.last_quota == QUOTA

    def test_shed_without_quota_leaves_last_quota_alone(self, stub):
        # Global admission sheds carry no quota; a stale per-tenant quota
        # from an earlier shed must not be overwritten with None.
        stub.script.extend([(429, {}, SHED_BODY), (429, {}), (200, {})])
        with make_client(stub) as client:
            client.health()
        assert client.last_quota == QUOTA


class TestBackoffSchedule:
    def test_retry_after_floor_is_jittered_upward_only(self):
        client = VerdictClient(seed=3)
        delays = [client._backoff(0, retry_after="0.5") for _ in range(64)]
        assert all(0.5 <= delay <= 0.75 for delay in delays)
        assert len(set(delays)) > 1, "jitter must actually vary"

    def test_unparsable_or_negative_retry_after_falls_back_to_exponential(self):
        client = VerdictClient(seed=3, backoff_base_s=0.05, backoff_cap_s=2.0)
        for bad in ("soon", "-1"):
            delay = client._backoff(2, retry_after=bad)
            assert 0.5 * 0.2 <= delay <= 0.2  # min(cap, base * 2**2) jittered down

    def test_exponential_backoff_is_capped(self):
        client = VerdictClient(seed=3, backoff_base_s=0.05, backoff_cap_s=0.3)
        assert client._backoff(20) <= 0.3


class TestTransportRetries:
    def test_drops_are_not_retried_by_default(self, stub):
        stub.script.append(DROP)
        with make_client(stub) as client:
            with pytest.raises(TransportError):
                client.health()
        assert len(stub.requests) == 1

    def test_idempotent_get_is_retried_across_a_drop_when_enabled(self, stub):
        stub.script.extend([DROP, (200, {})])
        with make_client(stub, retry_transport_errors=True) as client:
            assert client.health()["status"] == "ok"
        assert client.retries_performed == 1
        assert len(stub.requests) == 2

    def test_mutating_request_is_never_replayed_across_a_drop(self, stub):
        # A dropped connection leaves the mutation's fate unknown; replaying
        # feedback/record blindly could double-ingest.  Even with transport
        # retries on, the client must surface the crash instead.
        stub.script.extend([DROP, (200, {})])
        with make_client(stub, retry_transport_errors=True) as client:
            with pytest.raises(TransportError):
                client.record("SELECT COUNT(*) FROM sales")
        assert len(stub.requests) == 1

    def test_non_recording_ask_is_idempotent_and_replayed(self, stub):
        stub.script.extend([DROP, (200, {})])
        with make_client(stub, retry_transport_errors=True) as client:
            client.ask("SELECT COUNT(*) FROM sales", record=False)
        assert len(stub.requests) == 2

    def test_recording_ask_is_not_replayed(self, stub):
        stub.script.extend([DROP, (200, {})])
        with make_client(stub, retry_transport_errors=True) as client:
            with pytest.raises(TransportError):
                client.ask("SELECT COUNT(*) FROM sales", record=True)
        assert len(stub.requests) == 1
