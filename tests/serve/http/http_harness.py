"""Shared harness for the HTTP front-door tests.

Servers are built in-process (real sockets on a free port, real
``VerdictClient`` traffic) with tiny per-tenant sales catalogs so the
suites stay fast.  Each tenant gets a *distinct* row count: exact
``COUNT(*)`` answers then double as a cross-tenant leakage detector --
a value from tenant A's admissible set can never legitimately appear in
tenant B's answers.
"""

from __future__ import annotations

import numpy as np

from repro.config import SamplingConfig, VerdictConfig
from repro.db.catalog import Catalog
from repro.serve.http.audit import AuditLog
from repro.serve.http.server import VerdictHTTPServer
from repro.serve.http.tenants import TenantManager
from repro.serve.service import VerdictService
from repro.workloads.synthetic import make_sales_table

SAMPLING = SamplingConfig(sample_ratio=0.25, num_batches=4, seed=2)
CONFIG = VerdictConfig(learn_length_scales=False)

#: Columns of the synthetic sales schema, for building append payloads.
SALES_COLUMNS = (
    "week",
    "customer_age",
    "region",
    "category",
    "price",
    "quantity",
    "discount",
    "revenue",
)


def make_catalog_factory(row_counts: dict[str, int], default_rows: int = 2_000):
    """Tenant -> sales catalog factory with per-tenant row counts."""

    def factory(tenant: str) -> Catalog:
        rows = row_counts.get(tenant, default_rows)
        table = make_sales_table(num_rows=rows, num_weeks=52, seed=9)
        catalog = Catalog()
        catalog.add_table(table, fact=True)
        return catalog

    return factory


def make_service_factory(**kwargs):
    def factory(catalog, store) -> VerdictService:
        return VerdictService(
            catalog, store=store, sampling=SAMPLING, config=CONFIG, **kwargs
        )

    return factory


def start_server(
    root,
    row_counts: dict[str, int],
    max_active: int = 4,
    max_queued: int = 16,
    queue_timeout_s: float = 5.0,
    max_loaded: int = 8,
    audit: bool = True,
    tracer=None,
    replication=None,
    governor=None,
    brownout=None,
    precreate: bool = True,
    **service_kwargs,
) -> VerdictHTTPServer:
    """An in-process front door on a free port, tenants pre-created.

    ``replication``, when given, is the node's ``ReplicationManager``: the
    tenant manager builds replica stores while it is a follower, and the
    manager is bound to the tenants for promotion.  Follower nodes skip
    tenant pre-creation (``precreate=False``): the puller mirrors the
    leader's registry.
    """
    tenants = TenantManager(
        root,
        make_catalog_factory(row_counts),
        service_factory=make_service_factory(**service_kwargs),
        max_loaded=max_loaded,
        replication=replication,
    )
    if precreate:
        for name in row_counts:
            tenants.create(name)
    if replication is not None:
        replication.bind(tenants=tenants)
    server = VerdictHTTPServer(
        ("127.0.0.1", 0),
        tenants,
        max_active=max_active,
        max_queued=max_queued,
        queue_timeout_s=queue_timeout_s,
        audit=AuditLog.open_session(root / "audit") if audit else None,
        tracer=tracer,
        replication=replication,
        governor=governor,
        brownout=brownout,
    )
    return server.start()


def sales_rows(num_rows: int, seed: int = 0) -> dict[str, list]:
    """A valid append payload for the sales schema (every column present)."""
    rng = np.random.default_rng(seed)
    return {
        "week": [int(w) for w in rng.integers(1, 53, num_rows)],
        "customer_age": [float(a) for a in rng.uniform(18, 80, num_rows)],
        "region": [f"region_{int(r)}" for r in rng.integers(0, 8, num_rows)],
        "category": [f"category_{int(c)}" for c in rng.integers(0, 12, num_rows)],
        "price": [float(p) for p in rng.uniform(1, 90, num_rows)],
        "quantity": [float(q) for q in rng.integers(1, 9, num_rows)],
        "discount": [float(d) for d in rng.uniform(0, 0.3, num_rows)],
        "revenue": [float(v) for v in rng.uniform(5, 500, num_rows)],
    }
