"""Per-tenant governance and brownout over the HTTP front door.

Covers the tenant-facing contract: quota sheds carry the bucket state and
a refill-derived Retry-After, one tenant's abuse never sheds another,
EXPLAIN exposes the governance decision, brownout widens budgets visibly,
and every governor/brownout metric family renders as valid Prometheus
exposition with exactly one HELP/TYPE block per family.
"""

from __future__ import annotations

import pytest

from repro.serve.client import SaturatedError, VerdictClient
from repro.serve.governor import BrownoutController, ResourceGovernor
from http_harness import start_server
from test_trace_propagation import check_exposition

COUNT_SQL = "SELECT COUNT(*) FROM sales"
AVG_SQL = "SELECT AVG(revenue) FROM sales WHERE week >= 5 AND week <= 45"


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


def escalate(brownout: BrownoutController, clock: FakeClock, windows: int) -> None:
    for _ in range(windows):
        brownout.observe(brownout.threshold_s * 4)
        clock.now += brownout.window_s
        brownout.tick()


class TestQuotaSheds:
    def test_shed_carries_quota_state_and_refill_retry_after(self, tmp_path):
        # qps 0.5 with a 2s burst: a one-token bucket -- the first ask
        # drains it, the second is shed with a ~2s refill hint.
        governor = ResourceGovernor(tenant_qps=0.5, burst_s=2.0)
        server = start_server(tmp_path, {"acme": 1_500}, governor=governor)
        try:
            with VerdictClient(port=server.port, tenant="acme", max_retries=0) as c:
                c.ask(COUNT_SQL, max_relative_error=0.05)
                with pytest.raises(SaturatedError) as excinfo:
                    c.ask(COUNT_SQL, max_relative_error=0.05)
                shed = excinfo.value
                assert shed.code == "shed_load"
                assert shed.quota is not None
                assert shed.quota["tenant_qps"] == 0.5
                assert shed.quota["capacity_tokens"] == pytest.approx(1.0)
                assert shed.quota["remaining_tokens"] < 1.0
                # Retry-After derives from the bucket refill: about two
                # seconds for a full token at 0.5/s, nowhere near the
                # 5s global queue-timeout clamp.
                assert 0.05 <= shed.quota["refill_s"] <= 4.0
                # The client kept the final quota state for its caller.
                assert c.last_quota == shed.quota
            snapshot = server.governor.snapshot()["tenants"]["acme"]
            assert snapshot["admitted"] == 1
            assert snapshot["shed_tokens"] == 1
        finally:
            server.close()

    def test_abusive_tenant_does_not_shed_the_meek_one(self, tmp_path):
        governor = ResourceGovernor(tenant_qps=0.5, burst_s=2.0)
        server = start_server(
            tmp_path, {"hog": 1_500, "meek": 1_600}, governor=governor
        )
        try:
            with VerdictClient(port=server.port, tenant="hog", max_retries=0) as hog:
                hog.ask(COUNT_SQL, max_relative_error=0.05)
                for _ in range(3):
                    with pytest.raises(SaturatedError):
                        hog.ask(COUNT_SQL, max_relative_error=0.05)
            with VerdictClient(port=server.port, tenant="meek", max_retries=0) as meek:
                answer = meek.ask(COUNT_SQL, max_relative_error=0.0)
            assert answer["rows"][0]["values"]["count_star"] == 1_600
            tenants = server.governor.snapshot()["tenants"]
            assert tenants["hog"]["shed_tokens"] == 3
            assert tenants["meek"]["shed_tokens"] == 0
        finally:
            server.close()

    def test_concurrency_cap_sheds_while_a_slot_is_held(self, tmp_path):
        governor = ResourceGovernor(tenant_concurrency=1)
        server = start_server(tmp_path, {"acme": 1_500}, governor=governor)
        try:
            slot = server.governor.admit("acme", cost=1.0)
            slot.__enter__()
            try:
                with VerdictClient(
                    port=server.port, tenant="acme", max_retries=0
                ) as c:
                    with pytest.raises(SaturatedError) as excinfo:
                        c.ask(COUNT_SQL)
                assert excinfo.value.quota["active"] == 1
                assert excinfo.value.quota["tenant_concurrency"] == 1
            finally:
                slot.__exit__(None, None, None)
            with VerdictClient(port=server.port, tenant="acme") as c:
                c.ask(COUNT_SQL)  # slot freed: admitted again
        finally:
            server.close()

    def test_expensive_exact_ask_is_priced_higher_than_cheap_ones(self, tmp_path):
        # A bucket that covers several cheap asks is drained by a single
        # forced-exact one: the planner's cost estimate prices the quota.
        governor = ResourceGovernor(tenant_qps=2.0, burst_s=2.0, cost_unit_s=0.001)
        server = start_server(tmp_path, {"acme": 1_500}, governor=governor)
        try:
            with VerdictClient(port=server.port, tenant="acme", max_retries=0) as c:
                c.ask(AVG_SQL, max_relative_error=0.0)  # clamped to capacity
                with pytest.raises(SaturatedError):
                    c.ask(COUNT_SQL, max_relative_error=0.05)
            spent = server.governor.snapshot()["tenants"]["acme"]["bucket"]["spent"]
            assert spent == pytest.approx(4.0)  # the full burst capacity
        finally:
            server.close()


class TestGovernanceExplain:
    def test_explain_reports_quota_price_and_brownout(self, tmp_path):
        governor = ResourceGovernor(tenant_qps=10.0, burst_s=2.0)
        server = start_server(tmp_path, {"acme": 1_500}, governor=governor)
        try:
            with VerdictClient(port=server.port, tenant="acme") as c:
                plan = c.explain(AVG_SQL, max_relative_error=0.05)
            governance = plan["governance"]
            assert governance["tenant_quota"]["tenant_qps"] == 10.0
            assert governance["tenant_quota"]["capacity_tokens"] == 20.0
            assert governance["price_tokens"] >= 1.0
            assert governance["budget_widened"] is False
            assert governance["brownout"] is None
            # EXPLAIN never executes, so it spends no quota.
            assert server.governor.snapshot()["tenants"]["acme"]["admitted"] == 0
        finally:
            server.close()

    def test_explain_shows_widened_budget_under_brownout(self, tmp_path):
        clock = FakeClock()
        brownout = BrownoutController(
            saturated_windows=1, exact_relax_level=1, exact_floor=0.5, clock=clock
        )
        escalate(brownout, clock, 1)
        assert brownout.level == 1
        server = start_server(tmp_path, {"acme": 1_500}, brownout=brownout)
        try:
            with VerdictClient(port=server.port, tenant="acme") as c:
                plan = c.explain(COUNT_SQL, max_relative_error=0.0)
            governance = plan["governance"]
            assert governance["budget_widened"] is True
            assert governance["effective_budget"]["max_relative_error"] == 0.5
            assert governance["brownout"]["level"] == 1
        finally:
            server.close()


class TestBrownout:
    def make_server(self, tmp_path, level_windows: int):
        clock = FakeClock()
        brownout = BrownoutController(
            saturated_windows=1,
            healthy_windows=3,
            exact_relax_level=1,
            exact_floor=0.5,
            clock=clock,
        )
        escalate(brownout, clock, level_windows)
        return start_server(tmp_path, {"acme": 1_500}, brownout=brownout), brownout

    def test_brownout_steers_exact_asks_onto_approximate_routes(self, tmp_path):
        server, brownout = self.make_server(tmp_path, level_windows=1)
        try:
            assert brownout.level == 1
            with VerdictClient(port=server.port, tenant="acme") as c:
                answer = c.ask(AVG_SQL, max_relative_error=0.0)
            # The hard exact requirement was relaxed to a 0.5 error floor:
            # the planner answers from a cheap approximate route instead.
            assert answer["route"] != "exact"
            records = [
                __import__("json").loads(line)
                for line in server.audit.path.read_text().splitlines()
            ]
            assert any(r.get("brownout_level") == 1 for r in records)
        finally:
            server.close()

    def test_brownout_surfaces_in_healthz_and_metrics(self, tmp_path):
        server, brownout = self.make_server(tmp_path, level_windows=1)
        try:
            with VerdictClient(port=server.port, tenant="acme") as c:
                health = c.health()
                assert health["status"] == "degraded"
                assert any("brownout at level 1" in r for r in health["reasons"])
                assert health["brownout"]["level"] == 1
                metrics = c.metrics(tenant="")
                assert metrics["brownout"]["escalations"] == 1
                assert metrics["governor"]["enabled"] is False
        finally:
            server.close()

    def test_level_zero_brownout_leaves_budgets_alone(self, tmp_path):
        server, brownout = self.make_server(tmp_path, level_windows=0)
        try:
            assert brownout.level == 0
            with VerdictClient(port=server.port, tenant="acme") as c:
                answer = c.ask(COUNT_SQL, max_relative_error=0.0)
            assert answer["route"] == "exact"
            assert answer["relative_error_bound"] == 0.0
        finally:
            server.close()


class TestGovernorExposition:
    def test_families_render_once_each_with_all_outcomes(self, tmp_path):
        clock = FakeClock()
        brownout = BrownoutController(saturated_windows=1, clock=clock)
        escalate(brownout, clock, 1)
        governor = ResourceGovernor(tenant_qps=0.5, burst_s=2.0)
        server = start_server(
            tmp_path, {"acme": 1_500, "beta": 1_600}, governor=governor,
            brownout=brownout,
        )
        try:
            with VerdictClient(port=server.port, tenant="acme", max_retries=0) as c:
                c.ask(COUNT_SQL, max_relative_error=0.05)
                with pytest.raises(SaturatedError):
                    c.ask(COUNT_SQL, max_relative_error=0.05)
            with VerdictClient(port=server.port, tenant="beta") as c:
                c.ask(COUNT_SQL, max_relative_error=0.05)
                text = c.metrics_prometheus(tenant="")
            # check_exposition asserts exactly one TYPE block per family
            # even with two tenants contributing samples to each.
            series = check_exposition(text)
            assert series['verdict_governor_outcomes_total{outcome="admitted",tenant="acme"}'] == 1
            assert series['verdict_governor_outcomes_total{outcome="shed_tokens",tenant="acme"}'] == 1
            assert series['verdict_governor_outcomes_total{outcome="admitted",tenant="beta"}'] == 1
            assert series['verdict_governor_active{tenant="acme"}'] == 0
            assert 'verdict_governor_tokens_spent_total{tenant="acme"}' in series
            assert series["verdict_brownout_level{}"] == 1
            assert series['verdict_brownout_transitions_total{direction="escalate"}'] == 1
            assert series['verdict_cancel_requests_total{outcome="delivered"}'] == 0
        finally:
            server.close()

    def test_governor_state_rides_in_json_metrics_and_healthz(self, tmp_path):
        governor = ResourceGovernor(tenant_qps=10.0, tenant_concurrency=4)
        server = start_server(tmp_path, {"acme": 1_500}, governor=governor)
        try:
            with VerdictClient(port=server.port, tenant="acme") as c:
                c.ask(COUNT_SQL, max_relative_error=0.05)
                metrics = c.metrics(tenant="")
                assert metrics["governor"]["enabled"] is True
                assert metrics["governor"]["tenants"]["acme"]["admitted"] == 1
                health = c.health()
                assert health["governor"]["tenant_qps"] == 10.0
                assert health["governor"]["tenants"]["acme"]["active"] == 0
        finally:
            server.close()
