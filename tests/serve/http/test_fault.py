"""Fault injection: SIGKILL the server mid-trace, restart, replay identically.

The server runs as a real subprocess (``python -m repro.serve.http``) over a
temporary state root.  Per tenant we ingest learned state (record + train),
force a durable snapshot, and collect reference answer fingerprints.  Then
the process is SIGKILLed *while a replay is in flight* -- no graceful
shutdown, no final snapshot -- and a fresh process is started over the same
root.  Because tenant catalogs are rebuilt deterministically and learned
state restores from the snapshot, every replayed ``ask`` must produce a
byte-identical fingerprint (:func:`answer_fingerprint` strips only
wall-clock timing and cache provenance).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.serve.client import TransportError, VerdictClient
from repro.serve.http.protocol import answer_fingerprint

REPO_ROOT = Path(__file__).resolve().parents[3]

TENANTS = ("acme", "globex")

INGEST_SQL = [
    f"SELECT AVG(revenue) FROM sales WHERE week >= {low} AND week <= {low + 14}"
    for low in (1, 12, 25, 38)
]

#: The replay trace: exact, learned-range, and grouped shapes.
TRACE_SQL = [
    "SELECT COUNT(*) FROM sales",
    "SELECT AVG(revenue) FROM sales WHERE week >= 8 AND week <= 27",
    "SELECT AVG(revenue) FROM sales WHERE week >= 20 AND week <= 40",
    "SELECT SUM(revenue) FROM sales WHERE week >= 5 AND week <= 18",
    "SELECT AVG(price) FROM sales WHERE week >= 10 AND week <= 30",
]


class ServerProcess:
    """One ``python -m repro.serve.http`` subprocess and its readiness info."""

    def __init__(self, root: Path):
        environment = dict(os.environ)
        environment["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + environment.get(
            "PYTHONPATH", ""
        )
        self.process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.serve.http",
                "--port",
                "0",
                "--root",
                str(root),
                "--workload",
                "sales",
                "--rows",
                "2000",
                "--batches",
                "3",
                "--seed",
                "7",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=environment,
        )
        ready_line = self.process.stdout.readline()
        if not ready_line:
            raise AssertionError(
                f"server died before readiness: {self.process.stderr.read()}"
            )
        self.ready = json.loads(ready_line)
        self.port = self.ready["listening"]["port"]

    def kill(self) -> None:
        self.process.send_signal(signal.SIGKILL)
        self.process.wait(timeout=30)

    def terminate(self) -> None:
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=30)


def replay_fingerprints(port: int, tenant: str) -> list[bytes]:
    """Fingerprints of the whole trace for one tenant (non-mutating asks)."""
    with VerdictClient(port=port, tenant=tenant, timeout_s=120.0) as client:
        return [
            answer_fingerprint(client.ask(sql, record=False)) for sql in TRACE_SQL
        ]


@pytest.fixture(scope="module")
def state_root(tmp_path_factory):
    return tmp_path_factory.mktemp("fault-root")


def test_kill_restart_replay_is_byte_identical(state_root):
    server = ServerProcess(state_root)
    reference: dict[str, list[bytes]] = {}
    try:
        with VerdictClient(port=server.port, timeout_s=120.0) as admin:
            for tenant in TENANTS:
                admin.create_tenant(tenant)
                for sql in INGEST_SQL:
                    assert admin.record(sql, tenant=tenant) is True
                assert admin.train(tenant=tenant)["trained"] is True
                assert admin.snapshot(tenant=tenant)["snapshot"] == "snapshot"
        for tenant in TENANTS:
            reference[tenant] = replay_fingerprints(server.port, tenant)

        # SIGKILL the server while a second replay is mid-flight: no drain,
        # no final snapshot, possibly a half-written response on the wire.
        replay_started = threading.Event()

        def doomed_replay() -> None:
            try:
                with VerdictClient(
                    port=server.port, tenant=TENANTS[0], timeout_s=120.0
                ) as client:
                    for sql in TRACE_SQL * 10:
                        replay_started.set()
                        client.ask(sql, record=False)
            except TransportError:
                pass  # the point: the process died under us

        victim = threading.Thread(target=doomed_replay, daemon=True)
        victim.start()
        assert replay_started.wait(timeout=60)
        server.kill()
        victim.join(timeout=60)
        assert not victim.is_alive()
    finally:
        server.terminate()

    # Restart over the same root: registry, stores, and deterministic
    # catalogs must reconstruct every tenant exactly.
    restarted = ServerProcess(state_root)
    try:
        with VerdictClient(port=restarted.port, timeout_s=120.0) as admin:
            names = {record["tenant"] for record in admin.list_tenants()}
            assert set(TENANTS) <= names, "tenant registry lost in the crash"
            for tenant in TENANTS:
                assert admin.metrics(tenant=tenant)["restored"] >= 1
        for tenant in TENANTS:
            replayed = replay_fingerprints(restarted.port, tenant)
            assert replayed == reference[tenant], (
                f"tenant {tenant}: replay diverged after kill/restart"
            )
    finally:
        restarted.terminate()


def test_sigterm_is_graceful(state_root, tmp_path):
    server = ServerProcess(tmp_path)
    with VerdictClient(port=server.port, tenant="solo", timeout_s=120.0) as client:
        client.create_tenant()
        assert client.record(INGEST_SQL[0]) is True
    server.process.send_signal(signal.SIGTERM)
    stdout, stderr = server.process.communicate(timeout=60)
    assert server.process.returncode == 0, stderr
    assert json.loads(stdout.splitlines()[-1]) == {"stopped": True}
    # Graceful exit wrote the tenant's final snapshot.
    assert (tmp_path / "tenants" / "solo" / "store" / "snapshot.json").is_file()
