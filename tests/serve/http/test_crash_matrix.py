"""Crash matrix: kill the server at every store fault point, restart, replay.

The acceptance test of the fault-injection harness.  For each named
``store.*`` fault point a real ``python -m repro.serve.http`` subprocess is
started over a copy of a seeded state root with ``REPRO_FAULTS`` arming a
``kill`` (or ``torn``: half-write durably, then die) at that point.  Client
traffic drives the store through the point, the process dies with
:data:`~repro.faults.FAULT_EXIT_CODE` -- indistinguishable from SIGKILL as
far as the files are concerned, but assertable -- and then the contract is
checked: a clean restart over the crashed root serves the replay trace, and
a *second* restart (after another hard kill) serves it byte-identically.

The full matrix is long; by default only a three-point smoke subset runs
(one point per recovery mode: delta-tail truncation, snapshot rotation,
replay-time crash).  Set ``CRASH_MATRIX=full`` (the dedicated CI job does)
to run every point.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.faults import FAULT_EXIT_CODE
from repro.serve.client import ClientError, VerdictClient
from repro.serve.http.protocol import answer_fingerprint

REPO_ROOT = Path(__file__).resolve().parents[3]

TENANT = "acme"

INGEST_SQL = [
    f"SELECT AVG(revenue) FROM sales WHERE week >= {low} AND week <= {low + 14}"
    for low in (1, 12, 25, 38)
]

#: Records flushed as deltas after the seed snapshot, so the crashed-at
#: server has a real delta log to replay (and to tear).
DELTA_SQL = [
    "SELECT AVG(revenue) FROM sales WHERE week >= 6 AND week <= 21",
    "SELECT AVG(revenue) FROM sales WHERE week >= 30 AND week <= 44",
]

TRACE_SQL = [
    "SELECT COUNT(*) FROM sales",
    "SELECT AVG(revenue) FROM sales WHERE week >= 8 AND week <= 27",
    "SELECT AVG(revenue) FROM sales WHERE week >= 20 AND week <= 40",
    "SELECT SUM(revenue) FROM sales WHERE week >= 5 AND week <= 18",
    "SELECT AVG(price) FROM sales WHERE week >= 10 AND week <= 30",
]

#: (fault point, action) -- every store.* point, one row per failure mode.
MATRIX = [
    ("store.replay.record", "kill"),
    ("store.delta.append", "torn"),
    ("store.delta.append", "kill"),
    ("store.delta.fsync", "kill"),
    ("store.snapshot.write", "torn"),
    ("store.snapshot.write", "kill"),
    ("store.snapshot.fsync", "kill"),
    ("store.snapshot.rename", "kill"),
    ("store.delta.truncate", "kill"),
]

#: One point per recovery mode: replay-time crash, torn delta tail, crash
#: inside the snapshot rotation.
SMOKE = {
    ("store.replay.record", "kill"),
    ("store.delta.append", "torn"),
    ("store.snapshot.rename", "kill"),
}

FULL_MATRIX = os.environ.get("CRASH_MATRIX", "").lower() == "full"


def matrix_params():
    for point, action in MATRIX:
        marks = []
        if not FULL_MATRIX and (point, action) not in SMOKE:
            marks.append(
                pytest.mark.skip(reason="smoke subset; set CRASH_MATRIX=full")
            )
        yield pytest.param(point, action, id=f"{point}:{action}", marks=marks)


class ServerProcess:
    """One front-door subprocess over ``root``, optionally with a fault plan."""

    def __init__(self, root: Path, fault_plan: dict | None = None):
        environment = dict(os.environ)
        environment["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + environment.get(
            "PYTHONPATH", ""
        )
        environment.pop("REPRO_FAULTS", None)
        if fault_plan is not None:
            environment["REPRO_FAULTS"] = json.dumps(fault_plan)
        self.process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.serve.http",
                "--port",
                "0",
                "--root",
                str(root),
                "--workload",
                "sales",
                "--rows",
                "2000",
                "--batches",
                "3",
                "--seed",
                "7",
                "--flush-every",
                "1",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=environment,
        )
        ready_line = self.process.stdout.readline()
        if not ready_line:
            raise AssertionError(
                f"server died before readiness: {self.process.stderr.read()}"
            )
        self.port = json.loads(ready_line)["listening"]["port"]

    def kill(self) -> None:
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGKILL)
        self.process.wait(timeout=30)

    def terminate(self) -> None:
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=30)


def replay_fingerprints(port: int) -> list[bytes]:
    with VerdictClient(port=port, tenant=TENANT, timeout_s=120.0) as client:
        return [
            answer_fingerprint(client.ask(sql, record=False)) for sql in TRACE_SQL
        ]


@pytest.fixture(scope="module")
def seeded_root(tmp_path_factory) -> Path:
    """A state root with a snapshot *and* live delta records.

    The seed server is hard-killed (no graceful shutdown) precisely so its
    final snapshot does not fold the delta log away -- the crashed-at
    servers must have deltas to replay and to tear.
    """
    root = tmp_path_factory.mktemp("crash-matrix-seed")
    server = ServerProcess(root)
    try:
        with VerdictClient(port=server.port, tenant=TENANT, timeout_s=120.0) as client:
            client.create_tenant()
            for sql in INGEST_SQL:
                assert client.record(sql) is True
            assert client.train()["trained"] is True
            assert client.snapshot()["snapshot"] == "snapshot"
            for sql in DELTA_SQL:
                assert client.record(sql) is True
    finally:
        server.kill()
    store_dir = root / "tenants" / TENANT / "store"
    assert (store_dir / "snapshot.json").is_file()
    assert (store_dir / "deltas.jsonl").read_text().strip(), "seed needs deltas"
    return root


def crash_at(root: Path, point: str, action: str) -> None:
    """Drive a fault-armed server through ``point`` until it dies with 86."""
    plan = {"rules": [{"point": point, "action": action}]}
    server = ServerProcess(root, fault_plan=plan)
    try:
        with VerdictClient(port=server.port, tenant=TENANT, timeout_s=120.0) as client:
            with pytest.raises(ClientError):
                # Mutations walk the store through every fault point:
                # loading the tenant replays the seed deltas
                # (store.replay.record), each record flushes one delta
                # (store.delta.append / fsync), and the explicit snapshot
                # runs the full rotation (store.snapshot.* and
                # store.delta.truncate).  The armed point kills the process
                # mid-call, so some call below must die on the wire.
                client.record("SELECT AVG(revenue) FROM sales WHERE week >= 3 AND week <= 17")
                client.record("SELECT AVG(revenue) FROM sales WHERE week >= 22 AND week <= 39")
                client.snapshot()
                raise AssertionError(f"server survived {action} at {point}")
        server.process.wait(timeout=30)
    finally:
        server.terminate()
    assert server.process.returncode == FAULT_EXIT_CODE, (
        f"expected injected-fault exit {FAULT_EXIT_CODE} at {point}, "
        f"got {server.process.returncode}"
    )


def test_crash_during_cancellation_recovers_and_replays_identically(
    seeded_root, tmp_path
):
    """Kill the server between cancel lookup and delivery: no torn state.

    A slow ask (every online-aggregation batch delayed by an injected
    fault) is in flight when ``POST /v1/cancel`` arrives; the ``kill`` armed
    at ``governor.cancel`` dies exactly between the registry lookup and the
    token arm.  The cancelled-mid-cancel query must leave nothing behind:
    both restarts replay the trace byte-identically.
    """
    import threading

    root = tmp_path / "root"
    shutil.copytree(seeded_root, root)

    plan = {
        "rules": [
            {"point": "governor.cancel", "action": "kill"},
            {"point": "aqp.batch", "action": "delay", "delay_s": 0.4},
        ]
    }
    server = ServerProcess(root, fault_plan=plan)
    request_id = "cancel-crash-1"
    try:
        errors: list[Exception] = []

        def doomed_ask() -> None:
            with VerdictClient(port=server.port, tenant=TENANT, timeout_s=120.0) as c:
                try:
                    c.ask(
                        "SELECT AVG(revenue) FROM sales WHERE week >= 4 AND week <= 47",
                        max_relative_error=0.0005,
                        record=False,
                        request_id=request_id,
                    )
                except ClientError as error:
                    errors.append(error)

        asker = threading.Thread(target=doomed_ask, daemon=True)
        asker.start()
        with VerdictClient(port=server.port, tenant=TENANT, timeout_s=120.0) as c:
            for _ in range(2_000):
                if c.metrics(tenant="")["governor"]["cancels"]["in_flight"] == 1:
                    break
                threading.Event().wait(0.005)
            else:
                raise AssertionError("ask never became cancellable")
            with pytest.raises(ClientError):
                c.cancel(request_id)
                raise AssertionError("server survived kill at governor.cancel")
        server.process.wait(timeout=30)
        asker.join(timeout=120)
        assert not asker.is_alive()
        assert errors, "the in-flight ask must die on the wire"
    finally:
        server.terminate()
    assert server.process.returncode == FAULT_EXIT_CODE

    restarted = ServerProcess(root)
    try:
        with VerdictClient(port=restarted.port, timeout_s=120.0) as admin:
            assert admin.health()["status"] in ("ok", "degraded")
        first = replay_fingerprints(restarted.port)
    finally:
        restarted.kill()

    again = ServerProcess(root)
    try:
        second = replay_fingerprints(again.port)
    finally:
        again.terminate()
    assert second == first, "replay diverged after a mid-cancellation crash"


@pytest.mark.parametrize("point, action", matrix_params())
def test_crash_at_store_fault_point_recovers_and_replays_identically(
    seeded_root, tmp_path, point, action
):
    root = tmp_path / "root"
    shutil.copytree(seeded_root, root)

    crash_at(root, point, action)

    # First clean restart: recovery runs (truncation, generation fallback,
    # quarantine -- whatever the crash left behind), and the trace replays.
    restarted = ServerProcess(root)
    try:
        with VerdictClient(port=restarted.port, timeout_s=120.0) as admin:
            assert TENANT in {r["tenant"] for r in admin.list_tenants()}
            health = admin.health()
            assert health["status"] in ("ok", "degraded")
        first = replay_fingerprints(restarted.port)
    finally:
        restarted.kill()  # hard again: replays must not depend on shutdown

    # Second restart over the recovered root: byte-identical replay.
    again = ServerProcess(root)
    try:
        second = replay_fingerprints(again.port)
    finally:
        again.terminate()
    assert second == first, f"replay diverged across restarts after {point}"
