"""Audit-log rotation: size cap, retention, and JSONL validity throughout."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.serve.http.audit import AuditLog


def write_records(log: AuditLog, count: int, endpoint: str = "/v1/ask") -> None:
    for index in range(count):
        log.record(endpoint, status=200, latency_s=0.001, tenant=f"t{index}")


def read_lines(path: Path) -> list[dict]:
    return [json.loads(line) for line in path.read_text().splitlines() if line]


class TestValidation:
    def test_rejects_non_positive_max_bytes(self, tmp_path):
        with pytest.raises(ValueError):
            AuditLog(tmp_path / "log.jsonl", "s", max_bytes=0)

    def test_rejects_zero_retention(self, tmp_path):
        with pytest.raises(ValueError):
            AuditLog(tmp_path / "log.jsonl", "s", max_bytes=100, retention=0)


class TestRotation:
    def test_unbounded_log_never_rotates(self, tmp_path):
        log = AuditLog(tmp_path / "log.jsonl", "s")
        write_records(log, 200)
        log.close()
        assert log.rotations == 0
        assert log.rotated_paths() == []
        assert len(read_lines(log.path)) == 200

    def test_size_cap_triggers_shift_rotation(self, tmp_path):
        log = AuditLog(tmp_path / "log.jsonl", "s", max_bytes=1_000, retention=4)
        write_records(log, 50)  # each record is ~130 bytes; several rotations
        log.close()
        assert log.rotations >= 2
        rotated = log.rotated_paths()
        assert rotated
        assert rotated[0] == Path(f"{log.path}.1")
        # .1 is the newest rotated file: its records are more recent than .2's.
        if len(rotated) >= 2:
            assert read_lines(rotated[0])[0]["seq"] > read_lines(rotated[1])[0]["seq"]

    def test_retention_deletes_the_oldest(self, tmp_path):
        log = AuditLog(tmp_path / "log.jsonl", "s", max_bytes=300, retention=2)
        write_records(log, 60)
        log.close()
        assert log.rotations > 2, "the chain must have overflowed retention"
        assert len(log.rotated_paths()) == 2
        files = sorted(tmp_path.iterdir())
        assert files == [
            tmp_path / "log.jsonl",
            tmp_path / "log.jsonl.1",
            tmp_path / "log.jsonl.2",
        ]

    def test_every_file_in_the_set_is_valid_jsonl(self, tmp_path):
        log = AuditLog(tmp_path / "log.jsonl", "s", max_bytes=500, retention=3)
        write_records(log, 80)
        log.close()
        seqs = []
        for path in [log.path, *log.rotated_paths()]:
            for entry in read_lines(path):  # json.loads raises if a line tore
                assert entry["session"] == "s"
                seqs.append(entry["seq"])
        # No record was lost mid-rotation; surviving seqs form one contiguous
        # tail of the full sequence (older records fell off retention).
        assert sorted(seqs) == list(range(min(seqs), 80))

    def test_records_after_close_are_dropped_not_raised(self, tmp_path):
        log = AuditLog(tmp_path / "log.jsonl", "s")
        write_records(log, 1)
        log.close()
        write_records(log, 1)  # must not raise
        assert len(read_lines(log.path)) == 1


class TestOpenSession:
    def test_open_session_names_a_fresh_file(self, tmp_path):
        log = AuditLog.open_session(tmp_path, max_bytes=None)
        write_records(log, 1)
        log.close()
        assert log.path.parent == tmp_path
        assert log.path.name == f"{log.session_id}.jsonl"
        assert read_lines(log.path)[0]["session"] == log.session_id
