"""End-to-end query cancellation over the HTTP front door.

An in-flight ask -- slowed down with a ``delay`` fault at the
online-aggregation batch point -- is cancelled by ``POST /v1/cancel`` or by
a simulated client disconnect, and the contract is asserted end to end:
the caller gets a typed 499, the worker slot frees promptly, and the
cancellation is visible in the audit log, the trace ring, and the metrics.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import faults
from repro.faults import FaultPlan, FaultRule
from repro.obs.trace import Tracer
from repro.serve.client import (
    BadRequestError,
    CancelledError,
    NotFoundError,
    VerdictClient,
)
from http_harness import start_server

SLOW_SQL = "SELECT AVG(revenue) FROM sales WHERE week >= 5 AND week <= 45"


@pytest.fixture(autouse=True)
def no_leftover_plan():
    faults.clear()
    yield
    faults.clear()


def slow_batches(delay_s: float = 0.25, extra: list[FaultRule] | None = None):
    """Delay every online-aggregation batch so asks stay in flight."""
    rules = [FaultRule(point="aqp.batch", action="delay", delay_s=delay_s)]
    return faults.install(FaultPlan(rules + list(extra or [])))


@pytest.fixture()
def server(tmp_path):
    server = start_server(
        tmp_path,
        {"acme": 2_000},
        max_active=2,
        tracer=Tracer(ring_capacity=32, log_path=None),
    )
    yield server
    faults.clear()  # close() drains; in-flight delays must not outlive us
    server.close()


def audit_records(server) -> list[dict]:
    return [
        json.loads(line)
        for line in server.audit.path.read_text().splitlines()
        if line.strip()
    ]


class TestExplicitCancel:
    def test_cancel_in_flight_ask_end_to_end(self, server):
        slow_batches()
        request_id = "cancel-me-please-1"
        errors: list[Exception] = []

        def doomed_ask() -> None:
            with VerdictClient(port=server.port, tenant="acme") as client:
                try:
                    client.ask(SLOW_SQL, max_relative_error=0.001, request_id=request_id)
                except Exception as error:  # noqa: BLE001 - asserted below
                    errors.append(error)

        asker = threading.Thread(target=doomed_ask, daemon=True)
        asker.start()
        # Wait until the ask is registered (it is executing its first batch).
        for _ in range(2_000):
            if server.governor.cancels.in_flight() == 1:
                break
            threading.Event().wait(0.005)
        else:
            pytest.fail("ask never became cancellable")

        with VerdictClient(port=server.port, tenant="acme") as canceller:
            assert canceller.cancel(request_id) == {
                "cancelled": True,
                "request": request_id,
                "request_id": canceller.last_request_id,
            }
        asker.join(timeout=60)
        assert not asker.is_alive(), "cancelled ask never returned"

        # The caller saw a typed 499.
        assert len(errors) == 1
        assert isinstance(errors[0], CancelledError)
        assert errors[0].code == "cancelled"

        # The worker slot was freed promptly and nothing is still tracked.
        admission = server.admission.snapshot()
        assert admission["active"] == 0
        assert admission["completed"] == admission["admitted"]
        assert server.governor.cancels.in_flight() == 0

        # Audit: the ask is recorded as cancelled, the cancel as delivered.
        records = audit_records(server)
        ask_record = next(r for r in records if r.get("request_id") == request_id)
        assert ask_record["status"] == 499
        assert ask_record["cancelled"] == "requested"
        assert ask_record["error"] == "cancelled"
        cancel_record = next(
            r for r in records if r.get("cancel_target") == request_id
        )
        assert cancel_record["status"] == 200
        assert cancel_record["tenant"] == "acme"

        # Trace: the ring holds the finished request flagged as cancelled.
        trace = server.tracer.get(request_id)
        assert trace is not None
        assert trace["attrs"]["error_code"] == "cancelled"

        # Metrics: governor and service both counted the cancellation.
        snapshot = server.governor.snapshot()
        assert snapshot["cancels"]["delivered"] == 1
        assert snapshot["tenants"]["acme"]["cancelled"] == {"requested": 1}

    def test_cancel_unknown_request_is_404(self, server):
        with VerdictClient(port=server.port, tenant="acme") as client:
            with pytest.raises(NotFoundError) as excinfo:
                client.cancel("finished-long-ago-7")
        assert excinfo.value.code == "unknown_request"
        assert server.governor.cancels.unknown == 1

    def test_cancel_invalid_id_is_400(self, server):
        with VerdictClient(port=server.port, tenant="acme") as client:
            with pytest.raises(BadRequestError):
                client.cancel("bad~id!")  # URL-legal but not a request id

    def test_cancel_is_idempotent_while_in_flight(self, server):
        slow_batches()
        request_id = "cancel-twice-1"
        done = threading.Event()

        def doomed_ask() -> None:
            try:
                with VerdictClient(port=server.port, tenant="acme") as client:
                    with pytest.raises(CancelledError):
                        client.ask(
                            SLOW_SQL, max_relative_error=0.001, request_id=request_id
                        )
            finally:
                done.set()

        asker = threading.Thread(target=doomed_ask, daemon=True)
        asker.start()
        for _ in range(2_000):
            if server.governor.cancels.in_flight() == 1:
                break
            threading.Event().wait(0.005)
        with VerdictClient(port=server.port, tenant="acme") as canceller:
            first = canceller.cancel(request_id)
            assert first["cancelled"] is True
            # A repeat may still find it (in flight) or 404 (finished);
            # either way it must not wedge or double-count delivery.
            try:
                canceller.cancel(request_id)
            except NotFoundError:
                pass
        assert done.wait(timeout=60)
        assert server.governor.cancels.delivered == 1


class TestDisconnectCancel:
    def test_vanished_client_cancels_the_query(self, server):
        # The "torn" directive at http.disconnect makes the probe report a
        # hung-up client on its first poll, without real socket surgery.
        slow_batches(
            extra=[FaultRule(point="http.disconnect", action="torn")]
        )
        with VerdictClient(port=server.port, tenant="acme") as client:
            with pytest.raises(CancelledError):
                client.ask(SLOW_SQL, max_relative_error=0.001)
        snapshot = server.governor.snapshot()
        assert snapshot["tenants"]["acme"]["cancelled"] == {"disconnected": 1}
        records = audit_records(server)
        assert any(r.get("cancelled") == "disconnected" for r in records)
        assert server.admission.snapshot()["active"] == 0

    def test_healthy_connection_is_not_cancelled(self, server):
        # No faults: the real probe peeks a live keep-alive socket with no
        # pending data and must not mistake it for a disconnect.
        with VerdictClient(port=server.port, tenant="acme") as client:
            answer = client.ask(SLOW_SQL, max_relative_error=0.05)
        assert answer["relative_error_bound"] >= 0.0
        assert server.governor.snapshot()["tenants"]["acme"]["cancelled"] == {}
