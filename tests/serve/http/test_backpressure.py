"""Backpressure properties: every request gets exactly one terminal outcome.

The hypothesis properties drive randomized burst schedules straight at
:class:`AdmissionController` (no sockets -- the invariants are the
controller's) and assert:

* **conservation** -- admitted + shed + rejected_closed == arrivals, and
  every admitted request completes;
* **bounds** -- concurrency never exceeds ``max_active`` and the queue
  never exceeds ``max_queued``, even racing a concurrent ``close()``;
* **liveness** -- a client retrying 429s with backoff eventually succeeds
  once load drops.

The last test replays the liveness property over real HTTP: the server's
only execution slot is held hostage, a no-retry client gets 429, and a
retrying client succeeds the moment the slot frees.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.serve.client import SaturatedError, VerdictClient
from repro.serve.http.admission import AdmissionController, ShedLoad, ShuttingDown
from http_harness import start_server

COUNT_SQL = "SELECT COUNT(*) FROM sales"


def run_burst(
    controller: AdmissionController,
    num_requests: int,
    hold_s: float,
    close_after: int | None = None,
) -> dict[str, int]:
    """Fire ``num_requests`` concurrent admits; optionally close mid-burst."""
    outcomes: list[str] = []
    lock = threading.Lock()
    release = threading.Event()

    def request() -> None:
        try:
            with controller.admit():
                if hold_s:
                    release.wait(hold_s)
            outcome = "done"
        except ShedLoad:
            outcome = "shed"
        except ShuttingDown:
            outcome = "closed"
        with lock:
            outcomes.append(outcome)

    threads = [
        threading.Thread(target=request, daemon=True) for _ in range(num_requests)
    ]
    closer = None
    for index, thread in enumerate(threads):
        if close_after is not None and index == close_after:
            closer = threading.Thread(target=controller.close, daemon=True)
            closer.start()
        thread.start()
    release.set()
    for thread in threads:
        thread.join(timeout=60)
        assert not thread.is_alive(), "request thread hung"
    if closer is not None:
        closer.join(timeout=60)
    counts = {key: outcomes.count(key) for key in ("done", "shed", "closed")}
    counts["total"] = len(outcomes)
    return counts


@settings(max_examples=25, deadline=None)
@given(
    max_active=st.integers(1, 4),
    max_queued=st.integers(0, 6),
    num_requests=st.integers(1, 24),
    hold_ms=st.sampled_from([0, 1, 5]),
)
def test_every_request_gets_exactly_one_outcome(
    max_active, max_queued, num_requests, hold_ms
):
    controller = AdmissionController(
        max_active=max_active, max_queued=max_queued, queue_timeout_s=30.0
    )
    counts = run_burst(controller, num_requests, hold_ms / 1000.0)
    # Conservation: one terminal outcome per arrival, in both the caller's
    # view and the controller's own counters.
    assert counts["total"] == num_requests
    assert counts["done"] + counts["shed"] + counts["closed"] == num_requests
    snapshot = controller.snapshot()
    assert snapshot["admitted"] == counts["done"]
    assert snapshot["completed"] == snapshot["admitted"]
    assert snapshot["shed"] == counts["shed"]
    assert snapshot["rejected_closed"] == 0
    # Bounds: the gauges never exceeded their configured caps.
    assert snapshot["peak_active"] <= max_active
    assert snapshot["peak_queued"] <= max_queued
    assert snapshot["active"] == 0 and snapshot["queued"] == 0
    # With enough capacity nothing is shed at all.
    if num_requests <= max_active:
        assert counts["done"] == num_requests


@settings(max_examples=25, deadline=None)
@given(
    max_active=st.integers(1, 3),
    max_queued=st.integers(0, 4),
    num_requests=st.integers(1, 16),
    close_after=st.integers(0, 16),
)
def test_outcomes_conserved_racing_close(
    max_active, max_queued, num_requests, close_after
):
    controller = AdmissionController(
        max_active=max_active, max_queued=max_queued, queue_timeout_s=30.0
    )
    counts = run_burst(
        controller,
        num_requests,
        hold_s=0.002,
        close_after=min(close_after, num_requests - 1),
    )
    assert counts["total"] == num_requests
    assert counts["done"] + counts["shed"] + counts["closed"] == num_requests
    snapshot = controller.snapshot()
    assert snapshot["completed"] == snapshot["admitted"] == counts["done"]
    assert snapshot["rejected_closed"] == counts["closed"]
    assert snapshot["peak_active"] <= max_active
    assert snapshot["peak_queued"] <= max_queued
    # Everything admitted drained; the controller ends idle and closed.
    assert controller.wait_idle(timeout_s=10.0)
    assert controller.closed


def test_queue_timeout_sheds():
    controller = AdmissionController(max_active=1, max_queued=4, queue_timeout_s=0.05)
    release = threading.Event()

    def occupant() -> None:
        with controller.admit():
            release.wait(10.0)

    holder = threading.Thread(target=occupant, daemon=True)
    holder.start()
    while controller.snapshot()["active"] == 0:
        pass  # wait for the slot to be taken
    with pytest.raises(ShedLoad):
        with controller.admit():
            pytest.fail("queue-timeout admit must not succeed")
    release.set()
    holder.join(timeout=10)
    assert controller.snapshot()["shed"] == 1


def test_retry_with_backoff_eventually_succeeds():
    controller = AdmissionController(max_active=1, max_queued=0, queue_timeout_s=5.0)
    release = threading.Event()
    entered = threading.Event()

    def occupant() -> None:
        with controller.admit():
            entered.set()
            release.wait(30.0)

    holder = threading.Thread(target=occupant, daemon=True)
    holder.start()
    assert entered.wait(timeout=10)

    sheds = 0
    for attempt in range(200):
        try:
            with controller.admit():
                break  # admitted: load dropped and the retry got through
        except ShedLoad:
            sheds += 1
            if sheds == 3:
                release.set()  # load drops after a few rejections
            threading.Event().wait(0.005)
    else:
        pytest.fail("backoff retries never succeeded after load dropped")
    holder.join(timeout=10)
    assert sheds >= 3


def test_http_429_then_retry_succeeds(tmp_path):
    server = start_server(
        tmp_path, {"solo": 1_200}, max_active=1, max_queued=0, audit=False
    )
    try:
        # Hold the server's only execution slot hostage.
        slot = server.admission.admit()
        slot.__enter__()
        try:
            with VerdictClient(port=server.port, tenant="solo", max_retries=0) as c:
                with pytest.raises(SaturatedError) as excinfo:
                    c.ask(COUNT_SQL, max_relative_error=0.0)
            assert excinfo.value.code == "shed_load"

            # A retrying client keeps backing off until the slot frees.
            answers: list[dict] = []

            def retrying_ask() -> None:
                with VerdictClient(
                    port=server.port,
                    tenant="solo",
                    max_retries=50,
                    backoff_base_s=0.01,
                    backoff_cap_s=0.05,
                ) as client:
                    answers.append(client.ask(COUNT_SQL, max_relative_error=0.0))
                    retries.append(client.retries_performed)

            retries: list[int] = []
            sheds_before = server.admission.snapshot()["shed"]
            thread = threading.Thread(target=retrying_ask, daemon=True)
            thread.start()
            while server.admission.snapshot()["shed"] < sheds_before + 3:
                threading.Event().wait(0.005)  # let it bounce a few times
        finally:
            slot.__exit__(None, None, None)
        thread.join(timeout=60)
        assert not thread.is_alive()
        assert answers and answers[0]["rows"][0]["values"]["count_star"] == 1_200
        assert retries[0] >= 3
    finally:
        server.close()
