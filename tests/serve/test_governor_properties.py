"""Property tests: governor conservation invariants under concurrency.

Three invariants, each driven by hypothesis-randomized schedules:

* **token conservation** -- a bucket's cumulative ``spent`` equals the sum
  of every granted charge exactly, and the level never leaves
  ``[0, capacity]``, even under concurrent acquires racing refills;
* **admission outcome conservation** -- every ``admit`` gets exactly one
  terminal outcome (completed or shed), per-tenant active gauges return to
  zero, and the counters agree with the callers' tally;
* **cancel delivery** -- racing ``POST /v1/cancel`` deliveries against
  request completion, every cancel call terminates with exactly one of
  found/unknown, a token is never delivered twice, and the registry ends
  empty.
"""

from __future__ import annotations

import threading

from hypothesis import given, settings, strategies as st

from repro.deadline import CancelToken
from repro.serve.governor import CancelRegistry, ResourceGovernor, TokenBucket
from repro.serve.http.admission import ShedLoad


@settings(max_examples=40, deadline=None)
@given(
    capacity=st.floats(0.5, 16.0),
    refill=st.floats(0.1, 8.0),
    costs=st.lists(st.floats(0.0, 20.0), min_size=1, max_size=40),
    advances=st.lists(st.floats(0.0, 2.0), min_size=1, max_size=40),
)
def test_token_conservation_sequential(capacity, refill, costs, advances):
    now = [0.0]
    bucket = TokenBucket(capacity, refill, clock=lambda: now[0])
    granted_total = 0.0
    granted_count = 0
    for index, cost in enumerate(costs):
        ok, remaining, wait = bucket.try_acquire(cost)
        charge = min(cost, capacity)
        if ok:
            granted_total += charge
            granted_count += 1
            assert wait == 0.0
        else:
            assert wait > 0.0
        assert -1e-9 <= remaining <= capacity + 1e-9
        now[0] += advances[index % len(advances)]
    assert abs(bucket.spent - granted_total) < 1e-6
    assert bucket.granted == granted_count
    assert bucket.granted + bucket.denied == len(costs)


@settings(max_examples=15, deadline=None)
@given(
    capacity=st.floats(1.0, 8.0),
    refill=st.floats(0.5, 4.0),
    num_threads=st.integers(2, 8),
    per_thread=st.integers(1, 10),
    cost=st.floats(0.1, 3.0),
)
def test_token_conservation_concurrent(capacity, refill, num_threads, per_thread, cost):
    bucket = TokenBucket(capacity, refill)  # real clock: refills race acquires
    granted = []
    lock = threading.Lock()

    def worker() -> None:
        for _ in range(per_thread):
            ok, remaining, _ = bucket.try_acquire(cost)
            assert -1e-9 <= remaining <= capacity + 1e-9
            if ok:
                with lock:
                    granted.append(min(cost, capacity))

    threads = [threading.Thread(target=worker) for _ in range(num_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
        assert not thread.is_alive()
    assert abs(bucket.spent - sum(granted)) < 1e-6
    assert bucket.granted == len(granted)
    assert bucket.granted + bucket.denied == num_threads * per_thread


@settings(max_examples=15, deadline=None)
@given(
    tenant_concurrency=st.integers(1, 3),
    qps=st.one_of(st.none(), st.floats(5.0, 50.0)),
    num_threads=st.integers(1, 12),
    tenants=st.integers(1, 3),
)
def test_admission_outcome_conservation(tenant_concurrency, qps, num_threads, tenants):
    governor = ResourceGovernor(
        tenant_qps=qps, tenant_concurrency=tenant_concurrency, burst_s=1.0
    )
    outcomes: list[str] = []
    lock = threading.Lock()
    release = threading.Event()

    def request(index: int) -> None:
        tenant = f"t{index % tenants}"
        try:
            with governor.admit(tenant, cost=1.0):
                release.wait(0.01)
            outcome = "done"
        except ShedLoad:
            outcome = "shed"
        with lock:
            outcomes.append(outcome)

    threads = [
        threading.Thread(target=request, args=(index,)) for index in range(num_threads)
    ]
    for thread in threads:
        thread.start()
    release.set()
    for thread in threads:
        thread.join(timeout=30)
        assert not thread.is_alive(), "admit hung"
    # Exactly one terminal outcome per arrival, callers and counters agree.
    assert len(outcomes) == num_threads
    snapshot = governor.snapshot()
    admitted = sum(state["admitted"] for state in snapshot["tenants"].values())
    shed = sum(
        state["shed_tokens"] + state["shed_concurrency"]
        for state in snapshot["tenants"].values()
    )
    assert admitted == outcomes.count("done")
    assert shed == outcomes.count("shed")
    assert admitted + shed == num_threads
    # Every slot was released: no tenant is still marked active.
    assert all(state["active"] == 0 for state in snapshot["tenants"].values())


@settings(max_examples=15, deadline=None)
@given(
    num_requests=st.integers(1, 10),
    num_cancellers=st.integers(1, 4),
    cancel_targets=st.lists(st.integers(0, 12), min_size=1, max_size=20),
)
def test_cancel_delivery_conservation(num_requests, num_cancellers, cancel_targets):
    registry = CancelRegistry()
    tokens = [CancelToken() for _ in range(num_requests)]
    started = threading.Barrier(num_requests + num_cancellers)
    finish = threading.Event()

    def request(index: int) -> None:
        with registry.track(f"req-{index}", tokens[index], f"tenant-{index}"):
            started.wait(timeout=30)
            finish.wait(timeout=30)

    def canceller() -> None:
        started.wait(timeout=30)
        for target in cancel_targets:
            found, tenant = registry.cancel(f"req-{target}")
            if found:
                assert tenant == f"tenant-{target}"
                assert target < num_requests

    threads = [
        threading.Thread(target=request, args=(index,))
        for index in range(num_requests)
    ] + [threading.Thread(target=canceller) for _ in range(num_cancellers)]
    for thread in threads:
        thread.start()
    finish.set()
    for thread in threads:
        thread.join(timeout=30)
        assert not thread.is_alive()
    # Every cancel call terminated with exactly one outcome; a token is
    # never delivered more than once no matter how many cancellers raced.
    total_calls = num_cancellers * len(cancel_targets)
    assert registry.requested == total_calls
    assert registry.delivered + registry.unknown <= total_calls
    assert registry.delivered <= num_requests
    assert registry.in_flight() == 0
    delivered = sum(1 for token in tokens if token.cancelled)
    assert delivered == registry.delivered
