"""Route-planning tests: budgets, preference order, and cost estimates."""

from __future__ import annotations

import pytest

from repro.aqp.online_agg import OnlineAggregationEngine
from repro.config import SamplingConfig, VerdictConfig
from repro.core.engine import VerdictEngine
from repro.db.catalog import Catalog
from repro.errors import ServiceError
from repro.serve.planner import QueryPlanner, Route, ServiceBudget
from repro.workloads.synthetic import make_sales_table


@pytest.fixture()
def planner_setup():
    table = make_sales_table(num_rows=2_000, num_weeks=52, seed=9)
    catalog = Catalog()
    catalog.add_table(table, fact=True)
    aqp = OnlineAggregationEngine(
        catalog, sampling=SamplingConfig(sample_ratio=0.25, num_batches=4, seed=2)
    )
    engine = VerdictEngine(catalog, aqp, config=VerdictConfig(learn_length_scales=False))
    return engine, QueryPlanner(engine)


def plan_routes(planner, engine, sql, budget):
    parsed, check = engine.check(sql)
    return [d.route for d in planner.plan(parsed, check, budget)]


class TestServiceBudget:
    def test_exact_budget(self):
        budget = ServiceBudget.exact()
        assert budget.requires_exact
        assert budget.error_met(0.0)
        assert not budget.error_met(0.001)

    def test_interactive_budget(self):
        budget = ServiceBudget.interactive(0.05)
        assert not budget.requires_exact
        assert budget.error_met(0.04)
        assert not budget.error_met(0.06)

    def test_no_error_budget_accepts_anything(self):
        assert ServiceBudget().error_met(10.0)

    def test_invalid_budgets_rejected(self):
        with pytest.raises(ServiceError):
            ServiceBudget(max_relative_error=-0.1)
        with pytest.raises(ServiceError):
            ServiceBudget(max_latency_s=0.0)


class TestRoutePlanning:
    def test_exact_budget_plans_exact_only(self, planner_setup):
        engine, planner = planner_setup
        routes = plan_routes(
            planner, engine, "SELECT COUNT(*) FROM sales", ServiceBudget.exact()
        )
        assert routes == [Route.EXACT]

    def test_cold_synopsis_plans_online_agg_then_exact(self, planner_setup):
        engine, planner = planner_setup
        routes = plan_routes(
            planner,
            engine,
            "SELECT AVG(revenue) FROM sales WHERE week >= 1 AND week <= 20",
            ServiceBudget.interactive(0.1),
        )
        assert routes == [Route.ONLINE_AGG, Route.EXACT]

    def test_warm_synopsis_plans_learned_first(self, planner_setup):
        engine, planner = planner_setup
        for low in (1, 15, 30):
            sql = f"SELECT AVG(revenue) FROM sales WHERE week >= {low} AND week <= {low + 14}"
            parsed, _ = engine.check(sql)
            engine.record(parsed, engine.aqp.final_answer(parsed))
        routes = plan_routes(
            planner,
            engine,
            "SELECT AVG(revenue) FROM sales WHERE week >= 5 AND week <= 40",
            ServiceBudget.interactive(0.1),
        )
        # Online aggregation stays planned as the inference-error fallback;
        # the service skips it whenever the learned route answered (its
        # improved bound dominates the raw bound, Theorem 1).
        assert routes == [Route.LEARNED, Route.ONLINE_AGG, Route.EXACT]

    def test_unsupported_query_never_plans_learned(self, planner_setup):
        engine, planner = planner_setup
        routes = plan_routes(
            planner,
            engine,
            "SELECT MAX(revenue) FROM sales WHERE week >= 1 AND week <= 20",
            ServiceBudget.interactive(0.1),
        )
        assert Route.LEARNED not in routes
        assert routes[-1] is Route.EXACT

    def test_estimates_order_cheap_to_expensive(self, planner_setup):
        engine, planner = planner_setup
        parsed, check = engine.check(
            "SELECT AVG(revenue) FROM sales WHERE week >= 1 AND week <= 20"
        )
        decisions = planner.plan(parsed, check, ServiceBudget.interactive(0.1))
        costs = [d.estimated_seconds for d in decisions]
        assert costs == sorted(costs)
        # The exact fallback pays a full-table scan; approximations pay one
        # sample batch.
        assert costs[-1] > costs[0]

    def test_synopsis_snippet_counts_respect_table(self, planner_setup):
        engine, planner = planner_setup
        assert planner.synopsis_snippets_for("sales") == 0
        parsed, _ = engine.check(
            "SELECT AVG(revenue) FROM sales WHERE week >= 1 AND week <= 30"
        )
        engine.record(parsed, engine.aqp.final_answer(parsed))
        assert planner.synopsis_snippets_for("sales") > 0
        assert planner.synopsis_snippets_for("other_table") == 0
