"""Unit tests for the Verdict engine facade (Algorithms 1 and 2)."""

import numpy as np
import pytest

from repro.aqp.online_agg import OnlineAggregationEngine
from repro.config import VerdictConfig
from repro.core.engine import VerdictEngine
from repro.core.snippet import AggregateKind
from repro.db.schema import measure
from repro.sqlparser.parser import parse_query
from tests.conftest import train_verdict

TRAINING_QUERIES = [
    "SELECT AVG(revenue) FROM sales WHERE week >= 1 AND week <= 12",
    "SELECT AVG(revenue) FROM sales WHERE week >= 8 AND week <= 20",
    "SELECT AVG(revenue) FROM sales WHERE week >= 16 AND week <= 30",
    "SELECT AVG(revenue) FROM sales WHERE week >= 25 AND week <= 40",
    "SELECT AVG(revenue) FROM sales WHERE week >= 35 AND week <= 52",
    "SELECT COUNT(*) FROM sales WHERE week >= 1 AND week <= 20",
    "SELECT COUNT(*) FROM sales WHERE week >= 15 AND week <= 35",
    "SELECT COUNT(*) FROM sales WHERE week >= 30 AND week <= 52",
]


class TestCheckAndPassthrough:
    def test_check_parses_strings(self, verdict_setup):
        _, _, verdict, _ = verdict_setup
        parsed, check = verdict.check("SELECT COUNT(*) FROM sales WHERE week = 1")
        assert check.supported
        parsed2, check2 = verdict.check(parsed)
        assert parsed2 is parsed

    def test_unsupported_query_passes_through(self, verdict_setup):
        _, _, verdict, _ = verdict_setup
        answers = verdict.execute("SELECT MAX(revenue) FROM sales WHERE week <= 5")
        assert answers
        final = answers[-1]
        assert not final.supported
        assert final.unsupported_reasons
        estimate = final.scalar_estimate()
        assert estimate.value == estimate.raw_value
        assert not estimate.improved
        # Unsupported queries are never recorded in the synopsis.
        assert len(verdict.synopsis) == 0

    def test_supported_query_recorded(self, verdict_setup):
        _, _, verdict, _ = verdict_setup
        verdict.execute("SELECT AVG(revenue) FROM sales WHERE week <= 10", max_batches=2)
        assert len(verdict.synopsis) == 1
        keys = verdict.synopsis.keys()
        assert keys[0].kind is AggregateKind.AVG

    def test_sum_records_avg_and_freq_snippets(self, verdict_setup):
        _, _, verdict, _ = verdict_setup
        verdict.execute("SELECT SUM(revenue) FROM sales WHERE week <= 10", max_batches=1)
        kinds = {key.kind for key in verdict.synopsis.keys()}
        assert kinds == {AggregateKind.AVG, AggregateKind.FREQ}
        assert len(verdict.synopsis) == 2

    def test_group_by_records_one_snippet_per_group(self, verdict_setup):
        _, _, verdict, _ = verdict_setup
        answers = verdict.execute(
            "SELECT region, COUNT(*) FROM sales GROUP BY region", max_batches=1
        )
        groups = len(answers[-1].rows)
        assert len(verdict.synopsis) == groups

    def test_record_can_be_disabled(self, verdict_setup):
        _, _, verdict, _ = verdict_setup
        verdict.execute("SELECT COUNT(*) FROM sales", max_batches=1, record=False)
        assert len(verdict.synopsis) == 0


class TestImprovement:
    def test_theorem1_improved_error_never_exceeds_raw(self, verdict_setup):
        _, _, verdict, _ = verdict_setup
        train_verdict(verdict, TRAINING_QUERIES)
        test_queries = [
            "SELECT AVG(revenue) FROM sales WHERE week >= 10 AND week <= 25",
            "SELECT COUNT(*) FROM sales WHERE week >= 5 AND week <= 45",
            "SELECT SUM(revenue) FROM sales WHERE week >= 20 AND week <= 35",
        ]
        for sql in test_queries:
            for answer in verdict.execute(sql, max_batches=3):
                for row in answer.rows:
                    for estimate in row.estimates.values():
                        assert estimate.error <= estimate.raw_error + 1e-9

    def test_improvement_actually_tightens_bounds(self, verdict_setup):
        _, _, verdict, _ = verdict_setup
        train_verdict(verdict, TRAINING_QUERIES)
        answers = verdict.execute(
            "SELECT AVG(revenue) FROM sales WHERE week >= 12 AND week <= 28", max_batches=2
        )
        estimate = answers[-1].scalar_estimate()
        assert estimate.improved
        assert estimate.error < estimate.raw_error

    def test_improved_answer_closer_to_exact_on_average(self, verdict_setup):
        catalog, _, verdict, exact = verdict_setup
        train_verdict(verdict, TRAINING_QUERIES)
        raw_errors, improved_errors = [], []
        for low, high in [(5, 18), (11, 29), (22, 44), (31, 50), (8, 40)]:
            sql = f"SELECT AVG(revenue) FROM sales WHERE week >= {low} AND week <= {high}"
            truth = exact.execute(parse_query(sql)).scalar()
            answer = verdict.execute(sql, max_batches=1)[-1]
            estimate = answer.scalar_estimate()
            raw_errors.append(abs(estimate.raw_value - truth))
            improved_errors.append(abs(estimate.value - truth))
        assert np.mean(improved_errors) <= np.mean(raw_errors) + 1e-9

    def test_improvement_counts_and_stats(self, verdict_setup):
        _, _, verdict, _ = verdict_setup
        train_verdict(verdict, TRAINING_QUERIES)
        answer = verdict.execute(
            "SELECT AVG(revenue) FROM sales WHERE week >= 10 AND week <= 30", max_batches=1
        )[-1]
        assert answer.improvement_count() >= 1
        assert verdict.queries_processed >= 1
        assert verdict.total_overhead_seconds > 0
        assert verdict.synopsis_size() == len(verdict.synopsis)
        assert verdict.memory_footprint_bytes() > 0

    def test_overhead_is_small(self, verdict_setup):
        _, _, verdict, _ = verdict_setup
        train_verdict(verdict, TRAINING_QUERIES)
        answer = verdict.execute(
            "SELECT AVG(revenue) FROM sales WHERE week >= 10 AND week <= 30", max_batches=1
        )[-1]
        assert answer.overhead_seconds < 0.5  # well under the raw latency scale

    def test_run_does_not_record(self, verdict_setup):
        _, _, verdict, _ = verdict_setup
        size_before = len(verdict.synopsis)
        for _ in verdict.run("SELECT COUNT(*) FROM sales WHERE week <= 5"):
            break
        assert len(verdict.synopsis) == size_before


class TestTraining:
    def test_train_builds_models_and_prepared_state(self, verdict_setup):
        _, _, verdict, _ = verdict_setup
        train_verdict(verdict, TRAINING_QUERIES[:4])
        results = verdict.train(learn_length_scales_flag=False)
        assert results
        for key, learned in results.items():
            assert learned.key == key
            assert verdict.model_for(key).length_scales

    def test_model_override(self, verdict_setup):
        from repro.core.covariance import AggregateModel

        _, _, verdict, _ = verdict_setup
        train_verdict(verdict, TRAINING_QUERIES[:4])
        key = verdict.synopsis.keys()[0]
        verdict.set_model(key, AggregateModel(key=key, length_scales={"week": 1.0}))
        assert verdict.model_for(key).length_scales["week"] == 1.0

    def test_domains_include_measures_and_dimensions(self, verdict_setup):
        _, _, verdict, _ = verdict_setup
        domains = verdict.domains_for("sales")
        assert "week" in domains.numeric
        assert "revenue" in domains.numeric
        assert "region" in domains.categorical


class TestTrainingFastPath:
    """Skip logic, warm starts, and the snapshot/compute/apply phases."""

    def test_repeated_train_skips_when_nothing_changed(self, verdict_setup):
        _, _, verdict, _ = verdict_setup
        train_verdict(verdict, TRAINING_QUERIES[:4])
        first = verdict.train(learn_length_scales_flag=False)
        epoch = verdict.state_epoch
        again = verdict.train(learn_length_scales_flag=False)
        assert again == first
        assert verdict.state_epoch == epoch  # no state churn on the skip path

    def test_flag_change_defeats_the_skip(self, verdict_setup):
        _, _, verdict, _ = verdict_setup
        train_verdict(verdict, TRAINING_QUERIES[:4])
        verdict.train(learn_length_scales_flag=False)
        epoch = verdict.state_epoch
        verdict.train(learn_length_scales_flag=True)
        assert verdict.state_epoch > epoch

    def test_recording_defeats_the_skip(self, verdict_setup):
        _, _, verdict, _ = verdict_setup
        train_verdict(verdict, TRAINING_QUERIES[:4])
        verdict.train(learn_length_scales_flag=False)
        epoch = verdict.state_epoch
        parsed, _ = verdict.check(TRAINING_QUERIES[4])
        verdict.record(parsed, verdict.aqp.final_answer(parsed))
        verdict.train(learn_length_scales_flag=False)
        assert verdict.state_epoch > epoch

    def test_set_model_defeats_the_skip(self, verdict_setup):
        from repro.core.covariance import AggregateModel

        _, _, verdict, _ = verdict_setup
        train_verdict(verdict, TRAINING_QUERIES[:4])
        first = verdict.train(learn_length_scales_flag=True)
        key = verdict.synopsis.keys()[0]
        verdict.set_model(key, AggregateModel(key=key, length_scales={"week": 1.0}))
        second = verdict.train(learn_length_scales_flag=True)
        # Training overrides the injected model again.
        assert verdict.model_for(key).length_scales == second[key].length_scales
        assert first.keys() == second.keys()

    def test_second_train_warm_starts_from_learned_scales(self, verdict_setup):
        _, _, verdict, _ = verdict_setup
        train_verdict(verdict, TRAINING_QUERIES[:4], learn=True)
        snapshot = verdict.training_snapshot(True)
        learned_keys = [
            entry.key for entry in snapshot.entries if entry.warm_start is not None
        ]
        trained = verdict._learned
        assert any(t.optimized_attributes for t in trained.values()) == bool(
            learned_keys
        )
        for entry in snapshot.entries:
            if entry.warm_start is not None:
                assert entry.warm_start == dict(trained[entry.key].length_scales)

    def test_phased_training_matches_monolithic_train(self, sales_catalog, fast_sampling):
        from repro.aqp.online_agg import OnlineAggregationEngine
        from repro.config import VerdictConfig
        from repro.core.engine import VerdictEngine

        def build():
            aqp = OnlineAggregationEngine(sales_catalog, sampling=fast_sampling)
            config = VerdictConfig(learn_length_scales=True, learning_restarts=1)
            engine = VerdictEngine(sales_catalog, aqp, config=config)
            for sql in TRAINING_QUERIES[:4]:
                parsed, check = engine.check(sql)
                if check.supported:
                    engine.record(parsed, engine.aqp.final_answer(parsed))
            return engine

        monolithic = build()
        phased = build()
        expected = monolithic.train()
        snapshot = phased.training_snapshot()
        outcome = phased.compute_training(snapshot)
        actual = phased.apply_training(outcome)
        assert expected.keys() == actual.keys()
        for key in expected:
            assert expected[key].length_scales == actual[key].length_scales
        for key in monolithic._prepared:
            assert key in phased._prepared
            np.testing.assert_array_equal(
                monolithic._prepared[key].cho[0], phased._prepared[key].cho[0]
            )

    def test_stale_outcome_never_overwrites_a_newer_round(self, verdict_setup):
        _, _, verdict, _ = verdict_setup
        train_verdict(verdict, TRAINING_QUERIES[:4])
        old_snapshot = verdict.training_snapshot(False)
        old_outcome = verdict.compute_training(old_snapshot)
        # A newer round completes while the old one was (conceptually)
        # still computing.
        parsed, _ = verdict.check(TRAINING_QUERIES[4])
        verdict.record(parsed, verdict.aqp.final_answer(parsed))
        newer = verdict.train(learn_length_scales_flag=False)
        marker = verdict._trained_marker
        models = dict(verdict._models)
        returned = verdict.apply_training(old_outcome)
        assert returned.keys() == old_outcome.results.keys()
        assert verdict._trained_marker == marker  # nothing installed
        assert verdict._models == models
        assert verdict._last_training.keys() == newer.keys()

    def test_apply_drops_factorisations_dirtied_while_computing(self, verdict_setup):
        _, _, verdict, _ = verdict_setup
        train_verdict(verdict, TRAINING_QUERIES[:4])
        snapshot = verdict.training_snapshot(False)
        outcome = verdict.compute_training(snapshot)
        # A non-append mutation (the Appendix D adjustment) lands on every
        # key between compute and apply.
        verdict.synopsis.transform_all(lambda snippet: snippet)
        results = verdict.apply_training(outcome)
        assert results
        assert not verdict._prepared  # stale factors dropped, rebuilt lazily
        # And the next train must not be skipped (the synopsis moved on).
        assert not verdict.training_current(False)


class TestTimeBound:
    def test_time_bound_requires_engine(self, verdict_setup):
        _, _, verdict, _ = verdict_setup
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            verdict.execute_time_bound("SELECT COUNT(*) FROM sales", 1.0)

    def test_time_bound_execution(self, sales_catalog, fast_sampling):
        from repro.aqp.time_bound import TimeBoundEngine

        aqp = OnlineAggregationEngine(sales_catalog, sampling=fast_sampling)
        time_bound = TimeBoundEngine(
            sales_catalog, sampling=fast_sampling, sample_store=aqp.samples
        )
        verdict = VerdictEngine(
            sales_catalog,
            aqp,
            config=VerdictConfig(learn_length_scales=False),
            time_bound_engine=time_bound,
        )
        train_verdict(verdict, TRAINING_QUERIES[:4])
        answer = verdict.execute_time_bound(
            "SELECT AVG(revenue) FROM sales WHERE week >= 10 AND week <= 30", 2.0
        )
        estimate = answer.scalar_estimate()
        assert estimate.error <= estimate.raw_error + 1e-9


class TestDataAppend:
    def test_register_append_adjusts_snippets(self, small_sales_table, fast_sampling):
        from repro.db.catalog import Catalog
        from repro.workloads.synthetic import make_sales_table

        catalog = Catalog()
        catalog.add_table(small_sales_table, fact=True)
        aqp = OnlineAggregationEngine(catalog, sampling=fast_sampling)
        verdict = VerdictEngine(catalog, aqp, config=VerdictConfig(learn_length_scales=False))
        train_verdict(verdict, TRAINING_QUERIES[:4])
        before = {
            snippet.snippet_id: snippet
            for key in verdict.synopsis.keys()
            for snippet in verdict.synopsis.snippets_for(key)
        }
        rows_before = catalog.cardinality("sales")

        appended = make_sales_table(num_rows=1_000, num_weeks=52, seed=77, name="sales")
        shifted = appended.with_column(
            measure("revenue"), np.asarray(appended.column("revenue")) + 150.0
        )
        adjusted = verdict.register_append("sales", shifted)
        assert adjusted == len(before)
        assert catalog.cardinality("sales") == rows_before + 1_000
        after = {
            snippet.snippet_id: snippet
            for key in verdict.synopsis.keys()
            for snippet in verdict.synopsis.snippets_for(key)
        }
        for snippet_id, old in before.items():
            new = after[snippet_id]
            assert new.raw_error >= old.raw_error
            if old.key.kind is AggregateKind.AVG:
                assert new.raw_answer > old.raw_answer  # appended revenue is higher

    def test_register_append_without_adjustment(self, small_sales_table, fast_sampling):
        from repro.db.catalog import Catalog
        from repro.workloads.synthetic import make_sales_table

        catalog = Catalog()
        catalog.add_table(small_sales_table, fact=True)
        aqp = OnlineAggregationEngine(catalog, sampling=fast_sampling)
        verdict = VerdictEngine(catalog, aqp, config=VerdictConfig(learn_length_scales=False))
        train_verdict(verdict, TRAINING_QUERIES[:2])
        appended = make_sales_table(num_rows=500, num_weeks=52, seed=78, name="sales")
        adjusted = verdict.register_append("sales", appended, adjust=False)
        assert adjusted == 0
