"""Unit tests for the maximum-entropy inference (Section 3, Theorem 1)."""

import pytest

from repro.config import VerdictConfig
from repro.core.covariance import AggregateModel
from repro.core.inference import GaussianInference
from repro.core.regions import (
    AttributeDomains,
    NumericDomain,
    NumericRange,
    Region,
)
from repro.core.snippet import AggregateKind, Snippet, SnippetKey


@pytest.fixture()
def domains():
    return AttributeDomains(numeric={"x": NumericDomain("x", 0.0, 100.0, 0.1)})


@pytest.fixture()
def key():
    return SnippetKey(kind=AggregateKind.AVG, table="t", attribute="m")


@pytest.fixture()
def freq_key():
    return SnippetKey(kind=AggregateKind.FREQ, table="t")


def avg_snippet(key, low, high, answer, error=0.5):
    region = Region(numeric_ranges=(NumericRange("x", low, high),))
    return Snippet(key=key, region=region, raw_answer=answer, raw_error=error)


@pytest.fixture()
def inference():
    return GaussianInference(VerdictConfig())


@pytest.fixture()
def model(key):
    return AggregateModel(key=key, length_scales={"x": 20.0})


@pytest.fixture()
def past(key):
    # Smoothly varying answers over adjacent ranges.
    return [
        avg_snippet(key, 0, 20, 10.0),
        avg_snippet(key, 20, 40, 12.0),
        avg_snippet(key, 40, 60, 14.0),
        avg_snippet(key, 60, 80, 16.0),
    ]


class TestPrepare:
    def test_prepare_empty_returns_none(self, inference, key, model, domains):
        assert inference.prepare(key, [], model, domains) is None

    def test_prepare_holds_factorisation(self, inference, key, model, domains, past):
        prepared = inference.prepare(key, past, model, domains, synopsis_version=3)
        assert prepared is not None
        assert prepared.size == 4
        assert prepared.synopsis_version == 3
        assert prepared.sigma2 > 0
        assert prepared.observations.shape == (4,)


class TestInfer:
    def test_empty_synopsis_passes_raw_through(self, inference, key):
        new = avg_snippet(key, 10, 30, 11.0, error=1.0)
        result = inference.infer(None, new)
        assert result.model_answer == 11.0
        assert result.model_error == 1.0
        assert not result.improved

    def test_improved_error_never_exceeds_raw(self, inference, key, model, domains, past):
        prepared = inference.prepare(key, past, model, domains)
        for raw_error in (0.01, 0.5, 2.0, 10.0):
            new = avg_snippet(key, 30, 50, 13.5, error=raw_error)
            result = inference.infer(prepared, new)
            assert result.model_error <= raw_error + 1e-12

    def test_zero_raw_error_returns_exact(self, inference, key, model, domains, past):
        prepared = inference.prepare(key, past, model, domains)
        new = avg_snippet(key, 30, 50, 13.0, error=0.0)
        result = inference.infer(prepared, new)
        assert result.model_answer == 13.0
        assert result.model_error == 0.0

    def test_overlapping_past_pulls_answer_toward_trend(
        self, inference, key, model, domains, past
    ):
        prepared = inference.prepare(key, past, model, domains)
        # The raw answer is far off the smooth trend; a noisy raw answer gets
        # pulled toward the GP prediction (which is near 13 for range 30-50).
        new = avg_snippet(key, 30, 50, 20.0, error=4.0)
        result = inference.infer(prepared, new)
        assert result.model_answer < 20.0
        assert result.model_answer > 10.0
        assert result.model_error < 4.0

    def test_accurate_raw_answer_dominates(self, inference, key, model, domains, past):
        prepared = inference.prepare(key, past, model, domains)
        new = avg_snippet(key, 30, 50, 20.0, error=0.001)
        result = inference.infer(prepared, new)
        assert result.model_answer == pytest.approx(20.0, abs=0.1)

    def test_distant_range_keeps_raw_answer_weight(self, inference, key, domains, past):
        # With a short length scale, a far-away range is nearly independent of
        # the past, so the model-based answer stays close to the raw one.
        short_model = AggregateModel(key=key, length_scales={"x": 1.0})
        prepared = inference.prepare(key, past, short_model, domains)
        new = avg_snippet(key, 95, 100, 30.0, error=1.0)
        result = inference.infer(prepared, new)
        assert result.model_answer == pytest.approx(30.0, abs=1.5)

    def test_freq_inference_in_density_space(self, inference, freq_key, domains):
        model = AggregateModel(key=freq_key, length_scales={"x": 30.0})
        past = [
            Snippet(
                key=freq_key,
                region=Region(numeric_ranges=(NumericRange("x", 0, 20),)),
                raw_answer=0.2,
                raw_error=0.01,
            ),
            Snippet(
                key=freq_key,
                region=Region(numeric_ranges=(NumericRange("x", 20, 40),)),
                raw_answer=0.2,
                raw_error=0.01,
            ),
        ]
        prepared = inference.prepare(freq_key, past, model, domains)
        new = Snippet(
            key=freq_key,
            region=Region(numeric_ranges=(NumericRange("x", 10, 30),)),
            raw_answer=0.25,
            raw_error=0.05,
        )
        result = inference.infer(prepared, new)
        assert result.model_error <= new.raw_error
        # Data is uniform (density 0.01/unit); expect an answer near 0.2.
        assert 0.15 < result.model_answer < 0.27


class TestDirectEquivalence:
    def test_block_form_matches_direct_conditioning(self, key, model, domains, past):
        """Equations (11)/(12) must agree with Equations (4)/(5).

        The direct form is the uncalibrated reference, so the leave-one-out
        calibration is switched off for the comparison.
        """
        inference = GaussianInference(VerdictConfig(calibrate_model_variance=False))
        for low, high, answer, error in [(30, 50, 13.5, 0.7), (10, 15, 10.5, 0.3), (70, 90, 17.0, 2.0)]:
            new = avg_snippet(key, low, high, answer, error=error)
            prepared = inference.prepare(key, past, model, domains)
            block = inference.infer(prepared, new)
            direct = inference.infer_direct(key, past, new, model, domains)
            assert block.model_answer == pytest.approx(direct.model_answer, rel=1e-6, abs=1e-9)
            assert block.model_error == pytest.approx(direct.model_error, rel=1e-5, abs=1e-9)

    def test_direct_with_empty_past(self, inference, key, model, domains):
        new = avg_snippet(key, 0, 10, 5.0, error=0.4)
        result = inference.infer_direct(key, [], new, model, domains)
        assert result.model_answer == 5.0
        assert result.model_error == 0.4
