"""Unit tests for model validation (Appendix B)."""


from repro.core.inference import InferenceResult
from repro.core.snippet import AggregateKind
from repro.core.validation import validate_model_answer


def result(model_answer, model_error, raw_answer, raw_error):
    return InferenceResult(
        model_answer=model_answer,
        model_error=model_error,
        gp_mean=model_answer,
        gp_error=model_error,
        raw_answer=raw_answer,
        raw_error=raw_error,
        past_snippets_used=5,
    )


class TestLikelyRegion:
    def test_accepts_model_close_to_raw(self):
        decision = validate_model_answer(
            result(10.0, 0.2, 10.3, 0.5), AggregateKind.AVG
        )
        assert decision.accepted
        assert decision.improved_answer == 10.0
        assert decision.improved_error == 0.2

    def test_rejects_model_far_from_raw(self):
        # Raw error 0.5 at 99% confidence gives a likely region of about 1.29;
        # a 5-unit gap is far outside it.
        decision = validate_model_answer(
            result(10.0, 0.2, 15.0, 0.5), AggregateKind.AVG
        )
        assert not decision.accepted
        assert decision.improved_answer == 15.0
        assert decision.improved_error == 0.5
        assert "outside likely region" in decision.reason

    def test_halfwidth_scales_with_raw_error(self):
        tight = validate_model_answer(result(10.0, 0.2, 10.0, 0.5), AggregateKind.AVG)
        loose = validate_model_answer(result(10.0, 0.2, 10.0, 2.0), AggregateKind.AVG)
        assert loose.likely_region_halfwidth > tight.likely_region_halfwidth

    def test_higher_confidence_widens_region(self):
        borderline = result(10.0, 0.2, 11.2, 0.5)
        strict = validate_model_answer(borderline, AggregateKind.AVG, validation_confidence=0.9)
        relaxed = validate_model_answer(borderline, AggregateKind.AVG, validation_confidence=0.999)
        assert not strict.accepted
        assert relaxed.accepted

    def test_zero_raw_error_never_rejects_matching_model(self):
        decision = validate_model_answer(result(10.0, 0.0, 10.0, 0.0), AggregateKind.AVG)
        assert decision.accepted


class TestNegativeFreq:
    def test_negative_freq_rejected(self):
        decision = validate_model_answer(result(-0.01, 0.001, 0.02, 0.01), AggregateKind.FREQ)
        assert not decision.accepted
        assert decision.improved_answer == 0.02
        assert "negative FREQ" in decision.reason

    def test_negative_avg_is_allowed(self):
        decision = validate_model_answer(result(-5.0, 0.2, -5.1, 0.5), AggregateKind.AVG)
        assert decision.accepted

    def test_negative_freq_clipped_when_validation_disabled(self):
        decision = validate_model_answer(
            result(-0.01, 0.001, 0.02, 0.01), AggregateKind.FREQ, enabled=False
        )
        assert decision.accepted
        assert decision.improved_answer == 0.0


class TestDisabledValidation:
    def test_disabled_validation_always_accepts(self):
        decision = validate_model_answer(
            result(10.0, 0.2, 25.0, 0.5), AggregateKind.AVG, enabled=False
        )
        assert decision.accepted
        assert decision.improved_answer == 10.0
        assert decision.reason == "validation disabled"
