"""Unit tests for prior statistics and observation-space conversion."""

import pytest

from repro.core.prior import (
    answer_from_observation,
    error_from_observation,
    estimate_prior,
    observation_error,
    observation_value,
)
from repro.core.regions import (
    AttributeDomains,
    CategoricalDomain,
    NumericDomain,
    NumericRange,
    Region,
)
from repro.core.snippet import AggregateKind, Snippet, SnippetKey


@pytest.fixture()
def domains():
    return AttributeDomains(
        numeric={"x": NumericDomain("x", 0.0, 100.0, 0.1)},
        categorical={"c": CategoricalDomain("c", 4)},
    )


def avg_snippet(answer, low=0.0, high=10.0, error=0.5):
    key = SnippetKey(kind=AggregateKind.AVG, table="t", attribute="m")
    region = Region(numeric_ranges=(NumericRange("x", low, high),))
    return Snippet(key=key, region=region, raw_answer=answer, raw_error=error)


def freq_snippet(answer, low=0.0, high=10.0, error=0.01):
    key = SnippetKey(kind=AggregateKind.FREQ, table="t")
    region = Region(numeric_ranges=(NumericRange("x", low, high),))
    return Snippet(key=key, region=region, raw_answer=answer, raw_error=error)


class TestObservationSpace:
    def test_avg_is_identity(self, domains):
        snippet = avg_snippet(42.0, error=1.5)
        assert observation_value(snippet, domains) == 42.0
        assert observation_error(snippet, domains) == 1.5
        assert answer_from_observation(10.0, snippet, domains) == 10.0
        assert error_from_observation(2.0, snippet, domains) == 2.0

    def test_freq_scaled_by_volume_fraction(self, domains):
        snippet = freq_snippet(0.1, low=0.0, high=10.0, error=0.02)
        fraction = snippet.region.volume_fraction(domains)
        assert fraction == pytest.approx(0.1)
        assert observation_value(snippet, domains) == pytest.approx(1.0)
        assert observation_error(snippet, domains) == pytest.approx(0.2)

    def test_freq_round_trip(self, domains):
        snippet = freq_snippet(0.05, low=20.0, high=45.0)
        value = observation_value(snippet, domains)
        assert answer_from_observation(value, snippet, domains) == pytest.approx(0.05)
        error = observation_error(snippet, domains)
        assert error_from_observation(error, snippet, domains) == pytest.approx(snippet.raw_error)

    def test_uniform_freq_snippets_have_equal_density(self, domains):
        """Two FREQ snippets over ranges of different widths but with mass
        proportional to the width map to the same density observation."""
        narrow = freq_snippet(0.1, low=0.0, high=10.0)
        wide = freq_snippet(0.2, low=50.0, high=70.0)
        assert observation_value(narrow, domains) == pytest.approx(
            observation_value(wide, domains)
        )


class TestEstimatePrior:
    def test_empty(self, domains):
        prior = estimate_prior([], domains)
        assert prior.count == 0
        assert prior.variance > 0

    def test_avg_prior_mean_and_variance(self, domains):
        snippets = [avg_snippet(value) for value in (10.0, 12.0, 14.0)]
        prior = estimate_prior(snippets, domains)
        assert prior.mean == pytest.approx(12.0)
        assert prior.variance == pytest.approx(4.0)
        assert prior.count == 3

    def test_single_snippet_gets_positive_variance(self, domains):
        prior = estimate_prior([avg_snippet(50.0)], domains)
        assert prior.variance > 0

    def test_identical_answers_get_floor_variance(self, domains):
        snippets = [avg_snippet(5.0) for _ in range(4)]
        prior = estimate_prior(snippets, domains)
        assert prior.variance > 0

    def test_freq_prior_uses_densities(self, domains):
        snippets = [
            freq_snippet(0.1, low=0.0, high=10.0),
            freq_snippet(0.3, low=0.0, high=30.0),
        ]
        prior = estimate_prior(snippets, domains)
        assert prior.mean == pytest.approx(1.0)
