"""Unit tests for the shared dense linear algebra primitives."""

import numpy as np
import pytest
from scipy.linalg import cho_factor, cho_solve

from repro.core import linalg
from repro.errors import InferenceError


def random_spd(size: int, seed: int = 0, noise: float = 1e-3) -> np.ndarray:
    rng = np.random.default_rng(seed)
    basis = rng.normal(size=(size, size))
    return basis @ basis.T + noise * size * np.eye(size)


class TestJitter:
    def test_jitter_value_scales_with_mean_diagonal(self):
        diagonal = np.array([100.0, 300.0])
        assert linalg.jitter_value(diagonal, 1e-6) == pytest.approx(2e-4)

    def test_jitter_value_floor_at_one(self):
        diagonal = np.array([1e-12, 1e-12])
        assert linalg.jitter_value(diagonal, 1e-6) == pytest.approx(1e-6)

    def test_add_jitter_in_place_and_returns_amount(self):
        matrix = np.eye(3) * 2.0
        amount = linalg.add_jitter(matrix, 0.5)
        assert amount == pytest.approx(0.5 * 2.0)
        np.testing.assert_allclose(np.diag(matrix), 3.0)

    def test_zero_jitter_is_noop(self):
        matrix = np.eye(2)
        assert linalg.add_jitter(matrix, 0.0) == 0.0
        np.testing.assert_allclose(matrix, np.eye(2))


class TestRobustCholesky:
    def test_matches_scipy_on_spd_matrix(self):
        matrix = random_spd(6, seed=1)
        cho, added = linalg.robust_cholesky(matrix)
        assert added == 0.0
        reference = cho_factor(matrix, lower=True)
        rhs = np.arange(6, dtype=np.float64)
        np.testing.assert_allclose(
            linalg.solve_factored(cho, rhs), cho_solve(reference, rhs), rtol=1e-12
        )

    def test_input_not_mutated(self):
        matrix = random_spd(4, seed=2)
        copy = matrix.copy()
        linalg.robust_cholesky(matrix, jitter=1e-6)
        np.testing.assert_array_equal(matrix, copy)

    def test_escalates_jitter_on_near_singular(self):
        # Rank-deficient: needs escalated jitter to factorise.
        vector = np.ones((5, 1))
        matrix = vector @ vector.T
        cho, added = linalg.robust_cholesky(matrix, jitter=1e-12)
        assert added > 0.0
        assert np.all(np.isfinite(cho[0]))

    def test_raises_on_hopeless_matrix(self):
        matrix = -np.eye(3) * 1e6
        with pytest.raises(InferenceError):
            linalg.robust_cholesky(matrix, jitter=1e-12, max_attempts=2)

    def test_blocked_solve_matches_column_solves(self):
        matrix = random_spd(8, seed=3)
        cho, _ = linalg.robust_cholesky(matrix)
        rng = np.random.default_rng(4)
        block = rng.normal(size=(8, 5))
        blocked = linalg.solve_factored(cho, block)
        for column in range(5):
            np.testing.assert_allclose(
                blocked[:, column],
                linalg.solve_factored(cho, block[:, column]),
                rtol=1e-10,
            )


class TestExtendCholesky:
    @pytest.mark.parametrize("n,k", [(5, 1), (8, 3), (2, 4)])
    def test_extension_matches_from_scratch_factorisation(self, n, k):
        full = random_spd(n + k, seed=n * 10 + k)
        base = full[:n, :n]
        cross = full[:n, n:]
        corner = full[n:, n:]
        cho_base, _ = linalg.robust_cholesky(base)
        extended, _schur = linalg.extend_cholesky(cho_base, cross, corner)
        scratch = cho_factor(full, lower=True)
        np.testing.assert_allclose(
            linalg.lower_triangle(extended),
            np.tril(scratch[0]),
            rtol=1e-9,
            atol=1e-12,
        )

    def test_extension_solves_match(self):
        full = random_spd(9, seed=11)
        cho_base, _ = linalg.robust_cholesky(full[:6, :6])
        extended, _ = linalg.extend_cholesky(cho_base, full[:6, 6:], full[6:, 6:])
        rhs = np.linspace(-1, 1, 9)
        direct = np.linalg.solve(full, rhs)
        np.testing.assert_allclose(linalg.solve_factored(extended, rhs), direct, rtol=1e-8)

    def test_vector_cross_accepted(self):
        full = random_spd(4, seed=12)
        cho_base, _ = linalg.robust_cholesky(full[:3, :3])
        extended, _ = linalg.extend_cholesky(
            cho_base, full[:3, 3], full[3:, 3:]
        )
        assert extended[0].shape == (4, 4)

    def test_raises_when_schur_not_positive_definite(self):
        base = np.eye(2)
        cho_base, _ = linalg.robust_cholesky(base)
        cross = np.array([[10.0], [0.0]])
        corner = np.array([[1.0]])  # 1 - 100 < 0
        with pytest.raises(np.linalg.LinAlgError):
            linalg.extend_cholesky(cho_base, cross, corner)

    def test_extend_inverse_diagonal_matches_direct_inverse(self):
        full = random_spd(10, seed=13)
        n = 7
        cho_base, _ = linalg.robust_cholesky(full[:n, :n])
        inverse_diag = np.diag(np.linalg.inv(full[:n, :n]))
        _, schur = linalg.extend_cholesky(cho_base, full[:n, n:], full[n:, n:])
        updated = linalg.extend_inverse_diagonal(
            cho_base, inverse_diag, full[:n, n:], schur
        )
        np.testing.assert_allclose(updated, np.diag(np.linalg.inv(full)), rtol=1e-8)


class TestRankOneRotations:
    def test_update_matches_refactorisation(self):
        matrix = random_spd(6, seed=21)
        vector = np.linspace(0.5, -0.5, 6)
        cho, _ = linalg.robust_cholesky(matrix)
        updated = linalg.cholesky_update(cho, vector)
        reference = cho_factor(matrix + np.outer(vector, vector), lower=True)
        np.testing.assert_allclose(
            linalg.lower_triangle(updated), np.tril(reference[0]), rtol=1e-9
        )

    def test_downdate_inverts_update(self):
        matrix = random_spd(5, seed=22)
        vector = np.array([0.3, -0.2, 0.1, 0.4, -0.1])
        cho, _ = linalg.robust_cholesky(matrix)
        round_trip = linalg.cholesky_downdate(linalg.cholesky_update(cho, vector), vector)
        np.testing.assert_allclose(
            linalg.lower_triangle(round_trip), linalg.lower_triangle(cho), rtol=1e-8
        )

    def test_downdate_rejects_indefinite_result(self):
        cho, _ = linalg.robust_cholesky(np.eye(3))
        with pytest.raises(np.linalg.LinAlgError):
            linalg.cholesky_downdate(cho, np.array([2.0, 0.0, 0.0]))


class TestHelpers:
    def test_symmetrize(self):
        matrix = np.array([[1.0, 2.0], [2.5, 3.0]])
        result = linalg.symmetrize(matrix)
        np.testing.assert_allclose(result, result.T)
        np.testing.assert_allclose(result[0, 1], 2.25)

    def test_log_determinant(self):
        matrix = random_spd(4, seed=31)
        cho, _ = linalg.robust_cholesky(matrix)
        _sign, expected = np.linalg.slogdet(matrix)
        assert linalg.log_determinant(cho) == pytest.approx(expected, rel=1e-10)
