"""Unit tests for snippet-answer covariance factors (Section 4)."""

import numpy as np
import pytest

from repro.core.covariance import AggregateModel, SnippetCovariance
from repro.core.regions import (
    AttributeDomains,
    CategoricalConstraint,
    CategoricalDomain,
    NumericDomain,
    NumericRange,
    Region,
)
from repro.core.snippet import AggregateKind, Snippet, SnippetKey


@pytest.fixture()
def domains():
    return AttributeDomains(
        numeric={"x": NumericDomain("x", 0.0, 10.0, 0.01)},
        categorical={"c": CategoricalDomain("c", 5)},
    )


@pytest.fixture()
def key():
    return SnippetKey(kind=AggregateKind.AVG, table="t", attribute="m")


def snippet(key, x_range=None, categories=None):
    numeric = (NumericRange("x", *x_range),) if x_range else ()
    categorical = (
        (CategoricalConstraint("c", frozenset(categories), 5),) if categories else ()
    )
    return Snippet(
        key=key,
        region=Region(numeric_ranges=numeric, categorical_constraints=categorical),
        raw_answer=0.0,
        raw_error=0.1,
    )


@pytest.fixture()
def covariance(domains, key):
    model = AggregateModel(key=key, length_scales={"x": 2.0})
    return SnippetCovariance(domains, model)


class TestFactors:
    def test_identical_regions_have_maximal_factor(self, covariance, key):
        a = snippet(key, (1.0, 3.0))
        matrix = covariance.factor_matrix([a, a])
        assert matrix[0, 1] == pytest.approx(matrix[0, 0])
        assert matrix[0, 0] <= 1.0 + 1e-12

    def test_overlap_increases_factor(self, covariance, key):
        base = snippet(key, (0.0, 4.0))
        overlapping = snippet(key, (2.0, 6.0))
        disjoint_near = snippet(key, (5.0, 9.0))
        matrix = covariance.factor_matrix([base, overlapping, disjoint_near])
        assert matrix[0, 1] > matrix[0, 2]

    def test_matrix_symmetric_and_consistent_with_vector(self, covariance, key):
        snippets = [snippet(key, (i, i + 2.0)) for i in range(0, 8, 2)]
        matrix = covariance.factor_matrix(snippets)
        np.testing.assert_allclose(matrix, matrix.T, rtol=1e-12)
        new = snippet(key, (3.0, 5.0))
        vector = covariance.factor_vector(snippets, new)
        full = covariance.factor_matrix(snippets + [new])
        np.testing.assert_allclose(vector, full[:-1, -1], rtol=1e-10)
        assert covariance.self_factor(new) == pytest.approx(full[-1, -1])

    def test_matrix_positive_semidefinite(self, covariance, key, rng):
        snippets = []
        for _ in range(20):
            start = rng.uniform(0, 8)
            snippets.append(snippet(key, (start, start + rng.uniform(0.2, 2.0))))
        matrix = covariance.factor_matrix(snippets)
        eigenvalues = np.linalg.eigvalsh(matrix)
        assert eigenvalues.min() > -1e-8

    def test_unconstrained_region_uses_full_domain(self, covariance, key):
        full = snippet(key, None)
        narrow = snippet(key, (4.0, 5.0))
        matrix = covariance.factor_matrix([full, narrow])
        # A narrow range overlaps the full domain, so the cross factor is
        # positive, and the implied correlation never exceeds one.
        assert matrix[0, 1] > 0
        correlation = matrix[0, 1] / np.sqrt(matrix[0, 0] * matrix[1, 1])
        assert correlation <= 1.0 + 1e-9

    def test_empty_input(self, covariance):
        assert covariance.factor_matrix([]).shape == (0, 0)


class TestCategoricalFactors:
    def test_same_category_positive_disjoint_zero(self, covariance, key):
        east = snippet(key, (0.0, 5.0), categories={"east"})
        east_too = snippet(key, (0.0, 5.0), categories={"east"})
        west = snippet(key, (0.0, 5.0), categories={"west"})
        matrix = covariance.factor_matrix([east, east_too, west])
        assert matrix[0, 1] > 0
        assert matrix[0, 2] == pytest.approx(0.0)

    def test_unconstrained_categorical_shares_with_constrained(self, covariance, key):
        every = snippet(key, (0.0, 5.0))
        east = snippet(key, (0.0, 5.0), categories={"east"})
        matrix = covariance.factor_matrix([every, east])
        assert matrix[0, 1] > 0
        # The factor with a single category out of 5 is 1/5 of the aligned case.
        assert matrix[0, 1] == pytest.approx(matrix[1, 1] / 5.0, rel=1e-6)

    def test_partial_overlap(self, covariance, key):
        ab = snippet(key, (0.0, 5.0), categories={"a", "b"})
        bc = snippet(key, (0.0, 5.0), categories={"b", "c"})
        matrix = covariance.factor_matrix([ab, bc])
        # Same numeric range; categorical factor is 1/4 for the pair versus
        # 2/4 for each snippet with itself, so the cross factor is half the
        # diagonal one.
        assert matrix[0, 1] == pytest.approx(matrix[0, 0] / 2.0, rel=1e-6)


class TestVectorizedCategoricalFactor:
    """The membership-matrix path must match pairwise intersection_size."""

    @staticmethod
    def _random_constraint(rng, universe, domain_size):
        if rng.random() < 0.25:
            return CategoricalConstraint(name="c", values=None, domain_size=domain_size)
        count = int(rng.integers(0, len(universe)))
        chosen = rng.choice(len(universe), size=count, replace=False)
        return CategoricalConstraint(
            name="c",
            values=frozenset(universe[i] for i in chosen),
            domain_size=domain_size,
        )

    def test_matches_pairwise_reference(self):
        from repro.core.covariance import _intersection_counts

        rng = np.random.default_rng(17)
        universe = [f"v{i}" for i in range(9)] + [3, 7.5]
        for _ in range(100):
            rows = [
                self._random_constraint(rng, universe, 11)
                for _ in range(int(rng.integers(1, 7)))
            ]
            cols = [
                self._random_constraint(rng, universe, 11)
                for _ in range(int(rng.integers(1, 7)))
            ]
            counts = _intersection_counts(rows, cols)
            for i, first in enumerate(rows):
                for j, second in enumerate(cols):
                    assert counts[i, j] == first.intersection_size(second)

    def test_factor_diagonal_self_intersection_is_the_size(self, domains, key):
        constrained = snippet(key, (0.0, 2.0), categories={"a", "b"})
        unconstrained = snippet(key, (0.0, 2.0))
        covariance = SnippetCovariance(domains, AggregateModel(key=key))
        diagonal = covariance.factor_diagonal([constrained, unconstrained])
        matrix = covariance.factor_matrix([constrained, unconstrained])
        assert diagonal == pytest.approx(np.diag(matrix))


class TestAggregateModel:
    def test_length_scale_fallback_to_domain_width(self, domains, key):
        model = AggregateModel(key=key)
        assert model.length_scale("x", domains) == pytest.approx(10.0)

    def test_with_length_scales_merges(self, key):
        model = AggregateModel(key=key, length_scales={"x": 1.0})
        updated = model.with_length_scales({"y": 2.0})
        assert updated.length_scales == {"x": 1.0, "y": 2.0}

    def test_unknown_attribute_raises(self, domains, key):
        from repro.errors import InferenceError

        model = AggregateModel(key=key)
        with pytest.raises(InferenceError):
            model.length_scale("missing", domains)

    def test_longer_scale_means_higher_cross_factor(self, domains, key):
        near = snippet(key, (0.0, 1.0))
        far = snippet(key, (6.0, 7.0))
        short = SnippetCovariance(domains, AggregateModel(key=key, length_scales={"x": 0.5}))
        long = SnippetCovariance(domains, AggregateModel(key=key, length_scales={"x": 8.0}))
        assert long.factor_matrix([near, far])[0, 1] > short.factor_matrix([near, far])[0, 1]
