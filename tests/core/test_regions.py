"""Unit tests for attribute domains, regions, and the region builder."""

import pytest

from repro.core.regions import (
    AttributeDomains,
    CategoricalConstraint,
    CategoricalDomain,
    NumericDomain,
    Region,
    RegionBuilder,
)
from repro.errors import ReproError
from repro.sqlparser.parser import parse_query


@pytest.fixture()
def domains():
    return AttributeDomains(
        numeric={
            "week": NumericDomain("week", 1.0, 52.0, 1.0),
            "age": NumericDomain("age", 18.0, 80.0, 0.5),
        },
        categorical={"region": CategoricalDomain("region", 8)},
    )


@pytest.fixture()
def builder(domains):
    return RegionBuilder(domains)


def where_of(sql: str):
    return parse_query(sql).where


class TestDomains:
    def test_from_table(self, tiny_table):
        domains = AttributeDomains.from_table(tiny_table)
        assert "week" in domains.numeric
        assert "revenue" in domains.numeric
        assert "region" in domains.categorical
        assert domains.categorical["region"].size == 2
        week = domains.numeric["week"]
        assert week.low == 1.0 and week.high == 3.0
        assert week.resolution > 0

    def test_from_table_excludes_keys(self, star_catalog):
        domains = AttributeDomains.from_table(star_catalog.table("orders"))
        assert "store_id" not in domains.numeric
        assert "day" in domains.numeric

    def test_default_length_scales_are_domain_widths(self, domains):
        scales = domains.default_length_scales()
        assert scales["week"] == pytest.approx(51.0)
        assert scales["age"] == pytest.approx(62.0)

    def test_merged_with(self, domains):
        other = AttributeDomains(numeric={"price": NumericDomain("price", 0, 10, 0.1)})
        merged = domains.merged_with(other)
        assert merged.has_attribute("price")
        assert merged.has_attribute("week")

    def test_invalid_domains_rejected(self):
        with pytest.raises(ReproError):
            NumericDomain("x", 5.0, 1.0, 0.1)
        with pytest.raises(ReproError):
            NumericDomain("x", 0.0, 1.0, 0.0)
        with pytest.raises(ReproError):
            CategoricalDomain("c", 0)


class TestCategoricalConstraint:
    def test_intersection_sizes(self):
        full = CategoricalConstraint("c", None, 10)
        small = CategoricalConstraint("c", frozenset({"a", "b"}), 10)
        other = CategoricalConstraint("c", frozenset({"b", "z"}), 10)
        assert full.intersection_size(full) == 10
        assert full.intersection_size(small) == 2
        assert small.intersection_size(full) == 2
        assert small.intersection_size(other) == 1
        assert small.size == 2 and full.size == 10


class TestRegionBuilder:
    def test_range_predicates(self, builder):
        region = builder.build(where_of("SELECT COUNT(*) FROM t WHERE week >= 5 AND week <= 10"))
        ranges = region.numeric_by_name()
        assert ranges["week"].low == 5 and ranges["week"].high == 10
        assert region.residual == frozenset()

    def test_unconstrained_attributes_are_not_listed(self, builder):
        region = builder.build(where_of("SELECT COUNT(*) FROM t WHERE week >= 5"))
        assert "age" not in region.numeric_by_name()
        assert region.constrained_attributes() == {"week"}

    def test_equality_expands_to_resolution(self, builder, domains):
        region = builder.build(where_of("SELECT COUNT(*) FROM t WHERE week = 7"))
        week_range = region.numeric_by_name()["week"]
        assert week_range.width == pytest.approx(domains.numeric["week"].resolution)
        assert week_range.midpoint == pytest.approx(7.0)

    def test_between_and_in_numeric(self, builder):
        region = builder.build(
            where_of("SELECT COUNT(*) FROM t WHERE age BETWEEN 30 AND 40 AND week IN (2, 8, 5)")
        )
        assert region.numeric_by_name()["age"].low == 30
        assert region.numeric_by_name()["week"].low == 2
        assert region.numeric_by_name()["week"].high == 8

    def test_categorical_equality_and_in(self, builder):
        region = builder.build(
            where_of("SELECT COUNT(*) FROM t WHERE region IN ('a', 'b') AND week >= 1")
        )
        constraint = region.categorical_by_name()["region"]
        assert constraint.values == frozenset({"a", "b"})
        single = builder.build(where_of("SELECT COUNT(*) FROM t WHERE region = 'a'"))
        assert single.categorical_by_name()["region"].values == frozenset({"a"})

    def test_contradictory_range_collapses(self, builder):
        region = builder.build(
            where_of("SELECT COUNT(*) FROM t WHERE week >= 40 AND week <= 10")
        )
        week_range = region.numeric_by_name()["week"]
        assert week_range.width > 0  # collapsed to a resolution-wide sliver

    def test_unrepresentable_predicates_become_residual(self, builder):
        region = builder.build(
            where_of("SELECT COUNT(*) FROM t WHERE week = 1 OR age >= 30")
        )
        assert region.residual  # disjunction cannot be a region
        like = builder.build(where_of("SELECT COUNT(*) FROM t WHERE region LIKE 'a%'"))
        assert like.residual

    def test_unknown_column_goes_to_residual(self, builder):
        region = builder.build(where_of("SELECT COUNT(*) FROM t WHERE unknown_col >= 3"))
        assert any("unknown_col" in item or "ColumnRef" in item for item in region.residual)

    def test_none_predicate_gives_empty_region(self, builder):
        region = builder.build(None)
        assert region.numeric_ranges == ()
        assert region.categorical_constraints == ()


class TestVolume:
    def test_volume_fraction_in_unit_interval(self, builder, domains):
        region = builder.build(
            where_of("SELECT COUNT(*) FROM t WHERE week >= 1 AND week <= 26 AND region = 'a'")
        )
        fraction = region.volume_fraction(domains)
        expected = (26 - 1) / 51.0 * (1 / 8)
        assert fraction == pytest.approx(expected, rel=1e-6)
        assert 0 < fraction <= 1

    def test_empty_region_has_fraction_one(self, domains):
        assert Region().volume_fraction(domains) == 1.0

    def test_volume_constrained_only(self, builder, domains):
        region = builder.build(where_of("SELECT COUNT(*) FROM t WHERE week >= 10 AND week <= 20"))
        assert region.volume(domains) == pytest.approx(10.0)
