"""Unit tests for correlation-parameter learning (Appendix A)."""


import numpy as np
import pytest

import repro.core.learning as learning_module
from repro.config import VerdictConfig
from repro.core.learning import (
    LikelihoodWorkspace,
    constrained_numeric_attributes,
    learn_length_scales,
    negative_log_likelihood,
)
from repro.workloads.synthetic import make_gp_snippets, make_gp_snippets_multi


class TestLikelihood:
    def test_true_scale_beats_badly_wrong_scale(self):
        snippets, domains, key = make_gp_snippets(
            num_snippets=60, true_length_scale=1.5, seed=3
        )
        nll_true = negative_log_likelihood({"x": 1.5}, key, snippets, domains)
        nll_tiny = negative_log_likelihood({"x": 0.01}, key, snippets, domains)
        assert nll_true < nll_tiny

    def test_too_few_snippets_returns_zero(self):
        snippets, domains, key = make_gp_snippets(num_snippets=1, true_length_scale=1.0, seed=0)
        assert negative_log_likelihood({"x": 1.0}, key, snippets, domains) == 0.0

    def test_constrained_attributes_detected(self):
        snippets, domains, key = make_gp_snippets(num_snippets=5, true_length_scale=1.0, seed=1)
        assert constrained_numeric_attributes(snippets, domains) == ["x"]


class TestLearnLengthScales:
    def test_recovers_roughly_true_scale(self):
        """Figure 7: the estimate should be of the right order of magnitude."""
        true_scale = 2.0
        snippets, domains, key = make_gp_snippets(
            num_snippets=80, true_length_scale=true_scale, seed=7
        )
        learned = learn_length_scales(
            key, snippets, domains, VerdictConfig(learning_restarts=2, max_learning_snippets=80)
        )
        estimate = learned.length_scales["x"]
        assert 0.3 * true_scale < estimate < 3.5 * true_scale
        assert learned.optimized_attributes == ("x",)
        assert learned.sigma2 > 0

    def test_more_snippets_do_not_hurt(self):
        """The likelihood at the learned scale should beat the default scale."""
        snippets, domains, key = make_gp_snippets(
            num_snippets=60, true_length_scale=1.0, seed=9
        )
        learned = learn_length_scales(
            key, snippets, domains, VerdictConfig(learning_restarts=1, max_learning_snippets=60)
        )
        default_scales = domains.default_length_scales()
        nll_default = negative_log_likelihood(default_scales, key, snippets, domains)
        nll_learned = negative_log_likelihood(learned.length_scales, key, snippets, domains)
        assert nll_learned <= nll_default + 1e-6

    def test_learning_disabled_returns_defaults(self):
        snippets, domains, key = make_gp_snippets(num_snippets=30, true_length_scale=1.0, seed=2)
        config = VerdictConfig(learn_length_scales=False)
        learned = learn_length_scales(key, snippets, domains, config)
        assert learned.length_scales == domains.default_length_scales()
        assert learned.optimized_attributes == ()
        assert not learned.converged

    def test_too_few_snippets_returns_defaults(self):
        snippets, domains, key = make_gp_snippets(num_snippets=2, true_length_scale=1.0, seed=4)
        learned = learn_length_scales(key, snippets, domains, VerdictConfig())
        assert learned.length_scales == domains.default_length_scales()

    def test_as_model(self):
        snippets, domains, key = make_gp_snippets(num_snippets=10, true_length_scale=1.0, seed=5)
        learned = learn_length_scales(key, snippets, domains, VerdictConfig(learn_length_scales=False))
        model = learned.as_model()
        assert model.key == key
        assert model.length_scales == learned.length_scales


class TestFastPath:
    """The LikelihoodWorkspace objective and the analytic-gradient optimiser."""

    def test_workspace_nll_matches_reference_on_fig7_snippets(self):
        snippets, domains, key = make_gp_snippets(
            num_snippets=60, true_length_scale=1.5, seed=7
        )
        workspace = LikelihoodWorkspace(key, snippets, domains)
        for theta in np.log([0.2, 1.0, 1.5, 5.0]):
            scale = float(np.exp(theta))
            reference = negative_log_likelihood({"x": scale}, key, snippets, domains)
            assert abs(workspace.nll([theta]) - reference) <= 1e-12 * max(
                1.0, abs(reference)
            )

    def test_fast_and_legacy_paths_learn_the_same_scales(self):
        snippets, domains, key = make_gp_snippets_multi(
            60,
            {"x0": 2.0, "x1": 1.0},
            categorical_sizes={"region": 6},
            seed=13,
            noise_std=0.15,
        )
        fast_config = VerdictConfig(learning_restarts=2, max_learning_snippets=60)
        fast = learn_length_scales(key, snippets, domains, fast_config)
        legacy = learn_length_scales(
            key, snippets, domains, fast_config.with_options(learning_fast_path=False)
        )
        for name in fast.optimized_attributes:
            assert fast.length_scales[name] == pytest.approx(
                legacy.length_scales[name], rel=0.01
            )

    def test_workspace_handles_fewer_than_two_snippets(self):
        snippets, domains, key = make_gp_snippets(
            num_snippets=1, true_length_scale=1.0, seed=0
        )
        workspace = LikelihoodWorkspace(key, snippets, domains)
        value, gradient = workspace.nll_and_grad([0.0])
        assert value == 0.0
        assert np.all(gradient == 0.0)

    def test_warm_start_converges_to_the_same_optimum(self):
        snippets, domains, key = make_gp_snippets(
            num_snippets=60, true_length_scale=1.5, seed=9
        )
        config = VerdictConfig(learning_restarts=2, max_learning_snippets=60)
        cold = learn_length_scales(key, snippets, domains, config)
        warm = learn_length_scales(
            key, snippets, domains, config, warm_start=cold.length_scales
        )
        assert warm.length_scales["x"] == pytest.approx(
            cold.length_scales["x"], rel=1e-3
        )
        assert warm.log_likelihood >= cold.log_likelihood - 1e-9

    def test_warm_start_outside_bounds_is_clipped(self):
        snippets, domains, key = make_gp_snippets(
            num_snippets=30, true_length_scale=1.0, seed=4
        )
        config = VerdictConfig(learning_restarts=1, max_learning_snippets=30)
        learned = learn_length_scales(
            key, snippets, domains, config, warm_start={"x": 1e9}
        )
        width = domains.numeric["x"].width
        assert 0 < learned.length_scales["x"] <= 10.0 * width * (1 + 1e-9)


class TestLazyLogLikelihood:
    def test_no_learn_path_defers_the_likelihood_factorisation(self, monkeypatch):
        snippets, domains, key = make_gp_snippets(
            num_snippets=30, true_length_scale=1.0, seed=2
        )
        calls = {"count": 0}
        reference = learning_module.negative_log_likelihood

        def counting(*args, **kwargs):
            calls["count"] += 1
            return reference(*args, **kwargs)

        monkeypatch.setattr(learning_module, "negative_log_likelihood", counting)
        learned = learn_length_scales(
            key, snippets, domains, VerdictConfig(learn_length_scales=False)
        )
        assert calls["count"] == 0  # nothing paid up front
        first = learned.log_likelihood
        assert calls["count"] == 1
        assert first == learned.log_likelihood  # cached, not recomputed
        assert calls["count"] == 1
        expected = -reference(domains.default_length_scales(), key, snippets, domains)
        assert first == expected
