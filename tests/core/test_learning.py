"""Unit tests for correlation-parameter learning (Appendix A)."""


from repro.config import VerdictConfig
from repro.core.learning import (
    constrained_numeric_attributes,
    learn_length_scales,
    negative_log_likelihood,
)
from repro.workloads.synthetic import make_gp_snippets


class TestLikelihood:
    def test_true_scale_beats_badly_wrong_scale(self):
        snippets, domains, key = make_gp_snippets(
            num_snippets=60, true_length_scale=1.5, seed=3
        )
        nll_true = negative_log_likelihood({"x": 1.5}, key, snippets, domains)
        nll_tiny = negative_log_likelihood({"x": 0.01}, key, snippets, domains)
        assert nll_true < nll_tiny

    def test_too_few_snippets_returns_zero(self):
        snippets, domains, key = make_gp_snippets(num_snippets=1, true_length_scale=1.0, seed=0)
        assert negative_log_likelihood({"x": 1.0}, key, snippets, domains) == 0.0

    def test_constrained_attributes_detected(self):
        snippets, domains, key = make_gp_snippets(num_snippets=5, true_length_scale=1.0, seed=1)
        assert constrained_numeric_attributes(snippets, domains) == ["x"]


class TestLearnLengthScales:
    def test_recovers_roughly_true_scale(self):
        """Figure 7: the estimate should be of the right order of magnitude."""
        true_scale = 2.0
        snippets, domains, key = make_gp_snippets(
            num_snippets=80, true_length_scale=true_scale, seed=7
        )
        learned = learn_length_scales(
            key, snippets, domains, VerdictConfig(learning_restarts=2, max_learning_snippets=80)
        )
        estimate = learned.length_scales["x"]
        assert 0.3 * true_scale < estimate < 3.5 * true_scale
        assert learned.optimized_attributes == ("x",)
        assert learned.sigma2 > 0

    def test_more_snippets_do_not_hurt(self):
        """The likelihood at the learned scale should beat the default scale."""
        snippets, domains, key = make_gp_snippets(
            num_snippets=60, true_length_scale=1.0, seed=9
        )
        learned = learn_length_scales(
            key, snippets, domains, VerdictConfig(learning_restarts=1, max_learning_snippets=60)
        )
        default_scales = domains.default_length_scales()
        nll_default = negative_log_likelihood(default_scales, key, snippets, domains)
        nll_learned = negative_log_likelihood(learned.length_scales, key, snippets, domains)
        assert nll_learned <= nll_default + 1e-6

    def test_learning_disabled_returns_defaults(self):
        snippets, domains, key = make_gp_snippets(num_snippets=30, true_length_scale=1.0, seed=2)
        config = VerdictConfig(learn_length_scales=False)
        learned = learn_length_scales(key, snippets, domains, config)
        assert learned.length_scales == domains.default_length_scales()
        assert learned.optimized_attributes == ()
        assert not learned.converged

    def test_too_few_snippets_returns_defaults(self):
        snippets, domains, key = make_gp_snippets(num_snippets=2, true_length_scale=1.0, seed=4)
        learned = learn_length_scales(key, snippets, domains, VerdictConfig())
        assert learned.length_scales == domains.default_length_scales()

    def test_as_model(self):
        snippets, domains, key = make_gp_snippets(num_snippets=10, true_length_scale=1.0, seed=5)
        learned = learn_length_scales(key, snippets, domains, VerdictConfig(learn_length_scales=False))
        model = learned.as_model()
        assert model.key == key
        assert model.length_scales == learned.length_scales
