"""Unit tests for snippets and the query synopsis."""

import pytest

from repro.core.regions import NumericRange, Region
from repro.core.snippet import AggregateKind, Snippet, SnippetKey
from repro.core.synopsis import QuerySynopsis
from repro.errors import SynopsisError


def make_snippet(key: SnippetKey, low: float, high: float, answer: float = 1.0, error: float = 0.1):
    region = Region(numeric_ranges=(NumericRange("x", low, high),))
    return Snippet(key=key, region=region, raw_answer=answer, raw_error=error)


@pytest.fixture()
def avg_key():
    return SnippetKey(kind=AggregateKind.AVG, table="t", attribute="m")


@pytest.fixture()
def freq_key():
    return SnippetKey(kind=AggregateKind.FREQ, table="t")


class TestSnippetKey:
    def test_avg_requires_attribute(self):
        with pytest.raises(ValueError):
            SnippetKey(kind=AggregateKind.AVG, table="t")

    def test_freq_rejects_attribute(self):
        with pytest.raises(ValueError):
            SnippetKey(kind=AggregateKind.FREQ, table="t", attribute="m")

    def test_labels(self, avg_key, freq_key):
        assert "AVG(m)" in avg_key.label
        assert "FREQ(*)" in freq_key.label

    def test_keys_with_different_residuals_differ(self):
        base = SnippetKey(kind=AggregateKind.FREQ, table="t")
        other = SnippetKey(kind=AggregateKind.FREQ, table="t", residual=frozenset({"x"}))
        assert base != other


class TestSnippet:
    def test_negative_error_rejected(self, avg_key):
        with pytest.raises(ValueError):
            make_snippet(avg_key, 0, 1, error=-0.1)

    def test_with_adjustment(self, avg_key):
        snippet = make_snippet(avg_key, 0, 1, answer=10.0, error=0.3)
        adjusted = snippet.with_adjustment(answer_shift=1.0, extra_variance=0.16)
        assert adjusted.raw_answer == pytest.approx(11.0)
        assert adjusted.raw_error == pytest.approx((0.09 + 0.16) ** 0.5)
        with pytest.raises(ValueError):
            snippet.with_adjustment(0.0, -1.0)

    def test_with_identity(self, avg_key):
        snippet = make_snippet(avg_key, 0, 1)
        stored = snippet.with_identity(5, 7)
        assert stored.snippet_id == 5 and stored.sequence == 7


class TestSynopsis:
    def test_add_and_retrieve(self, avg_key, freq_key):
        synopsis = QuerySynopsis(capacity_per_key=10)
        synopsis.add(make_snippet(avg_key, 0, 1))
        synopsis.add(make_snippet(avg_key, 1, 2))
        synopsis.add(make_snippet(freq_key, 0, 1))
        assert synopsis.count(avg_key) == 2
        assert synopsis.count(freq_key) == 1
        assert synopsis.count() == 3
        assert len(synopsis) == 3
        assert set(synopsis.keys()) == {avg_key, freq_key}

    def test_capacity_evicts_least_recently_used(self, avg_key):
        synopsis = QuerySynopsis(capacity_per_key=3)
        stored = [synopsis.add(make_snippet(avg_key, i, i + 1, answer=i)) for i in range(3)]
        # Touch the oldest snippet so it becomes the most recently used.
        synopsis.mark_used(avg_key, [stored[0].snippet_id])
        synopsis.add(make_snippet(avg_key, 10, 11, answer=10))
        answers = [snippet.raw_answer for snippet in synopsis.snippets_for(avg_key)]
        # Snippet with answer 1 (the true LRU) was evicted; 0 survived.
        assert 0.0 in answers
        assert 1.0 not in answers
        assert len(answers) == 3

    def test_capacity_validation(self):
        with pytest.raises(SynopsisError):
            QuerySynopsis(capacity_per_key=0)

    def test_version_bumps_on_add_and_clear(self, avg_key):
        synopsis = QuerySynopsis()
        version = synopsis.version
        synopsis.add(make_snippet(avg_key, 0, 1))
        assert synopsis.version > version
        version = synopsis.version
        synopsis.mark_used(avg_key, [0])
        assert synopsis.version == version  # marking used does not invalidate
        synopsis.clear(avg_key)
        assert synopsis.version > version
        assert synopsis.count(avg_key) == 0

    def test_transform_adjusts_in_place(self, avg_key):
        synopsis = QuerySynopsis()
        synopsis.add(make_snippet(avg_key, 0, 1, answer=5.0, error=1.0))
        transformed = synopsis.transform(
            avg_key, lambda snippet: snippet.with_adjustment(2.0, 0.0)
        )
        assert transformed == 1
        assert synopsis.snippets_for(avg_key)[0].raw_answer == pytest.approx(7.0)

    def test_transform_cannot_change_key(self, avg_key, freq_key):
        synopsis = QuerySynopsis()
        synopsis.add(make_snippet(avg_key, 0, 1))

        def change_key(snippet):
            return Snippet(
                key=freq_key, region=snippet.region, raw_answer=0.1, raw_error=0.1
            )

        with pytest.raises(SynopsisError):
            synopsis.transform(avg_key, change_key)

    def test_transform_all(self, avg_key, freq_key):
        synopsis = QuerySynopsis()
        synopsis.add(make_snippet(avg_key, 0, 1))
        synopsis.add(make_snippet(freq_key, 0, 1))
        assert synopsis.transform_all(lambda s: s.with_adjustment(0.0, 0.0)) == 2

    def test_memory_footprint_is_small_and_grows(self, avg_key):
        synopsis = QuerySynopsis()
        empty = synopsis.memory_footprint_bytes()
        for i in range(50):
            synopsis.add(make_snippet(avg_key, i, i + 1))
        grown = synopsis.memory_footprint_bytes()
        assert grown > empty
        assert grown < 1_000_000  # far below retaining any input tuples

    def test_clear_all(self, avg_key, freq_key):
        synopsis = QuerySynopsis()
        synopsis.add(make_snippet(avg_key, 0, 1))
        synopsis.add(make_snippet(freq_key, 0, 1))
        synopsis.clear()
        assert synopsis.count() == 0
