"""Equivalence tests for the batched and incremental inference paths.

The acceptance bar for the batched/incremental refactor:

* batched group-by inference (:meth:`GaussianInference.infer_batch`) matches
  the legacy per-cell path (:meth:`GaussianInference.infer`) within 1e-8;
* a rank-k-extended Cholesky factor matches a from-scratch ``cho_factor`` of
  the same covariance matrix after appends;
* the engine produces identical answers with ``batched_inference`` on and
  off, and actually extends (rather than rebuilds) its prepared
  factorisations as queries are recorded.
"""

import numpy as np
import pytest
from scipy.linalg import cho_factor

from repro.aqp.online_agg import OnlineAggregationEngine
from repro.config import SamplingConfig, VerdictConfig
from repro.core import linalg
from repro.core.covariance import AggregateModel
from repro.core.engine import VerdictEngine
from repro.core.inference import GaussianInference
from repro.core.prior import observation_error
from repro.core.regions import AttributeDomains, NumericDomain, NumericRange, Region
from repro.core.snippet import AggregateKind, Snippet, SnippetKey
from repro.core.synopsis import QuerySynopsis

KEY = SnippetKey(kind=AggregateKind.AVG, table="t", attribute="m")
DOMAINS = AttributeDomains(numeric={"x": NumericDomain("x", 0.0, 100.0, 0.1)})
MODEL = AggregateModel(key=KEY, length_scales={"x": 25.0})


def snippet(low, high, answer, error=0.5):
    region = Region(numeric_ranges=(NumericRange("x", low, high),))
    return Snippet(key=KEY, region=region, raw_answer=answer, raw_error=error)


def synthetic_snippets(count, seed=0, error=0.5):
    rng = np.random.default_rng(seed)
    snippets = []
    for _ in range(count):
        low = float(rng.uniform(0, 90))
        high = float(min(low + rng.uniform(2, 25), 100.0))
        center = 0.5 * (low + high)
        answer = float(10.0 + 0.1 * center + rng.normal(0, 0.3))
        snippets.append(snippet(low, high, answer, error=error))
    return snippets


class TestBatchedEquivalence:
    @pytest.mark.parametrize("calibrate", [True, False])
    def test_batched_matches_scalar_within_1e_8(self, calibrate):
        inference = GaussianInference(VerdictConfig(calibrate_model_variance=calibrate))
        past = synthetic_snippets(24, seed=1)
        prepared = inference.prepare(KEY, past, MODEL, DOMAINS)
        news = synthetic_snippets(64, seed=2, error=0.8)

        batched = inference.infer_batch(prepared, news)
        assert len(batched) == len(news)
        for new, batch_result in zip(news, batched):
            scalar_result = inference.infer(prepared, new)
            assert batch_result.model_answer == pytest.approx(
                scalar_result.model_answer, rel=1e-8, abs=1e-10
            )
            assert batch_result.model_error == pytest.approx(
                scalar_result.model_error, rel=1e-8, abs=1e-10
            )
            assert batch_result.gp_mean == pytest.approx(
                scalar_result.gp_mean, rel=1e-8, abs=1e-10
            )
            assert batch_result.past_snippets_used == scalar_result.past_snippets_used

    def test_batched_with_empty_prepared_passes_raw_through(self):
        inference = GaussianInference()
        news = synthetic_snippets(5, seed=3)
        results = inference.infer_batch(None, news)
        for new, result in zip(news, results):
            assert result.model_answer == new.raw_answer
            assert result.model_error == new.raw_error
            assert result.past_snippets_used == 0

    def test_batched_empty_input(self):
        inference = GaussianInference()
        past = synthetic_snippets(4, seed=4)
        prepared = inference.prepare(KEY, past, MODEL, DOMAINS)
        assert inference.infer_batch(prepared, []) == []


class TestIncrementalExtension:
    def test_extended_factor_matches_from_scratch_cho_factor(self):
        inference = GaussianInference(VerdictConfig())
        base = synthetic_snippets(20, seed=5)
        appended = synthetic_snippets(6, seed=6)
        prepared = inference.prepare(KEY, base, MODEL, DOMAINS, synopsis_version=1)
        extended = inference.extend(prepared, appended, synopsis_version=2)
        assert extended is not None
        assert extended.size == 26
        assert extended.base_size == 20
        assert extended.appended_since_base == 6
        assert extended.synopsis_version == 2

        # Rebuild the same matrix (frozen sigma2 and jitter) from scratch.
        everything = base + appended
        factors = prepared.covariance.factor_matrix(everything)
        noise = np.array(
            [observation_error(s, DOMAINS) ** 2 for s in everything], dtype=np.float64
        )
        matrix = prepared.sigma2 * factors + np.diag(noise)
        matrix[np.diag_indices_from(matrix)] += prepared.jitter
        scratch = cho_factor(matrix, lower=True)
        np.testing.assert_allclose(
            linalg.lower_triangle(extended.cho), np.tril(scratch[0]), rtol=1e-8, atol=1e-10
        )

    def test_extended_inference_matches_frozen_sigma_rebuild(self):
        """Inference through the extended factor equals solving the rebuilt
        system directly (same sigma2), so the extension loses no accuracy."""
        inference = GaussianInference(VerdictConfig(calibrate_model_variance=False))
        base = synthetic_snippets(16, seed=7)
        appended = synthetic_snippets(4, seed=8)
        prepared = inference.prepare(KEY, base, MODEL, DOMAINS)
        extended = inference.extend(prepared, appended)
        new = snippet(40, 55, 15.0, error=1.0)
        result = inference.infer(extended, new)

        everything = base + appended
        factors = prepared.covariance.factor_matrix(everything)
        noise = np.array(
            [observation_error(s, DOMAINS) ** 2 for s in everything], dtype=np.float64
        )
        matrix = prepared.sigma2 * factors + np.diag(noise)
        matrix[np.diag_indices_from(matrix)] += prepared.jitter
        observations = np.array([s.raw_answer for s in everything])
        mean = observations.mean()
        cross = prepared.sigma2 * prepared.covariance.factor_matrix(
            everything, [new]
        ).ravel()
        gp_mean = mean + float(cross @ np.linalg.solve(matrix, observations - mean))
        assert result.gp_mean == pytest.approx(gp_mean, rel=1e-8)

    def test_extension_refreshes_calibration_and_inverse_diagonal(self):
        inference = GaussianInference(VerdictConfig(calibrate_model_variance=True))
        base = synthetic_snippets(12, seed=9)
        appended = synthetic_snippets(5, seed=10)
        prepared = inference.prepare(KEY, base, MODEL, DOMAINS)
        extended = inference.extend(prepared, appended)
        assert extended.inverse_diagonal is not None
        assert len(extended.inverse_diagonal) == 17
        assert extended.calibration >= 1.0
        # The maintained diagonal matches a from-scratch inverse.
        everything = base + appended
        factors = prepared.covariance.factor_matrix(everything)
        noise = np.array(
            [observation_error(s, DOMAINS) ** 2 for s in everything], dtype=np.float64
        )
        matrix = prepared.sigma2 * factors + np.diag(noise)
        matrix[np.diag_indices_from(matrix)] += prepared.jitter
        np.testing.assert_allclose(
            extended.inverse_diagonal, np.diag(np.linalg.inv(matrix)), rtol=1e-6
        )

    def test_extend_with_no_snippets_returns_same_object(self):
        inference = GaussianInference()
        prepared = inference.prepare(KEY, synthetic_snippets(5, seed=11), MODEL, DOMAINS)
        assert inference.extend(prepared, []) is prepared


class TestSynopsisChangeLog:
    def test_appends_tracked_per_key(self):
        synopsis = QuerySynopsis(capacity_per_key=10)
        base_version = synopsis.version
        first = synopsis.add(snippet(0, 10, 1.0))
        second = synopsis.add(snippet(10, 20, 2.0))
        delta = synopsis.changes_since(base_version)
        assert delta is not None
        assert delta.appended == {KEY: [first, second]}
        assert not delta.dirty

    def test_delta_excludes_already_seen_versions(self):
        synopsis = QuerySynopsis(capacity_per_key=10)
        synopsis.add(snippet(0, 10, 1.0))
        seen = synopsis.version
        third = synopsis.add(snippet(20, 30, 3.0))
        delta = synopsis.changes_since(seen)
        assert delta.appended == {KEY: [third]}

    def test_transform_marks_key_dirty(self):
        synopsis = QuerySynopsis(capacity_per_key=10)
        synopsis.add(snippet(0, 10, 1.0))
        seen = synopsis.version
        synopsis.add(snippet(10, 20, 2.0))
        synopsis.transform(KEY, lambda s: s.with_adjustment(0.5, 0.0))
        delta = synopsis.changes_since(seen)
        assert KEY in delta.dirty
        # Appends folded into the dirty key are not reported separately.
        assert KEY not in delta.appended

    def test_eviction_marks_key_dirty(self):
        synopsis = QuerySynopsis(capacity_per_key=2)
        synopsis.add(snippet(0, 10, 1.0))
        synopsis.add(snippet(10, 20, 2.0))
        seen = synopsis.version
        synopsis.add(snippet(20, 30, 3.0))  # evicts the oldest
        delta = synopsis.changes_since(seen)
        assert KEY in delta.dirty

    def test_clear_marks_all_keys_dirty(self):
        synopsis = QuerySynopsis(capacity_per_key=10)
        synopsis.add(snippet(0, 10, 1.0))
        seen = synopsis.version
        synopsis.clear()
        delta = synopsis.changes_since(seen)
        assert KEY in delta.dirty

    def test_too_old_version_returns_none(self):
        synopsis = QuerySynopsis(capacity_per_key=10, change_log_limit=4)
        for index in range(10):
            synopsis.add(snippet(index, index + 1, float(index)))
        assert synopsis.changes_since(0) is None
        recent = synopsis.version
        synopsis.add(snippet(50, 60, 5.0))
        assert synopsis.changes_since(recent) is not None

    def test_future_version_returns_none(self):
        synopsis = QuerySynopsis()
        assert synopsis.changes_since(99) is None

    def test_non_positive_change_log_limit_rejected(self):
        from repro.errors import SynopsisError

        with pytest.raises(SynopsisError):
            QuerySynopsis(change_log_limit=0)
        with pytest.raises(SynopsisError):
            QuerySynopsis(change_log_limit=-1)


TRAINING_QUERIES = [
    "SELECT AVG(revenue) FROM sales WHERE week >= 1 AND week <= 12",
    "SELECT AVG(revenue) FROM sales WHERE week >= 8 AND week <= 20",
    "SELECT AVG(revenue) FROM sales WHERE week >= 16 AND week <= 30",
    "SELECT AVG(revenue) FROM sales WHERE week >= 25 AND week <= 40",
    "SELECT COUNT(*) FROM sales WHERE week >= 1 AND week <= 20",
    "SELECT COUNT(*) FROM sales WHERE week >= 15 AND week <= 35",
]

TEST_QUERIES = [
    "SELECT region, AVG(revenue) FROM sales WHERE week >= 5 AND week <= 25 GROUP BY region",
    "SELECT region, SUM(revenue) FROM sales WHERE week >= 10 AND week <= 30 GROUP BY region",
    "SELECT category, COUNT(*) FROM sales WHERE week >= 12 AND week <= 28 GROUP BY category",
]


def build_engine(sales_catalog, config):
    aqp = OnlineAggregationEngine(
        sales_catalog, sampling=SamplingConfig(sample_ratio=0.2, num_batches=4, seed=3)
    )
    return VerdictEngine(sales_catalog, aqp, config=config)


class TestEngineBatchedPath:
    def test_batched_and_legacy_engines_agree(self, sales_catalog):
        base = VerdictConfig(learn_length_scales=False)
        engines = {
            "batched": build_engine(sales_catalog, base.with_options(batched_inference=True)),
            "legacy": build_engine(
                sales_catalog,
                base.with_options(batched_inference=False, incremental_updates=False),
            ),
        }
        answers = {}
        for label, engine in engines.items():
            for sql in TRAINING_QUERIES:
                engine.execute(sql, max_batches=2)
            engine.train()
            answers[label] = [
                engine.execute(sql, max_batches=2, record=False)[-1]
                for sql in TEST_QUERIES
            ]
        for batched_answer, legacy_answer in zip(answers["batched"], answers["legacy"]):
            assert len(batched_answer.rows) == len(legacy_answer.rows)
            for brow, lrow in zip(batched_answer.rows, legacy_answer.rows):
                assert brow.group_values == lrow.group_values
                for name, bcell in brow.estimates.items():
                    lcell = lrow.estimates[name]
                    assert bcell.value == pytest.approx(lcell.value, rel=1e-8, abs=1e-10)
                    assert bcell.error == pytest.approx(lcell.error, rel=1e-8, abs=1e-10)
                    assert bcell.improved == lcell.improved

    def test_recording_extends_instead_of_rebuilding(self, sales_catalog):
        # A generous rebuild ratio so the tiny base (one snippet) is allowed
        # to grow by extension instead of tripping the rebuild threshold.
        engine = build_engine(
            sales_catalog,
            VerdictConfig(
                learn_length_scales=False,
                min_past_snippets=1,
                incremental_rebuild_ratio=10.0,
            ),
        )
        queries = [
            "SELECT AVG(revenue) FROM sales WHERE week >= 1 AND week <= 15",
            "SELECT AVG(revenue) FROM sales WHERE week >= 10 AND week <= 25",
            "SELECT AVG(revenue) FROM sales WHERE week >= 20 AND week <= 35",
            "SELECT AVG(revenue) FROM sales WHERE week >= 30 AND week <= 45",
        ]
        for sql in queries:
            engine.execute(sql, max_batches=1)
        [key] = engine.synopsis.keys()
        prepared = engine._prepared_for(key)
        assert prepared is not None
        assert prepared.synopsis_version == engine.synopsis.version
        # The first query found an empty synopsis; later ones extended the
        # factorisation built after it rather than rebuilding from scratch.
        assert prepared.size > prepared.base_size
        assert prepared.appended_since_base >= 1

    def test_rebuild_threshold_forces_full_factorisation(self, sales_catalog):
        engine = build_engine(
            sales_catalog,
            VerdictConfig(learn_length_scales=False, incremental_rebuild_ratio=0.25),
        )
        for low in (1, 8, 15, 22, 29, 36):
            engine.execute(
                f"SELECT AVG(revenue) FROM sales WHERE week >= {low} AND week <= {low + 10}",
                max_batches=1,
            )
        [key] = engine.synopsis.keys()
        prepared = engine._prepared_for(key)
        # With a tight threshold the factorisation must have been rebuilt at
        # least once, resetting base_size near the full size.
        assert prepared.appended_since_base <= 0.25 * prepared.base_size + 1

    def test_train_resets_base(self, sales_catalog):
        engine = build_engine(sales_catalog, VerdictConfig(learn_length_scales=False))
        for sql in TRAINING_QUERIES:
            engine.execute(sql, max_batches=1)
        engine.train()
        for key in engine.synopsis.keys():
            prepared = engine._prepared_for(key)
            assert prepared.appended_since_base == 0
