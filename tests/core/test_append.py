"""Unit tests for the data-append adjustment (Appendix D, Lemma 3)."""

import numpy as np
import pytest

from repro.core.append import AppendAdjustment, append_adjustment, apply_append_adjustment
from repro.core.regions import NumericRange, Region
from repro.core.snippet import AggregateKind, Snippet, SnippetKey


def avg_snippet(answer=10.0, error=0.5):
    key = SnippetKey(kind=AggregateKind.AVG, table="t", attribute="m")
    region = Region(numeric_ranges=(NumericRange("x", 0, 1),))
    return Snippet(key=key, region=region, raw_answer=answer, raw_error=error)


class TestAppendAdjustment:
    def test_no_append_means_no_adjustment(self):
        adjustment = append_adjustment(np.array([1.0]), np.array([]), 100, 0)
        assert adjustment.answer_shift == 0.0
        assert adjustment.extra_variance == 0.0
        assert adjustment.appended_fraction == 0.0

    def test_lemma3_shift_and_inflation(self):
        old = np.array([10.0, 12.0, 8.0, 10.0])
        new = np.array([20.0, 22.0, 18.0, 20.0])
        adjustment = append_adjustment(old, new, old_count=900, new_count=100)
        ratio = 100 / 1000
        expected_shift = (new.mean() - old.mean()) * ratio
        assert adjustment.answer_shift == pytest.approx(expected_shift)
        expected_eta2 = new.var() + old.var()
        assert adjustment.extra_variance == pytest.approx(ratio**2 * expected_eta2)
        assert adjustment.appended_fraction == pytest.approx(ratio)

    def test_larger_append_means_larger_adjustment(self):
        old = np.array([10.0, 11.0, 9.0])
        new = np.array([20.0, 21.0, 19.0])
        small = append_adjustment(old, new, 950, 50)
        large = append_adjustment(old, new, 800, 200)
        assert abs(large.answer_shift) > abs(small.answer_shift)
        assert large.extra_variance > small.extra_variance

    def test_identical_distributions_mean_no_shift(self):
        values = np.array([5.0, 6.0, 4.0, 5.0])
        adjustment = append_adjustment(values, values, 500, 500)
        assert adjustment.answer_shift == pytest.approx(0.0)
        assert adjustment.extra_variance > 0.0  # uncertainty still grows

    def test_freq_kind_has_no_shift_but_inflates(self):
        adjustment = append_adjustment(
            np.array([]), np.array([]), 900, 100, kind=AggregateKind.FREQ
        )
        assert adjustment.answer_shift == 0.0
        assert adjustment.extra_variance > 0.0

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            append_adjustment(np.array([1.0]), np.array([1.0]), -1, 10)

    def test_validation_of_fields(self):
        with pytest.raises(ValueError):
            AppendAdjustment(answer_shift=0.0, extra_variance=-1.0, appended_fraction=0.1)
        with pytest.raises(ValueError):
            AppendAdjustment(answer_shift=0.0, extra_variance=0.0, appended_fraction=1.5)


class TestApplyAdjustment:
    def test_apply_shifts_answer_and_inflates_error(self):
        snippet = avg_snippet(answer=10.0, error=0.5)
        adjustment = AppendAdjustment(answer_shift=1.0, extra_variance=0.75, appended_fraction=0.1)
        adjusted = apply_append_adjustment(snippet, adjustment)
        assert adjusted.raw_answer == pytest.approx(11.0)
        assert adjusted.raw_error == pytest.approx((0.25 + 0.75) ** 0.5)
        # The original snippet is unchanged (snippets are immutable).
        assert snippet.raw_answer == 10.0
