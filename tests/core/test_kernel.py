"""Unit tests for the squared-exponential kernel and its analytic integrals."""

import math

import numpy as np
import pytest
from scipy import integrate

from repro.core.kernel import (
    se_average_factor,
    se_double_integral,
    se_kernel,
    se_single_integral,
)


class TestKernel:
    def test_kernel_at_zero_is_one(self):
        assert se_kernel(0.0, 2.0) == pytest.approx(1.0)

    def test_kernel_decays_with_distance(self):
        assert se_kernel(1.0, 1.0) == pytest.approx(math.exp(-1.0))
        assert se_kernel(3.0, 1.0) < se_kernel(1.0, 1.0)

    def test_kernel_widens_with_length_scale(self):
        assert se_kernel(2.0, 4.0) > se_kernel(2.0, 1.0)

    def test_kernel_vectorised(self):
        values = se_kernel(np.array([0.0, 1.0, 2.0]), 1.0)
        np.testing.assert_allclose(values, [1.0, math.exp(-1), math.exp(-4)])

    def test_invalid_length_scale(self):
        with pytest.raises(ValueError):
            se_kernel(1.0, 0.0)
        with pytest.raises(ValueError):
            se_double_integral(0, 1, 0, 1, -1.0)
        with pytest.raises(ValueError):
            se_single_integral(0, 0, 1, 0.0)


class TestSingleIntegral:
    @pytest.mark.parametrize("x, low, high, scale", [(0.5, 0.0, 1.0, 0.7), (2.0, -1.0, 3.0, 1.5), (5.0, 0.0, 1.0, 0.3)])
    def test_matches_numeric_quadrature(self, x, low, high, scale):
        expected, _ = integrate.quad(lambda y: math.exp(-((x - y) ** 2) / scale**2), low, high)
        assert se_single_integral(x, low, high, scale) == pytest.approx(expected, rel=1e-8)

    def test_reversed_range_is_negative(self):
        forward = se_single_integral(0.5, 0.0, 1.0, 1.0)
        backward = se_single_integral(0.5, 1.0, 0.0, 1.0)
        assert backward == pytest.approx(-forward)


class TestDoubleIntegral:
    @pytest.mark.parametrize(
        "a, b, c, d, scale",
        [
            (0.0, 1.0, 0.0, 1.0, 0.8),
            (0.0, 1.0, 2.0, 3.5, 0.8),
            (0.0, 2.0, 1.0, 1.5, 2.0),
            (-3.0, -1.0, 4.0, 6.0, 1.0),
            (0.0, 10.0, 0.0, 10.0, 3.0),
        ],
    )
    def test_matches_numeric_quadrature(self, a, b, c, d, scale):
        expected, _ = integrate.dblquad(
            lambda y, x: math.exp(-((x - y) ** 2) / scale**2), a, b, lambda x: c, lambda x: d
        )
        assert se_double_integral(a, b, c, d, scale) == pytest.approx(expected, rel=1e-6)

    def test_symmetry_in_the_two_ranges(self):
        first = se_double_integral(0.0, 1.0, 2.0, 4.0, 1.3)
        second = se_double_integral(2.0, 4.0, 0.0, 1.0, 1.3)
        assert first == pytest.approx(second)

    def test_non_negative_even_for_far_ranges(self):
        value = se_double_integral(0.0, 1.0, 1e6, 1e6 + 1.0, 0.5)
        assert value >= 0.0

    def test_broadcasting_produces_pairwise_matrix(self):
        lows = np.array([0.0, 2.0, 5.0])
        highs = np.array([1.0, 3.0, 6.0])
        matrix = se_double_integral(
            lows[:, None], highs[:, None], lows[None, :], highs[None, :], 1.0
        )
        assert matrix.shape == (3, 3)
        for i in range(3):
            for j in range(3):
                expected = se_double_integral(lows[i], highs[i], lows[j], highs[j], 1.0)
                assert matrix[i, j] == pytest.approx(expected)


class TestAverageFactor:
    def test_identical_ranges_give_high_factor(self):
        factor = se_average_factor(0.0, 0.5, 0.0, 0.5, 5.0)
        assert 0.9 < factor <= 1.0

    def test_far_ranges_give_low_factor(self):
        factor = se_average_factor(0.0, 1.0, 50.0, 51.0, 1.0)
        assert factor == pytest.approx(0.0, abs=1e-10)

    def test_factor_bounded_by_one(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            a, c = rng.uniform(0, 10, size=2)
            b, d = a + rng.uniform(0.01, 5), c + rng.uniform(0.01, 5)
            scale = rng.uniform(0.1, 20)
            factor = float(se_average_factor(a, b, c, d, scale))
            assert 0.0 <= factor <= 1.0 + 1e-12

    def test_point_limit_tends_to_kernel(self):
        width = 1e-4
        factor = se_average_factor(1.0, 1.0 + width, 3.0, 3.0 + width, 1.5)
        assert factor == pytest.approx(se_kernel(2.0, 1.5), rel=1e-3)

    def test_overlapping_factor_larger_than_disjoint(self):
        overlapping = se_average_factor(0.0, 2.0, 1.0, 3.0, 1.0)
        disjoint = se_average_factor(0.0, 2.0, 6.0, 8.0, 1.0)
        assert overlapping > disjoint
