"""Mechanics of the fault-injection subsystem (:mod:`repro.faults`).

These tests exercise the plan layer in isolation: rule validation, counted
and probabilistic triggering, JSON/env parsing, and the process-global
install/clear lifecycle.  The end-to-end behaviour (what the *stack* does
when a fault fires) lives in the store-corruption, failure-mode, and
crash-matrix tests.
"""

from __future__ import annotations

import json

import pytest

from repro import faults
from repro.errors import FaultInjectedError
from repro.faults import (
    FAULT_EXIT_CODE,
    FaultPlan,
    FaultRule,
    plan_from_env,
    plan_from_json,
)


@pytest.fixture(autouse=True)
def no_leftover_plan():
    faults.clear()
    yield
    faults.clear()


class TestRuleValidation:
    def test_unknown_point_is_rejected(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            FaultRule(point="store.delta.apend", action="error")

    def test_unknown_action_is_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultRule(point="store.delta.append", action="explode")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"after": 0},
            {"times": 0},
            {"probability": 0.0},
            {"probability": 1.5},
            {"delay_s": -1.0},
        ],
    )
    def test_out_of_range_fields_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultRule(point="aqp.batch", action="error", **kwargs)


class TestPlanTriggering:
    def test_after_skips_early_hits(self):
        plan = FaultPlan([FaultRule(point="aqp.batch", action="error", after=3)])
        assert plan.check("aqp.batch") is None
        assert plan.check("aqp.batch") is None
        assert plan.check("aqp.batch") is not None

    def test_times_caps_firings(self):
        plan = FaultPlan([FaultRule(point="aqp.batch", action="error", times=2)])
        fired = [plan.check("aqp.batch") is not None for _ in range(5)]
        assert fired == [True, True, False, False, False]

    def test_unrelated_points_do_not_consume_hits(self):
        plan = FaultPlan([FaultRule(point="aqp.batch", action="error", after=2)])
        assert plan.check("service.train") is None
        assert plan.check("aqp.batch") is None  # hit 1 of aqp.batch, not 2
        assert plan.check("aqp.batch") is not None

    def test_probability_stream_is_seed_deterministic(self):
        def decisions(seed: int) -> list[bool]:
            plan = FaultPlan(
                [FaultRule(point="aqp.batch", action="error", probability=0.5)],
                seed=seed,
            )
            return [plan.check("aqp.batch") is not None for _ in range(64)]

        first = decisions(7)
        assert decisions(7) == first, "same seed must replay the same decisions"
        assert decisions(8) != first, "different seeds should diverge"
        assert any(first) and not all(first), "p=0.5 over 64 hits should mix"

    def test_snapshot_reports_hits_and_firings(self):
        plan = FaultPlan([FaultRule(point="aqp.batch", action="error", times=1)])
        plan.check("aqp.batch")
        plan.check("aqp.batch")
        snapshot = plan.snapshot()
        assert snapshot["hits"] == {"aqp.batch": 2}
        assert snapshot["fired"] == {"aqp.batch": 1}


class TestParsing:
    def test_round_trip_from_json_text(self):
        plan = plan_from_json(
            json.dumps(
                {
                    "seed": 3,
                    "rules": [
                        {"point": "store.delta.append", "action": "torn", "after": 2}
                    ],
                }
            )
        )
        assert plan.seed == 3
        assert plan.rules[0].action == "torn"
        assert plan.rules[0].after == 2

    def test_unknown_plan_field_is_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-plan fields"):
            plan_from_json({"rules": [], "sedd": 1})

    def test_unknown_rule_field_is_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-rule fields"):
            plan_from_json(
                {"rules": [{"point": "aqp.batch", "action": "error", "when": 1}]}
            )

    def test_unknown_point_fails_at_parse_time(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            plan_from_json({"rules": [{"point": "nope", "action": "error"}]})

    def test_env_unset_or_blank_means_no_plan(self):
        assert plan_from_env({}) is None
        assert plan_from_env({faults.ENV_VAR: "   "}) is None

    def test_env_inline_json(self):
        plan = plan_from_env(
            {faults.ENV_VAR: '{"rules": [{"point": "aqp.batch", "action": "error"}]}'}
        )
        assert plan is not None and plan.rules[0].point == "aqp.batch"

    def test_env_file_reference(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text('{"rules": [{"point": "service.train", "action": "error"}]}')
        plan = plan_from_env({faults.ENV_VAR: f"@{path}"})
        assert plan is not None and plan.rules[0].point == "service.train"


class TestInject:
    def test_disabled_is_a_no_op(self):
        assert faults.active_plan() is None
        assert faults.inject("store.delta.append") is None

    def test_error_action_raises_with_context(self):
        faults.install(
            FaultPlan([FaultRule(point="service.train", action="error")])
        )
        with pytest.raises(FaultInjectedError, match="service.train.*attempt=1"):
            faults.inject("service.train", attempt=1)

    def test_torn_action_returns_a_directive(self):
        faults.install(
            FaultPlan([FaultRule(point="store.delta.append", action="torn")])
        )
        directive = faults.inject("store.delta.append")
        assert directive is not None and directive.action == "torn"

    def test_kill_action_calls_hard_exit(self, monkeypatch):
        exits: list[int] = []
        # inject() resolves hard_exit inside repro.faults.plan, not through
        # the package re-export, so that is the binding to replace.
        monkeypatch.setattr(
            "repro.faults.plan.hard_exit",
            lambda code=FAULT_EXIT_CODE: exits.append(code),
        )
        faults.install(FaultPlan([FaultRule(point="http.handler", action="kill")]))
        faults.inject("http.handler")
        assert exits == [FAULT_EXIT_CODE]

    def test_clear_restores_the_fast_path(self):
        faults.install(
            FaultPlan([FaultRule(point="service.train", action="error")])
        )
        faults.clear()
        assert faults.inject("service.train") is None
