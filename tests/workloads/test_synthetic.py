"""Unit tests for the synthetic data generators."""

import numpy as np
import pytest

from repro.core.snippet import AggregateKind
from repro.db.schema import ColumnRole
from repro.workloads.synthetic import (
    make_gp_snippets,
    make_sales_table,
    make_smooth_measure_table,
    make_synthetic_table,
)


class TestSalesTable:
    def test_shape_and_schema(self):
        table = make_sales_table(num_rows=2_000, num_weeks=52, seed=1)
        assert table.num_rows == 2_000
        assert table.schema.column("revenue").role is ColumnRole.MEASURE
        assert table.schema.column("region").is_categorical
        weeks = np.asarray(table.column("week"))
        assert weeks.min() >= 1 and weeks.max() <= 52

    def test_deterministic_given_seed(self):
        first = make_sales_table(num_rows=500, seed=3)
        second = make_sales_table(num_rows=500, seed=3)
        np.testing.assert_array_equal(first.column("revenue"), second.column("revenue"))

    def test_revenue_varies_smoothly_with_week(self):
        """Weekly mean revenue of adjacent weeks should be highly correlated --
        the inter-tuple covariance Verdict exploits."""
        table = make_sales_table(num_rows=30_000, num_weeks=80, seed=5)
        weeks = np.asarray(table.column("week"))
        revenue = np.asarray(table.column("revenue"))
        weekly = np.array([revenue[weeks == w].mean() for w in range(1, 81)])
        adjacent = np.corrcoef(weekly[:-1], weekly[1:])[0, 1]
        assert adjacent > 0.5


class TestSyntheticTable:
    def test_column_mix(self):
        table = make_synthetic_table(num_rows=1_000, num_columns=20, categorical_fraction=0.2, seed=2)
        categorical = [c for c in table.schema if c.is_categorical]
        numeric_dims = [
            c for c in table.schema if c.role is ColumnRole.DIMENSION and c.is_numeric
        ]
        assert len(categorical) == 4
        assert len(numeric_dims) == 16
        assert "measure" in table.schema

    def test_distributions_differ(self):
        uniform = make_synthetic_table(num_rows=4_000, num_columns=5, distribution="uniform", seed=3)
        skewed = make_synthetic_table(num_rows=4_000, num_columns=5, distribution="skewed", seed=3)
        from scipy.stats import skew

        assert abs(skew(np.asarray(skewed.column("measure")))) > abs(
            skew(np.asarray(uniform.column("measure")))
        )

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            make_synthetic_table(num_columns=1)
        with pytest.raises(ValueError):
            make_synthetic_table(num_rows=100, num_columns=5, distribution="bogus")

    def test_numeric_domain_bounds(self):
        table = make_synthetic_table(num_rows=2_000, num_columns=10, seed=4)
        values = np.asarray(table.column("d00"))
        assert values.min() >= 0.0 and values.max() <= 10.0


class TestSmoothMeasureTable:
    def test_known_correlation_length(self):
        table = make_smooth_measure_table(num_rows=5_000, length_scale=2.0, noise_std=0.1, seed=6)
        assert table.num_rows == 5_000
        positions = np.asarray(table.column("x"))
        values = np.asarray(table.column("y"))
        # Bin by position; adjacent bins should correlate strongly for a
        # length scale much larger than the bin width.
        bins = np.linspace(0, 10, 41)
        binned = [values[(positions >= a) & (positions < b)].mean() for a, b in zip(bins[:-1], bins[1:])]
        binned = np.array(binned)
        assert np.corrcoef(binned[:-1], binned[1:])[0, 1] > 0.6


class TestGPSnippets:
    def test_snippet_generation(self):
        snippets, domains, key = make_gp_snippets(num_snippets=30, true_length_scale=1.0, seed=1)
        assert len(snippets) == 30
        assert key.kind is AggregateKind.AVG
        assert all(s.raw_error > 0 for s in snippets)
        assert all(s.key == key for s in snippets)
        assert "x" in domains.numeric

    def test_nearby_ranges_have_similar_answers(self):
        snippets, _, _ = make_gp_snippets(
            num_snippets=200,
            true_length_scale=3.0,
            noise_std=0.05,
            range_width=(0.5, 1.0),
            seed=8,
        )
        midpoints = np.array([s.region.numeric_ranges[0].midpoint for s in snippets])
        answers = np.array([s.raw_answer for s in snippets])
        order = np.argsort(midpoints)
        close_pairs = []
        far_pairs = []
        for i in range(len(snippets) - 1):
            a, b = order[i], order[i + 1]
            close_pairs.append(abs(answers[a] - answers[b]))
        for i in range(0, len(snippets) - 100, 7):
            a, b = order[i], order[i + 100]
            far_pairs.append(abs(answers[a] - answers[b]))
        assert np.mean(close_pairs) < np.mean(far_pairs)
