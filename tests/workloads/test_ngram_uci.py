"""Unit tests for the n-gram series and UCI-like correlation workloads."""

import numpy as np
import pytest

from repro.db.executor import ExactExecutor
from repro.sqlparser.checker import check_sql
from repro.sqlparser.parser import parse_query
from repro.workloads.ngram import (
    figure1_query_ranges,
    make_ngram_catalog,
    make_ngram_table,
    ngram_range_query,
)
from repro.workloads.uci import (
    adjacent_correlations,
    correlation_histogram,
    correlation_summaries,
    make_uci_like_datasets,
)


class TestNgram:
    def test_table_shape(self):
        table = make_ngram_table(num_weeks=20, rows_per_week=50, seed=1)
        assert table.num_rows == 1_000
        weeks = np.asarray(table.column("week"))
        assert weeks.min() == 1 and weeks.max() == 20

    def test_weekly_totals_are_smooth(self):
        table = make_ngram_table(num_weeks=60, rows_per_week=100, seed=2)
        weeks = np.asarray(table.column("week"))
        counts = np.asarray(table.column("count"))
        weekly = np.array([counts[weeks == w].sum() for w in range(1, 61)])
        assert np.corrcoef(weekly[:-1], weekly[1:])[0, 1] > 0.5

    def test_range_query_is_supported_and_correct(self):
        catalog = make_ngram_catalog(num_weeks=30, rows_per_week=40, seed=3)
        sql = ngram_range_query(5, 15)
        assert check_sql(sql).supported
        result = ExactExecutor(catalog).execute(parse_query(sql))
        table = catalog.table("tweets")
        weeks = np.asarray(table.column("week"))
        counts = np.asarray(table.column("count"))
        expected = counts[(weeks >= 5) & (weeks <= 15)].sum()
        assert result.scalar() == pytest.approx(expected)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            ngram_range_query(10, 5)

    def test_figure1_ranges(self):
        ranges = figure1_query_ranges(8, num_weeks=104, seed=4)
        assert len(ranges) == 8
        assert all(1 <= low < high <= 104 for low, high in ranges)


class TestUCI:
    def test_sixteen_datasets(self):
        datasets = make_uci_like_datasets(num_rows=200, seed=1)
        assert len(datasets) == 16
        names = {t.name for t in datasets}
        assert "iris" in names and "spambase" in names
        for table in datasets:
            assert 4 <= table.num_columns <= 8

    def test_adjacent_correlations_detect_structure(self):
        datasets = make_uci_like_datasets(num_rows=400, seed=2)
        strong = adjacent_correlations(datasets[0])   # low-noise dataset
        weak = adjacent_correlations(datasets[-1])    # high-noise dataset
        assert np.mean(strong) > np.mean(weak)
        assert all(-1.0001 <= value <= 1.0001 for value in strong + weak)

    def test_summaries_and_histogram(self):
        summaries = correlation_summaries(num_rows=150, seed=3)
        assert len(summaries) == 16
        all_correlations = [c for summary in summaries for c in summary.correlations]
        histogram = correlation_histogram(all_correlations)
        total_percentage = sum(percentage for _, _, percentage in histogram)
        assert total_percentage <= 100.0 + 1e-9
        assert total_percentage > 50.0  # most mass falls inside the default bins
        assert any(percentage > 0 for low, high, percentage in histogram if low >= 0.3)
