"""Unit tests for the TPC-H-like workload generator."""

import pytest

from repro.sqlparser.checker import check_sql
from repro.workloads.tpch import TPCHWorkload


@pytest.fixture(scope="module")
def workload():
    return TPCHWorkload(scale=0.2, seed=1)


@pytest.fixture(scope="module")
def catalog(workload):
    return workload.build_catalog()


class TestSchema:
    def test_tables_present(self, catalog):
        for name in ["lineitem", "orders", "part", "supplier", "customer"]:
            assert catalog.has_table(name)
        assert catalog.is_fact_table("lineitem")
        assert len(catalog.foreign_keys("lineitem")) == 3

    def test_scaling(self):
        small = TPCHWorkload(scale=0.1)
        large = TPCHWorkload(scale=0.5)
        assert large.num_lineitem > small.num_lineitem
        with pytest.raises(ValueError):
            TPCHWorkload(scale=0)

    def test_foreign_keys_resolve(self, catalog):
        lineitem = catalog.table("lineitem")
        orders = catalog.table("orders")
        assert int(lineitem.column("l_orderkey").max()) < orders.num_rows


class TestTemplates:
    def test_table3_counts(self, workload):
        """21 of 22 templates have aggregates; 14 are supported (Table 3)."""
        templates = workload.query_templates()
        assert len(templates) == 22
        assert len({t.template_id for t in templates}) == 22
        with_aggregates = [t for t in templates if t.has_aggregate]
        assert len(with_aggregates) == 21
        supported = [t for t in templates if t.expected_supported]
        assert len(supported) == 14

    def test_checker_agrees_with_expected_support(self, workload):
        for template in workload.query_templates():
            result = check_sql(template.sql)
            assert result.supported == template.expected_supported, (
                template.template_id,
                template.sql,
                result.reasons,
            )

    def test_supported_templates_execute(self, workload, catalog):
        from repro.db.executor import ExactExecutor
        from repro.sqlparser.parser import parse_query

        executor = ExactExecutor(catalog)
        for template in workload.query_templates():
            if not template.expected_supported:
                continue
            result = executor.execute(parse_query(template.sql))
            assert result is not None

    def test_generate_queries_count_and_mix(self, workload):
        queries = workload.generate_queries(num_queries=44, seed=3)
        assert len(queries) == 44
        supported = sum(1 for q in queries if q.expected_supported)
        assert 20 <= supported <= 32  # about 14/22 of the mix

    def test_supported_queries_helper(self, workload):
        queries = workload.supported_queries(num_queries=10, seed=4)
        assert len(queries) == 10
        assert all(q.expected_supported for q in queries)
