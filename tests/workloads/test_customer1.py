"""Unit tests for the Customer1-like workload generator."""

import pytest

from repro.sqlparser.checker import check_sql
from repro.workloads.customer1 import Customer1Workload


@pytest.fixture(scope="module")
def workload():
    return Customer1Workload(num_rows=5_000, num_days=120, seed=1)


@pytest.fixture(scope="module")
def catalog(workload):
    return workload.build_catalog()


class TestCatalog:
    def test_star_schema_shape(self, catalog):
        assert catalog.is_fact_table("sales")
        assert catalog.has_table("dim_store")
        assert catalog.has_table("dim_product")
        assert len(catalog.foreign_keys("sales")) == 2
        assert catalog.cardinality("sales") == 5_000

    def test_measures_positive(self, catalog):
        sales = catalog.table("sales")
        assert float(sales.column("price").min()) > 0
        assert float(sales.column("revenue").min()) >= 0

    def test_joinable(self, catalog):
        from repro.db.executor import ExactExecutor
        from repro.sqlparser.parser import parse_query

        result = ExactExecutor(catalog).execute(
            parse_query(
                "SELECT region, SUM(revenue) FROM sales "
                "JOIN dim_store ON store_key = store_key GROUP BY region"
            )
        )
        assert len(result.rows) >= 2


class TestTrace:
    def test_trace_is_timestamped_and_ordered(self, workload):
        trace = workload.generate_trace(num_queries=50, seed=5)
        assert len(trace) == 50
        assert [q.timestamp for q in trace] == sorted(q.timestamp for q in trace)

    def test_supported_fraction_matches_target(self, workload):
        trace = workload.generate_trace(num_queries=400, supported_fraction=0.737, seed=7)
        checked = [check_sql(q.sql).supported for q in trace]
        fraction = sum(checked) / len(checked)
        assert 0.65 < fraction < 0.82

    def test_expected_support_flag_agrees_with_checker(self, workload):
        trace = workload.generate_trace(num_queries=120, seed=9)
        for query in trace:
            assert check_sql(query.sql).supported == query.expected_supported, query.sql

    def test_all_supported_queries_run_on_catalog(self, workload, catalog):
        from repro.db.executor import ExactExecutor
        from repro.sqlparser.parser import parse_query

        executor = ExactExecutor(catalog)
        trace = workload.generate_trace(num_queries=40, supported_fraction=1.0, seed=11)
        for query in trace:
            result = executor.execute(parse_query(query.sql))
            assert result is not None

    def test_unsupported_templates_have_variety(self, workload):
        trace = workload.generate_trace(num_queries=300, supported_fraction=0.0, seed=13)
        templates = {q.template for q in trace}
        assert {"like_filter", "disjunction", "minmax", "nested"} <= templates
