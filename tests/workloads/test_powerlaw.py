"""Unit tests for the power-law query generator (Figure 6a workloads)."""

import pytest

from repro.sqlparser.checker import QueryTypeChecker
from repro.sqlparser.parser import parse_query
from repro.workloads.powerlaw import PowerLawQueryGenerator
from repro.workloads.synthetic import make_synthetic_table


@pytest.fixture(scope="module")
def table():
    return make_synthetic_table(num_rows=3_000, num_columns=20, categorical_fraction=0.2, seed=0)


class TestPowerLawQueryGenerator:
    def test_generates_parsable_supported_queries(self, table):
        generator = PowerLawQueryGenerator(table, frequent_fraction=0.2, seed=1)
        checker = QueryTypeChecker()
        for sql in generator.generate_sql(30):
            query = parse_query(sql)
            assert checker.check(query).supported, sql
            assert query.table == table.name

    def test_predicate_count(self, table):
        generator = PowerLawQueryGenerator(table, predicates_per_query=3, seed=2)
        for generated in generator.generate(20):
            assert len(generated.predicate_columns) == 3

    def test_low_frequent_fraction_concentrates_columns(self, table):
        concentrated = PowerLawQueryGenerator(table, frequent_fraction=0.05, seed=3)
        diverse = PowerLawQueryGenerator(table, frequent_fraction=1.0, seed=3)
        used_concentrated = {
            column for q in concentrated.generate(200) for column in q.predicate_columns
        }
        used_diverse = {
            column for q in diverse.generate(200) for column in q.predicate_columns
        }
        assert len(used_concentrated) < len(used_diverse)

    def test_access_probabilities_sum_to_one(self):
        probabilities = PowerLawQueryGenerator._access_probabilities(10, 0.2)
        assert probabilities.sum() == pytest.approx(1.0)
        # The frequent prefix shares the same (maximal) probability.
        assert probabilities[0] == pytest.approx(probabilities[1])
        assert probabilities[2] < probabilities[1]

    def test_invalid_arguments(self, table):
        with pytest.raises(ValueError):
            PowerLawQueryGenerator(table, frequent_fraction=0.0)
        with pytest.raises(ValueError):
            PowerLawQueryGenerator(table, predicates_per_query=0)

    def test_deterministic_given_seed(self, table):
        first = PowerLawQueryGenerator(table, seed=9).generate_sql(10)
        second = PowerLawQueryGenerator(table, seed=9).generate_sql(10)
        assert first == second
