"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aqp.online_agg import OnlineAggregationEngine
from repro.config import CostModelConfig, SamplingConfig, VerdictConfig
from repro.core.engine import VerdictEngine
from repro.db.catalog import Catalog
from repro.db.executor import ExactExecutor
from repro.db.schema import (
    ColumnKind,
    Schema,
    categorical_dimension,
    key,
    measure,
    numeric_dimension,
)
from repro.db.table import Table
from repro.workloads.synthetic import make_sales_table


@pytest.fixture(scope="session")
def small_sales_table() -> Table:
    """A small deterministic sales table shared across tests."""
    return make_sales_table(num_rows=4_000, num_weeks=52, seed=11)


@pytest.fixture()
def sales_catalog(small_sales_table: Table) -> Catalog:
    catalog = Catalog()
    catalog.add_table(small_sales_table, fact=True)
    return catalog


@pytest.fixture()
def tiny_table() -> Table:
    """A hand-written five-row table with known aggregates."""
    schema = Schema.of(
        [
            numeric_dimension("week", ColumnKind.INT),
            categorical_dimension("region"),
            measure("revenue"),
            measure("discount"),
        ]
    )
    return Table(
        "tiny",
        schema,
        {
            "week": [1, 1, 2, 3, 3],
            "region": ["east", "west", "east", "west", "east"],
            "revenue": [10.0, 20.0, 30.0, 40.0, 50.0],
            "discount": [0.1, 0.2, 0.0, 0.5, 0.3],
        },
    )


@pytest.fixture()
def tiny_catalog(tiny_table: Table) -> Catalog:
    catalog = Catalog()
    catalog.add_table(tiny_table, fact=True)
    return catalog


@pytest.fixture()
def star_catalog() -> Catalog:
    """A minimal fact + dimension catalog for join tests."""
    fact = Table(
        "orders",
        Schema.of(
            [
                numeric_dimension("day", ColumnKind.INT),
                key("store_id"),
                measure("amount"),
            ]
        ),
        {
            "day": [1, 2, 3, 4, 5, 6],
            "store_id": [0, 1, 0, 1, 2, 2],
            "amount": [10.0, 20.0, 30.0, 40.0, 50.0, 60.0],
        },
    )
    stores = Table(
        "stores",
        Schema.of([key("store_id"), categorical_dimension("region")]),
        {"store_id": [0, 1, 2], "region": ["east", "west", "east"]},
    )
    catalog = Catalog()
    catalog.add_table(fact, fact=True)
    catalog.add_table(stores)
    catalog.add_foreign_key("orders", "store_id", "stores", "store_id")
    return catalog


@pytest.fixture()
def fast_sampling() -> SamplingConfig:
    return SamplingConfig(sample_ratio=0.2, num_batches=4, seed=3)


@pytest.fixture()
def cached_cost_model() -> CostModelConfig:
    return CostModelConfig(cached=True)


@pytest.fixture()
def verdict_setup(sales_catalog: Catalog, fast_sampling: SamplingConfig):
    """(catalog, aqp engine, verdict engine, exact executor) on the sales table."""
    aqp = OnlineAggregationEngine(sales_catalog, sampling=fast_sampling)
    config = VerdictConfig(learn_length_scales=False, learning_restarts=1)
    verdict = VerdictEngine(sales_catalog, aqp, config=config)
    exact = ExactExecutor(sales_catalog)
    return sales_catalog, aqp, verdict, exact


def train_verdict(verdict: VerdictEngine, queries, learn: bool = False) -> None:
    """Run training queries through the engine and fit the model."""
    for sql in queries:
        parsed, check = verdict.check(sql)
        if not check.supported:
            continue
        raw = verdict.aqp.final_answer(parsed)
        verdict.record(parsed, raw)
    verdict.train(learn)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
