"""Wall-clock deadlines (:mod:`repro.deadline`): value type and ambient scope."""

from __future__ import annotations

import threading
import time

import pytest

from repro.deadline import (
    CancelToken,
    Deadline,
    cancel_scope,
    check_deadline,
    current_cancel,
    current_deadline,
    deadline_scope,
)
from repro.errors import DeadlineExceeded, QueryCancelled


def expired_deadline(budget_s: float = 0.05) -> Deadline:
    """A deadline that is already in the past."""
    return Deadline(expires_at=time.monotonic() - 1.0, budget_s=budget_s)


class TestDeadlineValue:
    def test_generous_deadline_is_not_expired(self):
        deadline = Deadline.after(60.0)
        assert not deadline.expired
        assert deadline.remaining_s > 0
        deadline.check("anywhere")  # must not raise

    def test_past_deadline_is_expired_and_check_raises(self):
        deadline = expired_deadline()
        assert deadline.expired
        assert deadline.remaining_s < 0
        with pytest.raises(DeadlineExceeded, match="during the scan"):
            deadline.check("the scan")

    def test_after_rejects_non_positive_budget(self):
        with pytest.raises(ValueError):
            Deadline.after(0.0)


class TestAmbientScope:
    def test_no_scope_means_no_deadline(self):
        assert current_deadline() is None
        check_deadline("outside any scope")  # no-op, must not raise

    def test_scope_installs_and_restores(self):
        deadline = Deadline.after(60.0)
        with deadline_scope(deadline):
            assert current_deadline() is deadline
        assert current_deadline() is None

    def test_scopes_nest(self):
        outer = Deadline.after(60.0)
        inner = Deadline.after(30.0)
        with deadline_scope(outer):
            with deadline_scope(inner):
                assert current_deadline() is inner
            assert current_deadline() is outer

    def test_none_scope_masks_the_outer_deadline(self):
        with deadline_scope(expired_deadline()):
            with deadline_scope(None):
                check_deadline("shielded")  # expired outer must not leak in

    def test_check_deadline_raises_inside_expired_scope(self):
        with deadline_scope(expired_deadline()):
            with pytest.raises(DeadlineExceeded):
                check_deadline("batch 3")

    def test_scope_is_thread_local(self):
        seen: list[Deadline | None] = []

        def probe():
            seen.append(current_deadline())

        with deadline_scope(Deadline.after(60.0)):
            worker = threading.Thread(target=probe)
            worker.start()
            worker.join()
        assert seen == [None], "ambient deadlines must not leak across threads"


class TestCancelToken:
    def test_cancel_latches_first_reason(self):
        token = CancelToken()
        assert not token.cancelled
        assert token.cancel("requested") is True
        assert token.cancel("disconnected") is False  # idempotent latch
        assert token.reason == "requested"

    def test_check_raises_typed_error_with_reason(self):
        token = CancelToken()
        token.check("batch 1")  # not cancelled: no-op
        token.cancel("disconnected")
        with pytest.raises(QueryCancelled) as excinfo:
            token.check("batch 2")
        assert excinfo.value.reason == "disconnected"
        assert "batch 2" in str(excinfo.value)

    def test_probe_is_rate_limited(self):
        calls = []
        clock = [0.0]
        token = CancelToken(
            probe=lambda: calls.append(1), probe_interval_s=0.5, clock=lambda: clock[0]
        )
        for _ in range(10):
            token.check()
        assert len(calls) == 1  # clock never advanced: one probe only
        clock[0] = 0.5
        token.check()
        assert len(calls) == 2

    def test_probe_reporting_a_reason_cancels(self):
        token = CancelToken(probe=lambda: "disconnected", probe_interval_s=0.0)
        with pytest.raises(QueryCancelled) as excinfo:
            token.check("scan")
        assert excinfo.value.reason == "disconnected"
        assert token.cancelled

    def test_broken_probe_is_dropped_permanently(self):
        calls = []

        def probe():
            calls.append(1)
            raise OSError("socket gone weird")

        token = CancelToken(probe=probe, probe_interval_s=0.0)
        token.check()
        token.check()
        assert len(calls) == 1  # never retried
        assert not token.cancelled


class TestAmbientCancelScope:
    def test_no_scope_means_no_token(self):
        assert current_cancel() is None
        check_deadline("anywhere")  # no ambient state: no-op

    def test_check_deadline_raises_inside_cancelled_scope(self):
        token = CancelToken()
        token.cancel()
        with cancel_scope(token):
            with pytest.raises(QueryCancelled):
                check_deadline("batch 3")
        assert current_cancel() is None  # restored on exit

    def test_cancellation_wins_over_an_expired_deadline(self):
        # A request that is both cancelled and past its deadline must abort
        # as *cancelled*: nobody is listening for a degraded partial.
        token = CancelToken()
        token.cancel("requested")
        with deadline_scope(expired_deadline()):
            with cancel_scope(token):
                with pytest.raises(QueryCancelled):
                    check_deadline("batch 1")

    def test_scope_is_thread_local(self):
        seen = []
        with cancel_scope(CancelToken()):
            worker = threading.Thread(target=lambda: seen.append(current_cancel()))
            worker.start()
            worker.join()
        assert seen == [None], "ambient tokens must not leak across threads"

    def test_none_scope_masks_the_outer_token(self):
        token = CancelToken()
        token.cancel()
        with cancel_scope(token):
            with cancel_scope(None):
                check_deadline("shielded")
