"""Wall-clock deadlines (:mod:`repro.deadline`): value type and ambient scope."""

from __future__ import annotations

import threading
import time

import pytest

from repro.deadline import (
    Deadline,
    check_deadline,
    current_deadline,
    deadline_scope,
)
from repro.errors import DeadlineExceeded


def expired_deadline(budget_s: float = 0.05) -> Deadline:
    """A deadline that is already in the past."""
    return Deadline(expires_at=time.monotonic() - 1.0, budget_s=budget_s)


class TestDeadlineValue:
    def test_generous_deadline_is_not_expired(self):
        deadline = Deadline.after(60.0)
        assert not deadline.expired
        assert deadline.remaining_s > 0
        deadline.check("anywhere")  # must not raise

    def test_past_deadline_is_expired_and_check_raises(self):
        deadline = expired_deadline()
        assert deadline.expired
        assert deadline.remaining_s < 0
        with pytest.raises(DeadlineExceeded, match="during the scan"):
            deadline.check("the scan")

    def test_after_rejects_non_positive_budget(self):
        with pytest.raises(ValueError):
            Deadline.after(0.0)


class TestAmbientScope:
    def test_no_scope_means_no_deadline(self):
        assert current_deadline() is None
        check_deadline("outside any scope")  # no-op, must not raise

    def test_scope_installs_and_restores(self):
        deadline = Deadline.after(60.0)
        with deadline_scope(deadline):
            assert current_deadline() is deadline
        assert current_deadline() is None

    def test_scopes_nest(self):
        outer = Deadline.after(60.0)
        inner = Deadline.after(30.0)
        with deadline_scope(outer):
            with deadline_scope(inner):
                assert current_deadline() is inner
            assert current_deadline() is outer

    def test_none_scope_masks_the_outer_deadline(self):
        with deadline_scope(expired_deadline()):
            with deadline_scope(None):
                check_deadline("shielded")  # expired outer must not leak in

    def test_check_deadline_raises_inside_expired_scope(self):
        with deadline_scope(expired_deadline()):
            with pytest.raises(DeadlineExceeded):
                check_deadline("batch 3")

    def test_scope_is_thread_local(self):
        seen: list[Deadline | None] = []

        def probe():
            seen.append(current_deadline())

        with deadline_scope(Deadline.after(60.0)):
            worker = threading.Thread(target=probe)
            worker.start()
            worker.join()
        assert seen == [None], "ambient deadlines must not leak across threads"
