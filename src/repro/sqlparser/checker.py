"""Query type checker: is a query inside Verdict's supported class?

Section 2.2 of the paper defines the supported class: flat aggregate queries
with SUM / COUNT / AVG aggregates (possibly over derived attributes),
foreign-key joins between a fact table and dimension tables, conjunctive
equality / inequality / IN predicates over stored attributes, and optional
group-by / having clauses.  MIN / MAX aggregates, disjunctions, negations,
textual LIKE filters, DISTINCT aggregates, and nested queries are unsupported:
Verdict passes them straight through to the AQP engine.

The checker is purely syntactic (it does not need a catalog) and reports the
list of reasons a query is unsupported, which the Table 3 generality
experiment aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sqlparser import ast


@dataclass(frozen=True)
class CheckResult:
    """Outcome of checking one query."""

    supported: bool
    reasons: tuple[str, ...] = ()
    has_aggregate: bool = False

    def __bool__(self) -> bool:
        return self.supported


_SUPPORTED_AGGREGATES = {
    ast.AggregateFunction.SUM,
    ast.AggregateFunction.COUNT,
    ast.AggregateFunction.AVG,
    ast.AggregateFunction.FREQ,
}


class QueryTypeChecker:
    """Classifies parsed queries as supported or unsupported.

    Parameters
    ----------
    allow_having:
        Verdict supports HAVING clauses by operating on the result set
        returned by the AQP engine (Section 2.2).  Setting this to False
        reproduces a stricter engine for sensitivity studies.
    """

    def __init__(self, allow_having: bool = True):
        self.allow_having = allow_having

    def check(self, query: ast.Query) -> CheckResult:
        """Return the :class:`CheckResult` for ``query``."""
        reasons: list[str] = []
        aggregates = query.aggregates
        has_aggregate = bool(aggregates)

        if query.has_subquery:
            reasons.append("nested query")
        if not aggregates:
            reasons.append("no aggregate function")

        for aggregate in aggregates:
            if aggregate.function not in _SUPPORTED_AGGREGATES:
                reasons.append(f"unsupported aggregate {aggregate.function.value}")
            if aggregate.distinct:
                reasons.append("DISTINCT aggregate")
            if aggregate.is_star and aggregate.function not in (
                ast.AggregateFunction.COUNT,
                ast.AggregateFunction.FREQ,
            ):
                reasons.append(
                    f"{aggregate.function.value}(*) is not a valid aggregate"
                )

        group_names = set(query.group_by_names)
        for item in query.non_aggregate_items:
            expression = item.expression
            if isinstance(expression, ast.ColumnRef):
                if expression.name not in group_names:
                    reasons.append(
                        f"projected column {expression.name!r} not in GROUP BY"
                    )
            else:
                reasons.append("non-aggregate select expression")

        reasons.extend(self._check_predicate(query.where, clause="WHERE"))
        if query.having is not None and not self.allow_having:
            reasons.append("HAVING clause")

        # Duplicate reasons add no information.
        unique_reasons = tuple(dict.fromkeys(reasons))
        return CheckResult(
            supported=not unique_reasons,
            reasons=unique_reasons,
            has_aggregate=has_aggregate,
        )

    # ------------------------------------------------------------------ helpers

    def _check_predicate(self, predicate: ast.Predicate | None, clause: str) -> list[str]:
        if predicate is None:
            return []
        reasons: list[str] = []
        for node in ast.iter_predicates(predicate):
            if isinstance(node, ast.Or):
                reasons.append(f"disjunction in {clause} clause")
            elif isinstance(node, ast.Not):
                reasons.append(f"negation in {clause} clause")
            elif isinstance(node, ast.LikePredicate):
                reasons.append(f"textual LIKE filter in {clause} clause")
            elif isinstance(node, ast.InPredicate):
                if node.negated:
                    reasons.append(f"NOT IN predicate in {clause} clause")
                elif not node.values:
                    reasons.append(f"IN subquery in {clause} clause")
            elif isinstance(node, ast.Comparison):
                reasons.extend(self._check_comparison(node, clause))
        return reasons

    def _check_comparison(self, node: ast.Comparison, clause: str) -> list[str]:
        left_is_column = isinstance(node.left, ast.ColumnRef)
        right_is_column = isinstance(node.right, ast.ColumnRef)
        left_is_literal = isinstance(node.left, ast.Literal)
        right_is_literal = isinstance(node.right, ast.Literal)
        if left_is_column and right_is_literal:
            return []
        if right_is_column and left_is_literal:
            return []
        if left_is_literal and right_is_literal:
            # Placeholder comparisons produced when a scalar subquery was
            # consumed; the subquery reason is reported separately, but a
            # genuine constant comparison is also outside the supported class.
            return [f"constant comparison in {clause} clause"]
        return [f"unsupported comparison form in {clause} clause"]


def check_sql(text: str, checker: QueryTypeChecker | None = None) -> CheckResult:
    """Parse and check a SQL string in one call.

    Queries that fail to parse are reported as unsupported with a
    ``"parse error"`` reason rather than raising, which matches how a query
    trace classifier must behave.
    """
    from repro.errors import SQLSyntaxError
    from repro.sqlparser.parser import parse_query

    checker = checker or QueryTypeChecker()
    try:
        query = parse_query(text)
    except SQLSyntaxError as exc:
        return CheckResult(supported=False, reasons=(f"parse error: {exc}",))
    return checker.check(query)
