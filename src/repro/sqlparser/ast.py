"""Typed abstract syntax tree for the supported SQL subset.

The AST intentionally models a little *more* than Verdict supports (MIN/MAX,
OR, NOT, LIKE, DISTINCT) so that the query type checker can classify real
traces into supported and unsupported queries the way Table 3 of the paper
does, instead of failing at parse time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Union


# --------------------------------------------------------------------------- #
# Scalar expressions
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class ColumnRef:
    """Reference to a column by name (optionally qualified as table.column)."""

    name: str
    table: str | None = None

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Literal:
    """A literal value: number or string."""

    value: Union[int, float, str]


@dataclass(frozen=True)
class Star:
    """The ``*`` argument of COUNT(*) / FREQ(*)."""


@dataclass(frozen=True)
class BinaryOp:
    """Arithmetic over scalar expressions, used for derived measure attributes
    such as ``revenue * (1 - discount)``."""

    op: str  # one of + - * /
    left: "Expression"
    right: "Expression"


Expression = Union[ColumnRef, Literal, BinaryOp, Star]


def expression_columns(expr: Expression) -> list[ColumnRef]:
    """All column references inside a scalar expression, in appearance order."""
    if isinstance(expr, ColumnRef):
        return [expr]
    if isinstance(expr, BinaryOp):
        return expression_columns(expr.left) + expression_columns(expr.right)
    return []


# --------------------------------------------------------------------------- #
# Predicates
# --------------------------------------------------------------------------- #


class ComparisonOp(enum.Enum):
    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="


@dataclass(frozen=True)
class Comparison:
    """``column <op> literal`` (or derived expression vs literal)."""

    left: Expression
    op: ComparisonOp
    right: Expression


@dataclass(frozen=True)
class InPredicate:
    """``column IN (v1, v2, ...)``."""

    column: ColumnRef
    values: tuple[Union[int, float, str], ...]
    negated: bool = False


@dataclass(frozen=True)
class BetweenPredicate:
    """``column BETWEEN low AND high`` (inclusive on both ends)."""

    column: ColumnRef
    low: Union[int, float, str]
    high: Union[int, float, str]


@dataclass(frozen=True)
class LikePredicate:
    """``column LIKE pattern`` -- parsed but unsupported by Verdict."""

    column: ColumnRef
    pattern: str
    negated: bool = False


@dataclass(frozen=True)
class And:
    """Conjunction of predicates."""

    predicates: tuple["Predicate", ...]


@dataclass(frozen=True)
class Or:
    """Disjunction of predicates -- parsed but unsupported by Verdict."""

    predicates: tuple["Predicate", ...]


@dataclass(frozen=True)
class Not:
    """Negation -- parsed but unsupported by Verdict."""

    predicate: "Predicate"


Predicate = Union[Comparison, InPredicate, BetweenPredicate, LikePredicate, And, Or, Not]


def iter_predicates(predicate: Predicate | None) -> Iterator[Predicate]:
    """Yield every node in a predicate tree (pre-order)."""
    if predicate is None:
        return
    yield predicate
    if isinstance(predicate, And) or isinstance(predicate, Or):
        for child in predicate.predicates:
            yield from iter_predicates(child)
    elif isinstance(predicate, Not):
        yield from iter_predicates(predicate.predicate)


def conjunction(predicates: list[Predicate]) -> Predicate | None:
    """Combine a list of predicates into a single conjunctive predicate."""
    if not predicates:
        return None
    if len(predicates) == 1:
        return predicates[0]
    flat: list[Predicate] = []
    for predicate in predicates:
        if isinstance(predicate, And):
            flat.extend(predicate.predicates)
        else:
            flat.append(predicate)
    return And(tuple(flat))


def predicate_columns(predicate: Predicate | None) -> list[str]:
    """Names of columns referenced anywhere in a predicate tree."""
    names: list[str] = []
    for node in iter_predicates(predicate):
        if isinstance(node, Comparison):
            names.extend(c.name for c in expression_columns(node.left))
            names.extend(c.name for c in expression_columns(node.right))
        elif isinstance(node, (InPredicate, BetweenPredicate, LikePredicate)):
            names.append(node.column.name)
    return names


# --------------------------------------------------------------------------- #
# Aggregates and queries
# --------------------------------------------------------------------------- #


class AggregateFunction(enum.Enum):
    SUM = "SUM"
    COUNT = "COUNT"
    AVG = "AVG"
    MIN = "MIN"
    MAX = "MAX"
    # FREQ(*) is Verdict's internal aggregate (Section 2.3); exposing it in the
    # AST lets the internal snippet representation reuse the same types.
    FREQ = "FREQ"

    @property
    def verdict_supported(self) -> bool:
        """Whether Verdict can improve this aggregate (Section 2.2)."""
        return self in (
            AggregateFunction.SUM,
            AggregateFunction.COUNT,
            AggregateFunction.AVG,
            AggregateFunction.FREQ,
        )


@dataclass(frozen=True)
class Aggregate:
    """An aggregate function call, e.g. ``SUM(revenue * discount)``."""

    function: AggregateFunction
    argument: Expression
    distinct: bool = False

    @property
    def is_star(self) -> bool:
        return isinstance(self.argument, Star)


@dataclass(frozen=True)
class SelectItem:
    """One item of the select list: an aggregate or a plain column."""

    expression: Union[Aggregate, Expression]
    alias: str | None = None

    @property
    def is_aggregate(self) -> bool:
        return isinstance(self.expression, Aggregate)

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        expr = self.expression
        if isinstance(expr, Aggregate):
            if isinstance(expr.argument, Star):
                return f"{expr.function.value.lower()}_star"
            columns = expression_columns(expr.argument)
            suffix = columns[0].name if columns else "expr"
            return f"{expr.function.value.lower()}_{suffix}"
        if isinstance(expr, ColumnRef):
            return expr.name
        return "expr"


@dataclass(frozen=True)
class JoinClause:
    """``JOIN table ON left_column = right_column`` (foreign-key equi-join)."""

    table: str
    left_column: ColumnRef
    right_column: ColumnRef


@dataclass(frozen=True)
class Query:
    """A parsed SQL query.

    ``has_subquery`` is set by the parser when it detects a nested SELECT in
    the FROM or WHERE clause; nested queries are outside Verdict's supported
    class (Section 2.2) but must still be representable so traces can be
    classified.
    """

    select: tuple[SelectItem, ...]
    table: str
    joins: tuple[JoinClause, ...] = ()
    where: Predicate | None = None
    group_by: tuple[ColumnRef, ...] = ()
    having: Predicate | None = None
    has_subquery: bool = False
    text: str | None = field(default=None, compare=False)

    @property
    def aggregates(self) -> list[Aggregate]:
        """All aggregate expressions in the select list."""
        return [item.expression for item in self.select if item.is_aggregate]

    @property
    def non_aggregate_items(self) -> list[SelectItem]:
        """Select-list items that are not aggregates (projected group columns)."""
        return [item for item in self.select if not item.is_aggregate]

    @property
    def group_by_names(self) -> list[str]:
        return [c.name for c in self.group_by]
