"""SQL substrate: query AST, parser, supported-query checker, decomposition.

Verdict (Section 2.2) supports flat aggregate queries with SUM / COUNT / AVG
aggregates, conjunctive equality / inequality / IN predicates over numeric and
categorical attributes, foreign-key joins between one fact table and any
number of dimension tables, and group-by / having clauses.  Everything else
(MIN/MAX, disjunctions, LIKE filters, nested queries, DISTINCT aggregates)
parses but is flagged unsupported so the engine can pass it through untouched
and the generality experiments (Table 3) can count it.
"""

from repro.sqlparser.ast import (
    Aggregate,
    AggregateFunction,
    And,
    BetweenPredicate,
    BinaryOp,
    ColumnRef,
    Comparison,
    ComparisonOp,
    InPredicate,
    JoinClause,
    LikePredicate,
    Literal,
    Not,
    Or,
    Query,
    SelectItem,
    Star,
)
from repro.sqlparser.lexer import Token, TokenKind, tokenize
from repro.sqlparser.parser import parse_query
from repro.sqlparser.checker import CheckResult, QueryTypeChecker
from repro.sqlparser.decompose import SnippetSpec, decompose_query

__all__ = [
    "Aggregate",
    "AggregateFunction",
    "And",
    "BetweenPredicate",
    "BinaryOp",
    "ColumnRef",
    "Comparison",
    "ComparisonOp",
    "InPredicate",
    "JoinClause",
    "LikePredicate",
    "Literal",
    "Not",
    "Or",
    "Query",
    "SelectItem",
    "Star",
    "Token",
    "TokenKind",
    "tokenize",
    "parse_query",
    "CheckResult",
    "QueryTypeChecker",
    "SnippetSpec",
    "decompose_query",
]
