"""Recursive-descent parser for the supported SQL dialect.

The parser builds :class:`repro.sqlparser.ast.Query` objects.  It accepts a
slightly larger language than Verdict supports (MIN/MAX, OR, NOT, LIKE,
DISTINCT aggregates, nested SELECTs in FROM/WHERE) so that real traces can be
*classified* by :class:`repro.sqlparser.checker.QueryTypeChecker` rather than
rejected outright.  ORDER BY and LIMIT clauses are parsed and discarded since
they do not affect aggregate answers.
"""

from __future__ import annotations

from typing import Union

from repro.errors import SQLSyntaxError
from repro.sqlparser import ast
from repro.sqlparser.lexer import Token, TokenKind, tokenize

_AGGREGATE_KEYWORDS = {"SUM", "COUNT", "AVG", "MIN", "MAX", "FREQ"}
_COMPARISON_OPS = {
    "=": ast.ComparisonOp.EQ,
    "<>": ast.ComparisonOp.NE,
    "<": ast.ComparisonOp.LT,
    "<=": ast.ComparisonOp.LE,
    ">": ast.ComparisonOp.GT,
    ">=": ast.ComparisonOp.GE,
}


class _Parser:
    """Stateful recursive-descent parser over a token list."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.position = 0
        self.has_subquery = False

    # ------------------------------------------------------------- primitives

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        self.position += 1
        return token

    def expect_keyword(self, *names: str) -> Token:
        token = self.current
        if token.is_keyword(*names):
            return self.advance()
        raise SQLSyntaxError(
            f"expected {' or '.join(names)}, found {token.value!r}",
            position=token.position,
        )

    def expect_kind(self, kind: TokenKind) -> Token:
        token = self.current
        if token.kind is kind:
            return self.advance()
        raise SQLSyntaxError(
            f"expected {kind.value}, found {token.value!r}", position=token.position
        )

    def accept_keyword(self, *names: str) -> bool:
        if self.current.is_keyword(*names):
            self.advance()
            return True
        return False

    def accept_kind(self, kind: TokenKind) -> bool:
        if self.current.kind is kind:
            self.advance()
            return True
        return False

    # ------------------------------------------------------------ entry point

    def parse(self) -> ast.Query:
        query = self._parse_select()
        self.accept_kind(TokenKind.SEMICOLON)
        if self.current.kind is not TokenKind.EOF:
            raise SQLSyntaxError(
                f"unexpected trailing input {self.current.value!r}",
                position=self.current.position,
            )
        return query

    # ------------------------------------------------------------- select body

    def _parse_select(self) -> ast.Query:
        self.expect_keyword("SELECT")
        select_items = self._parse_select_list()
        self.expect_keyword("FROM")
        table = self._parse_table_ref()
        joins = self._parse_joins()
        where = None
        if self.accept_keyword("WHERE"):
            where = self._parse_predicate()
        group_by: tuple[ast.ColumnRef, ...] = ()
        having = None
        if self.current.is_keyword("GROUP"):
            self.advance()
            self.expect_keyword("BY")
            group_by = tuple(self._parse_column_list())
        if self.accept_keyword("HAVING"):
            having = self._parse_predicate()
        self._skip_order_and_limit()
        return ast.Query(
            select=tuple(select_items),
            table=table,
            joins=tuple(joins),
            where=where,
            group_by=group_by,
            having=having,
            has_subquery=self.has_subquery,
            text=self.text,
        )

    def _parse_select_list(self) -> list[ast.SelectItem]:
        items = [self._parse_select_item()]
        while self.accept_kind(TokenKind.COMMA):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> ast.SelectItem:
        expression = self._parse_select_expression()
        alias = None
        if self.accept_keyword("AS"):
            alias = str(self.expect_kind(TokenKind.IDENTIFIER).value)
        elif self.current.kind is TokenKind.IDENTIFIER:
            alias = str(self.advance().value)
        return ast.SelectItem(expression=expression, alias=alias)

    def _parse_select_expression(self) -> Union[ast.Aggregate, ast.Expression]:
        token = self.current
        if token.kind is TokenKind.KEYWORD and str(token.value) in _AGGREGATE_KEYWORDS:
            return self._parse_aggregate()
        return self._parse_expression()

    def _parse_aggregate(self) -> ast.Aggregate:
        function_token = self.advance()
        function = ast.AggregateFunction(str(function_token.value))
        self.expect_kind(TokenKind.LPAREN)
        distinct = self.accept_keyword("DISTINCT")
        if self.current.kind is TokenKind.STAR:
            self.advance()
            argument: ast.Expression = ast.Star()
        else:
            argument = self._parse_expression()
        self.expect_kind(TokenKind.RPAREN)
        return ast.Aggregate(function=function, argument=argument, distinct=distinct)

    # ------------------------------------------------------- scalar expressions

    def _parse_expression(self) -> ast.Expression:
        left = self._parse_term()
        while self.current.kind is TokenKind.OPERATOR and self.current.value in ("+", "-"):
            op = str(self.advance().value)
            right = self._parse_term()
            left = ast.BinaryOp(op=op, left=left, right=right)
        return left

    def _parse_term(self) -> ast.Expression:
        left = self._parse_factor()
        while (
            self.current.kind is TokenKind.OPERATOR and self.current.value == "/"
        ) or self.current.kind is TokenKind.STAR:
            if self.current.kind is TokenKind.STAR:
                op = "*"
                self.advance()
            else:
                op = str(self.advance().value)
            right = self._parse_factor()
            left = ast.BinaryOp(op=op, left=left, right=right)
        return left

    def _parse_factor(self) -> ast.Expression:
        token = self.current
        # Aggregate keywords not followed by "(" are ordinary column names
        # (real schemas do have columns called count, min, or max).
        if (
            token.kind is TokenKind.KEYWORD
            and str(token.value) in _AGGREGATE_KEYWORDS
            and self.tokens[self.position + 1].kind is not TokenKind.LPAREN
        ):
            self.advance()
            return ast.ColumnRef(name=str(token.value).lower())
        if token.kind is TokenKind.LPAREN:
            self.advance()
            if self.current.is_keyword("SELECT"):
                self._consume_subquery()
                return ast.Literal(0)
            expression = self._parse_expression()
            self.expect_kind(TokenKind.RPAREN)
            return expression
        if token.kind is TokenKind.NUMBER:
            self.advance()
            return ast.Literal(token.value)
        if token.kind is TokenKind.STRING:
            self.advance()
            return ast.Literal(str(token.value))
        if token.kind is TokenKind.OPERATOR and token.value == "-":
            self.advance()
            inner = self._parse_factor()
            if isinstance(inner, ast.Literal) and isinstance(inner.value, (int, float)):
                return ast.Literal(-inner.value)
            return ast.BinaryOp(op="-", left=ast.Literal(0), right=inner)
        if token.kind is TokenKind.IDENTIFIER:
            return self._parse_column_ref()
        raise SQLSyntaxError(
            f"unexpected token {token.value!r} in expression", position=token.position
        )

    def _parse_column_ref(self) -> ast.ColumnRef:
        first = str(self.expect_kind(TokenKind.IDENTIFIER).value)
        if self.current.kind is TokenKind.DOT:
            self.advance()
            second = str(self.expect_kind(TokenKind.IDENTIFIER).value)
            return ast.ColumnRef(name=second, table=first)
        return ast.ColumnRef(name=first)

    def _parse_column_list(self) -> list[ast.ColumnRef]:
        columns = [self._parse_column_ref()]
        while self.accept_kind(TokenKind.COMMA):
            columns.append(self._parse_column_ref())
        return columns

    # ------------------------------------------------------------- from / join

    def _parse_table_ref(self) -> str:
        if self.current.kind is TokenKind.LPAREN:
            self.advance()
            if self.current.is_keyword("SELECT"):
                self._consume_subquery()
                # optional alias after a derived table
                self.accept_keyword("AS")
                if self.current.kind is TokenKind.IDENTIFIER:
                    return str(self.advance().value)
                return "<subquery>"
            raise SQLSyntaxError(
                "expected SELECT in derived table", position=self.current.position
            )
        name = str(self.expect_kind(TokenKind.IDENTIFIER).value)
        # optional alias (ignored: the executor resolves unqualified names)
        if self.accept_keyword("AS"):
            self.expect_kind(TokenKind.IDENTIFIER)
        elif self.current.kind is TokenKind.IDENTIFIER:
            self.advance()
        return name

    def _parse_joins(self) -> list[ast.JoinClause]:
        joins: list[ast.JoinClause] = []
        while True:
            if self.current.is_keyword("INNER", "LEFT"):
                self.advance()
                self.accept_keyword("OUTER")
                self.expect_keyword("JOIN")
            elif self.current.is_keyword("JOIN"):
                self.advance()
            else:
                break
            table = str(self.expect_kind(TokenKind.IDENTIFIER).value)
            if self.accept_keyword("AS"):
                self.expect_kind(TokenKind.IDENTIFIER)
            elif self.current.kind is TokenKind.IDENTIFIER:
                self.advance()
            self.expect_keyword("ON")
            left = self._parse_column_ref()
            op_token = self.expect_kind(TokenKind.OPERATOR)
            if op_token.value != "=":
                raise SQLSyntaxError(
                    "only equi-joins are supported in ON clauses",
                    position=op_token.position,
                )
            right = self._parse_column_ref()
            joins.append(ast.JoinClause(table=table, left_column=left, right_column=right))
        return joins

    # -------------------------------------------------------------- predicates

    def _parse_predicate(self) -> ast.Predicate:
        return self._parse_or()

    def _parse_or(self) -> ast.Predicate:
        parts = [self._parse_and()]
        while self.accept_keyword("OR"):
            parts.append(self._parse_and())
        if len(parts) == 1:
            return parts[0]
        return ast.Or(tuple(parts))

    def _parse_and(self) -> ast.Predicate:
        parts = [self._parse_not()]
        while self.accept_keyword("AND"):
            parts.append(self._parse_not())
        if len(parts) == 1:
            return parts[0]
        return ast.And(tuple(parts))

    def _parse_not(self) -> ast.Predicate:
        if self.accept_keyword("NOT"):
            return ast.Not(self._parse_not())
        return self._parse_primary_predicate()

    def _parse_primary_predicate(self) -> ast.Predicate:
        if self.current.kind is TokenKind.LPAREN:
            # could be a parenthesised predicate or a scalar subexpression;
            # try predicate first by lookahead on SELECT.
            saved = self.position
            self.advance()
            if self.current.is_keyword("SELECT"):
                self._consume_subquery()
                return ast.Comparison(
                    left=ast.Literal(0), op=ast.ComparisonOp.EQ, right=ast.Literal(0)
                )
            self.position = saved
            # Parenthesised predicate: parse it as a full predicate.
            self.advance()
            inner = self._parse_predicate()
            self.expect_kind(TokenKind.RPAREN)
            return inner
        left = self._parse_expression()
        token = self.current
        if token.is_keyword("NOT"):
            self.advance()
            if self.current.is_keyword("IN"):
                return self._parse_in(left, negated=True)
            if self.current.is_keyword("LIKE"):
                return self._parse_like(left, negated=True)
            raise SQLSyntaxError(
                "expected IN or LIKE after NOT", position=self.current.position
            )
        if token.is_keyword("IN"):
            return self._parse_in(left, negated=False)
        if token.is_keyword("BETWEEN"):
            return self._parse_between(left)
        if token.is_keyword("LIKE"):
            return self._parse_like(left, negated=False)
        if token.kind is TokenKind.OPERATOR and str(token.value) in _COMPARISON_OPS:
            op = _COMPARISON_OPS[str(self.advance().value)]
            if self.current.kind is TokenKind.LPAREN:
                saved = self.position
                self.advance()
                if self.current.is_keyword("SELECT"):
                    self._consume_subquery()
                    return ast.Comparison(left=left, op=op, right=ast.Literal(0))
                self.position = saved
            right = self._parse_expression()
            return ast.Comparison(left=left, op=op, right=right)
        raise SQLSyntaxError(
            f"expected a predicate operator, found {token.value!r}",
            position=token.position,
        )

    def _require_column(self, expr: ast.Expression, context: str) -> ast.ColumnRef:
        if isinstance(expr, ast.ColumnRef):
            return expr
        raise SQLSyntaxError(f"{context} requires a column reference")

    def _parse_in(self, left: ast.Expression, negated: bool) -> ast.Predicate:
        column = self._require_column(left, "IN predicate")
        self.expect_keyword("IN")
        self.expect_kind(TokenKind.LPAREN)
        if self.current.is_keyword("SELECT"):
            self._consume_subquery(already_open=True)
            return ast.InPredicate(column=column, values=(), negated=negated)
        values: list[Union[int, float, str]] = []
        while True:
            token = self.current
            if token.kind in (TokenKind.NUMBER, TokenKind.STRING):
                self.advance()
                values.append(token.value if token.kind is TokenKind.NUMBER else str(token.value))
            else:
                raise SQLSyntaxError(
                    f"expected literal in IN list, found {token.value!r}",
                    position=token.position,
                )
            if self.accept_kind(TokenKind.COMMA):
                continue
            break
        self.expect_kind(TokenKind.RPAREN)
        return ast.InPredicate(column=column, values=tuple(values), negated=negated)

    def _parse_between(self, left: ast.Expression) -> ast.Predicate:
        column = self._require_column(left, "BETWEEN predicate")
        self.expect_keyword("BETWEEN")
        low = self._parse_literal_value()
        self.expect_keyword("AND")
        high = self._parse_literal_value()
        return ast.BetweenPredicate(column=column, low=low, high=high)

    def _parse_like(self, left: ast.Expression, negated: bool) -> ast.Predicate:
        column = self._require_column(left, "LIKE predicate")
        self.expect_keyword("LIKE")
        pattern = str(self.expect_kind(TokenKind.STRING).value)
        return ast.LikePredicate(column=column, pattern=pattern, negated=negated)

    def _parse_literal_value(self) -> Union[int, float, str]:
        token = self.current
        if token.kind is TokenKind.NUMBER:
            self.advance()
            return token.value
        if token.kind is TokenKind.STRING:
            self.advance()
            return str(token.value)
        if token.kind is TokenKind.OPERATOR and token.value == "-":
            self.advance()
            number = self.expect_kind(TokenKind.NUMBER)
            return -number.value
        raise SQLSyntaxError(
            f"expected literal, found {token.value!r}", position=token.position
        )

    # --------------------------------------------------------------- subqueries

    def _consume_subquery(self, already_open: bool = False) -> None:
        """Consume a nested SELECT up to its closing parenthesis.

        The opening parenthesis has already been consumed by the caller; the
        SELECT keyword is the current token.  Nested queries are not executed
        by this reproduction -- they only need to be detected so the checker
        can classify the query as unsupported.
        """
        self.has_subquery = True
        depth = 0 if already_open else 0
        # We are inside one open parenthesis already.
        depth += 1
        while depth > 0:
            token = self.advance()
            if token.kind is TokenKind.EOF:
                raise SQLSyntaxError("unterminated subquery", position=token.position)
            if token.kind is TokenKind.LPAREN:
                depth += 1
            elif token.kind is TokenKind.RPAREN:
                depth -= 1

    # ------------------------------------------------------------ order / limit

    def _skip_order_and_limit(self) -> None:
        if self.current.is_keyword("ORDER"):
            self.advance()
            self.expect_keyword("BY")
            self._parse_column_ref()
            self.accept_keyword("ASC", "DESC")
            while self.accept_kind(TokenKind.COMMA):
                self._parse_column_ref()
                self.accept_keyword("ASC", "DESC")
        if self.current.is_keyword("LIMIT"):
            self.advance()
            self.expect_kind(TokenKind.NUMBER)


def parse_query(text: str) -> ast.Query:
    """Parse a SQL string into a :class:`repro.sqlparser.ast.Query`.

    Raises
    ------
    SQLSyntaxError
        If the text cannot be tokenised or parsed.
    """
    return _Parser(text).parse()
