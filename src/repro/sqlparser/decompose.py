"""Decomposition of supported queries into query snippets (Section 2.3).

A query snippet is a supported query with a single aggregate function, no
other projected columns, and no group-by clause; its answer is a single scalar
(Definition 1).  A query with multiple aggregates and/or a group-by clause is
converted into one snippet per (aggregate function, group value) combination,
with each group value added as an equality predicate (Figure 3).

The group values themselves come from the result set produced by the AQP
engine, so decomposition takes the observed group rows as input.  The number
of generated snippets per query is bounded by ``N_max`` (1,000 by default);
improved answers are computed only for those snippets (Section 2.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

from repro.sqlparser import ast

GroupValue = Union[int, float, str]


@dataclass(frozen=True)
class SnippetSpec:
    """One query snippet produced by decomposition.

    Attributes
    ----------
    aggregate:
        The single aggregate function of this snippet.
    table / joins:
        Copied from the parent query.
    predicate:
        The parent WHERE predicate conjoined with equality predicates for this
        snippet's group-by values.
    group_values:
        Mapping from group-by column name to the pinned value (empty for
        queries without group-by).
    aggregate_index / group_index:
        Position of the aggregate in the select list and of the group row in
        the AQP result, used to map improved answers back onto result rows.
    """

    aggregate: ast.Aggregate
    table: str
    joins: tuple[ast.JoinClause, ...]
    predicate: ast.Predicate | None
    group_values: tuple[tuple[str, GroupValue], ...] = ()
    aggregate_index: int = 0
    group_index: int = 0

    @property
    def group_values_dict(self) -> dict[str, GroupValue]:
        return dict(self.group_values)

    def to_query(self) -> ast.Query:
        """Render the snippet back into a single-aggregate query AST."""
        return ast.Query(
            select=(ast.SelectItem(expression=self.aggregate),),
            table=self.table,
            joins=self.joins,
            where=self.predicate,
            group_by=(),
            having=None,
        )


def _group_equality_predicates(
    group_by: Sequence[ast.ColumnRef], values: Sequence[GroupValue]
) -> list[ast.Predicate]:
    """Equality predicates pinning each group-by column to its value."""
    predicates: list[ast.Predicate] = []
    for column, value in zip(group_by, values):
        predicates.append(
            ast.Comparison(
                left=ast.ColumnRef(name=column.name, table=column.table),
                op=ast.ComparisonOp.EQ,
                right=ast.Literal(value),
            )
        )
    return predicates


def decompose_query(
    query: ast.Query,
    group_rows: Sequence[Sequence[GroupValue]] | None = None,
    max_snippets: int = 1_000,
) -> list[SnippetSpec]:
    """Decompose ``query`` into snippet specifications.

    Parameters
    ----------
    query:
        A parsed, *supported* query (the caller is responsible for checking).
    group_rows:
        The group-value tuples present in the AQP answer, one per result row,
        each aligned with ``query.group_by``.  Required when the query has a
        group-by clause; ignored otherwise.
    max_snippets:
        ``N_max`` -- the bound on generated snippets per query.  Snippets are
        generated for aggregate functions in select-list order and group rows
        in result order until the bound is reached.

    Returns
    -------
    list[SnippetSpec]
        At most ``max_snippets`` snippet specifications.
    """
    if max_snippets <= 0:
        raise ValueError("max_snippets must be positive")

    aggregates = [
        (index, item.expression)
        for index, item in enumerate(query.select)
        if item.is_aggregate
    ]
    if not aggregates:
        return []

    base_predicates: list[ast.Predicate] = []
    if query.where is not None:
        base_predicates.append(query.where)

    specs: list[SnippetSpec] = []
    if not query.group_by:
        for aggregate_index, aggregate in aggregates:
            if len(specs) >= max_snippets:
                break
            specs.append(
                SnippetSpec(
                    aggregate=aggregate,
                    table=query.table,
                    joins=query.joins,
                    predicate=ast.conjunction(list(base_predicates)),
                    group_values=(),
                    aggregate_index=aggregate_index,
                    group_index=0,
                )
            )
        return specs

    rows = list(group_rows or [])
    for group_index, values in enumerate(rows):
        if len(values) != len(query.group_by):
            raise ValueError(
                f"group row {group_index} has {len(values)} values, expected "
                f"{len(query.group_by)}"
            )
        group_predicates = _group_equality_predicates(query.group_by, values)
        group_values = tuple(
            (column.name, value) for column, value in zip(query.group_by, values)
        )
        for aggregate_index, aggregate in aggregates:
            if len(specs) >= max_snippets:
                return specs
            specs.append(
                SnippetSpec(
                    aggregate=aggregate,
                    table=query.table,
                    joins=query.joins,
                    predicate=ast.conjunction(base_predicates + group_predicates),
                    group_values=group_values,
                    aggregate_index=aggregate_index,
                    group_index=group_index,
                )
            )
    return specs


def count_snippets(
    query: ast.Query, group_rows: Sequence[Sequence[GroupValue]] | None = None
) -> int:
    """Number of snippets the query would decompose into (unbounded)."""
    num_aggregates = len(query.aggregates)
    if not query.group_by:
        return num_aggregates
    return num_aggregates * len(list(group_rows or []))
