"""Tokeniser for the supported SQL dialect.

The lexer recognises identifiers, qualified identifiers, numeric and string
literals, comparison operators, arithmetic operators, parentheses, commas, and
the SQL keywords used by the parser.  Keywords are case-insensitive.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Union

from repro.errors import SQLSyntaxError


class TokenKind(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    COMMA = "comma"
    LPAREN = "lparen"
    RPAREN = "rparen"
    STAR = "star"
    DOT = "dot"
    SEMICOLON = "semicolon"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "SELECT",
        "FROM",
        "WHERE",
        "GROUP",
        "ORDER",
        "BY",
        "HAVING",
        "AND",
        "OR",
        "NOT",
        "IN",
        "BETWEEN",
        "LIKE",
        "AS",
        "JOIN",
        "INNER",
        "LEFT",
        "OUTER",
        "ON",
        "SUM",
        "COUNT",
        "AVG",
        "MIN",
        "MAX",
        "FREQ",
        "DISTINCT",
        "LIMIT",
        "ASC",
        "DESC",
        "NULL",
        "IS",
    }
)

_OPERATOR_CHARS = set("=<>!+-*/")
_TWO_CHAR_OPERATORS = {"<=", ">=", "<>", "!="}


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position."""

    kind: TokenKind
    value: Union[str, int, float]
    position: int

    def is_keyword(self, *names: str) -> bool:
        return self.kind is TokenKind.KEYWORD and str(self.value) in names

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.value!r}@{self.position})"


def _read_string(text: str, start: int) -> tuple[str, int]:
    """Read a single-quoted string literal starting at ``start``."""
    assert text[start] == "'"
    index = start + 1
    chars: list[str] = []
    while index < len(text):
        ch = text[index]
        if ch == "'":
            # doubled quote escapes a literal quote
            if index + 1 < len(text) and text[index + 1] == "'":
                chars.append("'")
                index += 2
                continue
            return "".join(chars), index + 1
        chars.append(ch)
        index += 1
    raise SQLSyntaxError("unterminated string literal", position=start)


def _read_number(text: str, start: int) -> tuple[Union[int, float], int]:
    """Read a numeric literal (integer or float, optional exponent)."""
    index = start
    seen_dot = False
    seen_exp = False
    while index < len(text):
        ch = text[index]
        if ch.isdigit():
            index += 1
        elif ch == "." and not seen_dot and not seen_exp:
            seen_dot = True
            index += 1
        elif ch in "eE" and not seen_exp and index > start:
            seen_exp = True
            index += 1
            if index < len(text) and text[index] in "+-":
                index += 1
        else:
            break
    raw = text[start:index]
    try:
        if seen_dot or seen_exp:
            return float(raw), index
        return int(raw), index
    except ValueError:
        raise SQLSyntaxError(f"invalid numeric literal {raw!r}", position=start) from None


def tokenize(text: str) -> list[Token]:
    """Tokenise ``text`` into a list of tokens ending with an EOF token."""
    tokens: list[Token] = []
    index = 0
    length = len(text)
    while index < length:
        ch = text[index]
        if ch.isspace():
            index += 1
            continue
        if ch == "'":
            value, index_after = _read_string(text, index)
            tokens.append(Token(TokenKind.STRING, value, index))
            index = index_after
            continue
        if ch.isdigit() or (
            ch == "." and index + 1 < length and text[index + 1].isdigit()
        ):
            value, index_after = _read_number(text, index)
            tokens.append(Token(TokenKind.NUMBER, value, index))
            index = index_after
            continue
        if ch.isalpha() or ch == "_":
            start = index
            while index < length and (text[index].isalnum() or text[index] == "_"):
                index += 1
            word = text[start:index]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenKind.KEYWORD, upper, start))
            else:
                tokens.append(Token(TokenKind.IDENTIFIER, word, start))
            continue
        if ch == ",":
            tokens.append(Token(TokenKind.COMMA, ",", index))
            index += 1
            continue
        if ch == "(":
            tokens.append(Token(TokenKind.LPAREN, "(", index))
            index += 1
            continue
        if ch == ")":
            tokens.append(Token(TokenKind.RPAREN, ")", index))
            index += 1
            continue
        if ch == ";":
            tokens.append(Token(TokenKind.SEMICOLON, ";", index))
            index += 1
            continue
        if ch == ".":
            tokens.append(Token(TokenKind.DOT, ".", index))
            index += 1
            continue
        if ch == "*":
            tokens.append(Token(TokenKind.STAR, "*", index))
            index += 1
            continue
        if ch in _OPERATOR_CHARS:
            two = text[index : index + 2]
            if two in _TWO_CHAR_OPERATORS:
                value = "<>" if two == "!=" else two
                tokens.append(Token(TokenKind.OPERATOR, value, index))
                index += 2
                continue
            tokens.append(Token(TokenKind.OPERATOR, ch, index))
            index += 1
            continue
        raise SQLSyntaxError(f"unexpected character {ch!r}", position=index)
    tokens.append(Token(TokenKind.EOF, "", length))
    return tokens


def iter_significant(tokens: list[Token]) -> Iterator[Token]:
    """Yield tokens excluding the trailing EOF (convenience for tests)."""
    for token in tokens:
        if token.kind is TokenKind.EOF:
            return
        yield token
