"""Fault plans: seeded, counted, env-activatable fault rules.

See :mod:`repro.faults` for the overview.  This module holds the mechanics:
the registry of known fault-point names, the rule/plan data model, the
process-global active plan, and the :func:`inject` hot path.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from dataclasses import dataclass

from repro.errors import FaultInjectedError

#: Environment variable holding a plan: inline JSON or ``@/path/to/file``.
ENV_VAR = "REPRO_FAULTS"

#: Exit code of an injected ``kill`` -- distinct from real signal deaths
#: (SIGKILL exits 137) so crash harnesses can assert the fault fired.
FAULT_EXIT_CODE = 86

#: Every fault point compiled into the stack.  Plans naming any other point
#: are rejected at parse time: a typo must fail the test that made it, not
#: silently never fire.
KNOWN_POINTS = frozenset(
    {
        # --- synopsis store (serve/store.py)
        "store.delta.append",  # writing one delta record (supports "torn")
        "store.delta.fsync",  # before fsyncing the delta log
        "store.delta.truncate",  # after snapshot publish, before log truncation
        "store.snapshot.write",  # writing the snapshot tmp file (supports "torn")
        "store.snapshot.fsync",  # before fsyncing the snapshot tmp file
        "store.snapshot.rename",  # before the tmp -> snapshot.json publish rename
        "store.replay.record",  # applying one delta record during restore
        "store.dir.fsync",  # before fsyncing a directory after a rename publish
        # --- replication (serve/replication/, serve/http/server.py)
        "repl.ship.snapshot",  # leader serving a bootstrap snapshot (supports "torn")
        "repl.ship.deltas",  # leader serving a non-empty delta tail (supports "torn")
        "repl.pull.cycle",  # follower starting one pull cycle
        "repl.apply.record",  # follower appending one shipped delta record
        "repl.apply.snapshot",  # follower installing a shipped snapshot
        "repl.promote",  # during promotion, after the puller stops
        # --- serving layer (serve/service.py)
        "service.route.learned",  # executing the learned route
        "service.route.online_agg",  # executing the online-aggregation route
        "service.route.exact",  # executing the exact route
        "service.submit",  # queueing a request on the worker pool
        "service.train",  # one background/foreground training round
        "service.flush",  # flushing learned state to the store
        # --- engines
        "aqp.batch",  # before each online-aggregation sample batch
        # --- HTTP front door (serve/http/server.py)
        "http.handler",  # dispatching one HTTP request
        "http.disconnect",  # the client-disconnect probe of an in-flight ask
        # --- resource governor (serve/governor.py)
        "governor.shed",  # shedding one request over a tenant quota
        "governor.cancel",  # delivering one POST /v1/cancel cancellation
    }
)

_ACTIONS = frozenset({"error", "kill", "delay", "torn"})


@dataclass(frozen=True)
class FaultRule:
    """One deterministic trigger: at ``point``, do ``action``.

    Parameters
    ----------
    point:
        A name from :data:`KNOWN_POINTS`.
    action:
        ``"error"`` | ``"kill"`` | ``"delay"`` | ``"torn"``.
    after:
        First hit (1-based, per point) at which the rule may fire --
        ``after=3`` skips the first two hits.
    times:
        Maximum number of firings (``None`` = unlimited).
    probability:
        Firing probability per eligible hit, drawn from a per-rule seeded
        stream (so the decision sequence is reproducible).
    delay_s:
        Sleep duration for ``delay`` actions.
    message:
        Carried into the raised error / returned directive.
    """

    point: str
    action: str
    after: int = 1
    times: int | None = None
    probability: float = 1.0
    delay_s: float = 0.0
    message: str = ""

    def __post_init__(self) -> None:
        if self.point not in KNOWN_POINTS:
            raise ValueError(
                f"unknown fault point {self.point!r} "
                f"(known: {', '.join(sorted(KNOWN_POINTS))})"
            )
        if self.action not in _ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r} (known: {sorted(_ACTIONS)})"
            )
        if self.after < 1:
            raise ValueError("after must be >= 1 (hits are 1-based)")
        if self.times is not None and self.times < 1:
            raise ValueError("times must be >= 1 when given")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        if self.delay_s < 0:
            raise ValueError("delay_s must be non-negative")


@dataclass(frozen=True)
class FaultDirective:
    """A fired rule handed back to the call site for caller-side actions."""

    rule: FaultRule

    @property
    def action(self) -> str:
        return self.rule.action


class FaultPlan:
    """A set of rules plus per-point hit/fire accounting (thread-safe)."""

    def __init__(self, rules: list[FaultRule] | tuple[FaultRule, ...] = (), seed: int = 0):
        self.rules = tuple(rules)
        self.seed = seed
        self._lock = threading.Lock()
        self._hits: dict[str, int] = {}
        self._fired: dict[int, int] = {}
        self._rngs = [
            random.Random(f"{seed}:{index}:{rule.point}")
            for index, rule in enumerate(self.rules)
        ]

    # ------------------------------------------------------------------ public

    def check(self, point: str) -> FaultRule | None:
        """Count one hit of ``point``; return the rule to fire, if any."""
        with self._lock:
            hit = self._hits.get(point, 0) + 1
            self._hits[point] = hit
            for index, rule in enumerate(self.rules):
                if rule.point != point or hit < rule.after:
                    continue
                fired = self._fired.get(index, 0)
                if rule.times is not None and fired >= rule.times:
                    continue
                if rule.probability < 1.0 and self._rngs[index].random() >= rule.probability:
                    continue
                self._fired[index] = fired + 1
                return rule
        return None

    def hits(self, point: str) -> int:
        """How many times ``point`` has been reached under this plan."""
        with self._lock:
            return self._hits.get(point, 0)

    def snapshot(self) -> dict:
        """Hit and firing counters, for assertions and metrics."""
        with self._lock:
            return {
                "hits": dict(self._hits),
                "fired": {
                    self.rules[index].point: count
                    for index, count in self._fired.items()
                },
            }


# --------------------------------------------------------------------------- #
# Plan parsing
# --------------------------------------------------------------------------- #


def plan_from_json(payload: str | dict) -> FaultPlan:
    """Build a plan from JSON text (or an already-parsed dict).

    Schema::

        {"seed": 7,
         "rules": [{"point": "store.delta.append", "action": "torn",
                    "after": 2, "times": 1, "probability": 1.0,
                    "delay_s": 0.0, "message": "..."}]}
    """
    if isinstance(payload, str):
        payload = json.loads(payload)
    if not isinstance(payload, dict):
        raise ValueError("fault plan must be a JSON object")
    unknown = set(payload) - {"seed", "rules"}
    if unknown:
        raise ValueError(f"unknown fault-plan fields {sorted(unknown)}")
    rules = []
    for spec in payload.get("rules", []):
        if not isinstance(spec, dict):
            raise ValueError("each fault rule must be a JSON object")
        extra = set(spec) - {
            "point",
            "action",
            "after",
            "times",
            "probability",
            "delay_s",
            "message",
        }
        if extra:
            raise ValueError(f"unknown fault-rule fields {sorted(extra)}")
        rules.append(FaultRule(**spec))
    return FaultPlan(rules, seed=int(payload.get("seed", 0)))


def plan_from_env(environ: dict | None = None) -> FaultPlan | None:
    """The plan named by ``REPRO_FAULTS``, or ``None`` when unset/empty."""
    value = (environ if environ is not None else os.environ).get(ENV_VAR, "").strip()
    if not value:
        return None
    if value.startswith("@"):
        with open(value[1:], encoding="utf-8") as handle:
            value = handle.read()
    return plan_from_json(value)


# --------------------------------------------------------------------------- #
# Process-global active plan + the inject hot path
# --------------------------------------------------------------------------- #

#: The active plan.  Initialised from the environment at import so a server
#: subprocess launched with ``REPRO_FAULTS=...`` injects without any code
#: cooperation from its entry point.
_PLAN: FaultPlan | None = plan_from_env()


def install(plan: FaultPlan) -> FaultPlan:
    """Activate ``plan`` process-wide (tests pair this with :func:`clear`)."""
    global _PLAN
    _PLAN = plan
    return plan


def clear() -> None:
    """Deactivate fault injection (restores the production fast path)."""
    global _PLAN
    _PLAN = None


def active_plan() -> FaultPlan | None:
    return _PLAN


def hard_exit(code: int = FAULT_EXIT_CODE) -> None:
    """Die *now*: no atexit hooks, no finally blocks, no flushing.

    A module-level function (not an inlined ``os._exit``) so in-process
    tests can monkeypatch it to observe would-be crashes.
    """
    os._exit(code)


def inject(point: str, **context) -> FaultDirective | None:
    """The fault point: a no-op unless an installed rule fires here.

    The disabled path -- the only one production ever takes -- is one
    global read and a ``None`` check.  When a rule fires, ``error`` raises
    :class:`~repro.errors.FaultInjectedError`, ``kill`` calls
    :func:`hard_exit`, ``delay`` sleeps, and anything else (``torn``) is
    returned as a :class:`FaultDirective` for the call site to interpret.
    ``context`` keyword values are carried into the error message.
    """
    plan = _PLAN
    if plan is None:
        return None
    rule = plan.check(point)
    if rule is None:
        return None
    detail = rule.message or ", ".join(f"{k}={v!r}" for k, v in sorted(context.items()))
    if rule.action == "delay":
        time.sleep(rule.delay_s)
        return None
    if rule.action == "error":
        raise FaultInjectedError(
            f"injected fault at {point}" + (f" ({detail})" if detail else "")
        )
    if rule.action == "kill":
        hard_exit(FAULT_EXIT_CODE)
    return FaultDirective(rule)
