"""Deterministic fault injection for crash and failure-path testing.

The serving/persistence stack is sprinkled with named **fault points** --
one call to :func:`inject` at each place where the real world can go wrong
(a torn delta write, a failed rename, a route that blows up, a trainer
thread that dies).  In production the calls are inert: with no plan
installed, :func:`inject` is a single attribute read and a ``None`` check.

Under test, a :class:`~repro.faults.plan.FaultPlan` maps fault points to
deterministic actions:

``error``
    raise :class:`~repro.errors.FaultInjectedError` (drives fallback and
    breaker paths);
``kill``
    terminate the process immediately via ``os._exit`` (drives the
    SIGKILL-equivalent crash-matrix tests; exit code :data:`FAULT_EXIT_CODE`
    so harnesses can tell an injected crash from a real one);
``delay``
    sleep ``delay_s`` seconds then continue (drives deadline expiry
    deterministically);
``torn``
    returned to the *caller* as a :class:`~repro.faults.plan.FaultDirective`
    -- only write sites know how to half-write their own payload before
    dying, so they interpret it themselves.

Plans are activatable in-process (:func:`install`) or -- the part that
makes subprocess crash tests possible -- via the ``REPRO_FAULTS``
environment variable holding either inline JSON or ``@/path/to/plan.json``.
Rules trigger deterministically: per-point hit counters, an ``after``
threshold, a ``times`` cap, and an optional probability drawn from a
seeded per-rule stream, so the same plan over the same request sequence
always fires at the same operations.
"""

from repro.faults.plan import (
    ENV_VAR,
    FAULT_EXIT_CODE,
    KNOWN_POINTS,
    FaultDirective,
    FaultPlan,
    FaultRule,
    active_plan,
    clear,
    hard_exit,
    inject,
    install,
    plan_from_env,
    plan_from_json,
)

__all__ = [
    "ENV_VAR",
    "FAULT_EXIT_CODE",
    "KNOWN_POINTS",
    "FaultDirective",
    "FaultPlan",
    "FaultRule",
    "active_plan",
    "clear",
    "hard_exit",
    "inject",
    "install",
    "plan_from_env",
    "plan_from_json",
]
