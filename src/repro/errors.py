"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming errors
such as ``TypeError`` raised by misuse of the Python API itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A table schema is inconsistent or a referenced column does not exist."""


class TableError(ReproError):
    """A columnar table operation failed (bad lengths, bad dtypes, ...)."""


class CatalogError(ReproError):
    """A database catalog operation failed (unknown table, bad join spec, ...)."""


class ExpressionError(ReproError):
    """A predicate or derived-attribute expression could not be evaluated."""


class SQLSyntaxError(ReproError):
    """The SQL text could not be tokenised or parsed."""

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class UnsupportedQueryError(ReproError):
    """The query parses but is outside Verdict's supported class.

    The ``reasons`` attribute lists the individual unsupported constructs so
    that generality experiments (Table 3) can report *why* a query was
    rejected.
    """

    def __init__(self, message: str, reasons: list[str] | None = None):
        super().__init__(message)
        self.reasons = list(reasons or [])


class AQPError(ReproError):
    """The underlying AQP engine failed to produce a raw answer."""


class InferenceError(ReproError):
    """Verdict's inference could not be carried out (singular covariance, ...)."""


class LearningError(ReproError):
    """Correlation-parameter learning failed."""


class SynopsisError(ReproError):
    """The query synopsis was used inconsistently."""


class StoreError(ReproError):
    """The persistent synopsis store is missing, corrupt, or incompatible."""


class ServiceError(ReproError):
    """The serving layer was misused (closed service, bad budget, ...)."""


class DeadlineExceeded(ReproError):
    """A request's wall-clock deadline expired before any answer existed.

    Raised only when there is *nothing* to return: when a partial estimate
    exists the serving layer returns it flagged as degraded instead.  Mapped
    to HTTP 504 by the front door.
    """


class QueryCancelled(ReproError):
    """A request was cancelled (explicit cancel or client disconnect).

    Deliberately distinct from :class:`DeadlineExceeded`: a deadline expiry
    can still yield a degraded partial answer, but a cancellation means
    nobody is listening -- the serving layer aborts outright, records and
    caches nothing, and the front door maps it to HTTP 499.  ``reason`` is
    ``"requested"`` (POST /v1/cancel) or ``"disconnected"`` (the client hung
    up mid-query).
    """

    def __init__(self, message: str, reason: str = "requested"):
        super().__init__(message)
        self.reason = reason


class ReplicationError(ReproError):
    """Leader/follower WAL shipping failed (torn record, bad metadata, ...)."""


class EpochFencedError(ReplicationError):
    """A write or shipped record carries a stale or divergent fencing epoch.

    This is the split-brain hard error: after a promotion bumps the fencing
    epoch, anything still stamped with the old epoch -- a deposed leader's
    late write, a record shipped from a superseded lineage -- is rejected
    outright rather than silently merged.  ``local`` and ``remote`` carry
    the two ``(epoch, lineage)`` pairs involved, when known.
    """

    def __init__(
        self,
        message: str,
        local: tuple[int, str] | None = None,
        remote: tuple[int, str] | None = None,
    ):
        super().__init__(message)
        self.local = local
        self.remote = remote


class ReplicationGapError(ReplicationError):
    """Shipped records do not follow on from the follower's applied state.

    Raised on a sequence or version-chain gap during apply; the follower
    recovers by re-bootstrapping from a fresh leader snapshot.
    """


class ReadOnlyFollowerError(ReplicationError):
    """A mutating request reached a read-only follower.

    ``leader``, when known, is the leader endpoint the client should retry
    against (surfaced as the ``leader`` hint in the HTTP error body).
    """

    def __init__(self, message: str, leader: str | None = None):
        super().__init__(message)
        self.leader = leader


class FaultInjectedError(ReproError):
    """An injected fault fired (``action: "error"`` in a fault plan).

    Deliberately a :class:`ReproError` subclass: injected route failures
    must flow through exactly the fallback paths real engine failures take.
    """
