"""Experiment runner: NoLearn vs Verdict over a query trace.

The runner reproduces the experimental procedure of Section 8.3:

1. process the first half of the trace (the *training* queries): NoLearn just
   answers them, Verdict additionally keeps their raw answers in the query
   synopsis;
2. run the offline step (parameter learning + covariance factorisation);
3. for each remaining (*test*) query, run online aggregation and record, after
   every batch, the elapsed model time, the average relative error bound, and
   the average actual relative error -- once for the raw (NoLearn) answers and
   once for Verdict's improved answers computed from the very same raw
   answers;
4. derive speedups (time until a target error bound is reached) and error
   reductions (lowest bound reached within a time budget) from those
   per-batch profiles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence, Union

from repro.aqp.estimators import confidence_multiplier
from repro.aqp.online_agg import OnlineAggregationEngine
from repro.aqp.time_bound import TimeBoundEngine
from repro.aqp.types import AQPAnswer
from repro.config import CostModelConfig, SamplingConfig, VerdictConfig
from repro.core.engine import VerdictAnswer, VerdictEngine
from repro.db.catalog import Catalog
from repro.db.executor import ExactExecutor, QueryResult
from repro.experiments.metrics import actual_relative_error
from repro.sqlparser import ast


@dataclass(frozen=True)
class ProfilePoint:
    """One point of a runtime-vs-error profile (one online-aggregation batch)."""

    elapsed_seconds: float
    relative_error_bound: float
    actual_relative_error: float


@dataclass
class QueryRunResult:
    """Per-query outcome: the NoLearn and Verdict profiles plus cell details."""

    sql: str
    supported: bool
    baseline: list[ProfilePoint] = field(default_factory=list)
    verdict: list[ProfilePoint] = field(default_factory=list)
    verdict_cells: list[tuple[float, float]] = field(default_factory=list)
    baseline_cells: list[tuple[float, float]] = field(default_factory=list)
    overhead_seconds: float = 0.0

    def final_baseline(self) -> ProfilePoint:
        return self.baseline[-1]

    def final_verdict(self) -> ProfilePoint:
        return self.verdict[-1]


class ExperimentRunner:
    """Drives NoLearn (online aggregation) and Verdict over the same trace."""

    def __init__(
        self,
        catalog: Catalog,
        sampling: SamplingConfig | None = None,
        cost_model: CostModelConfig | None = None,
        config: VerdictConfig | None = None,
        confidence: float = 0.95,
        vectorized: bool = True,
    ):
        self.catalog = catalog
        self.aqp = OnlineAggregationEngine(
            catalog, sampling=sampling, cost_model=cost_model, vectorized=vectorized
        )
        self.time_bound_engine = TimeBoundEngine(
            catalog,
            sampling=sampling,
            cost_model=cost_model,
            sample_store=self.aqp.samples,
            vectorized=vectorized,
        )
        self.verdict = VerdictEngine(
            catalog, self.aqp, config=config, time_bound_engine=self.time_bound_engine
        )
        self.exact = ExactExecutor(catalog, vectorized=vectorized)
        self.confidence = confidence
        self.multiplier = confidence_multiplier(confidence)
        self._exact_cache: dict[ast.Query, QueryResult] = {}

    # ---------------------------------------------------------------- training

    def train_on(self, queries: Sequence[Union[str, ast.Query]], learn: bool = True) -> int:
        """Process training queries: record their raw snippets, then train.

        Returns the number of supported training queries recorded.
        """
        recorded = 0
        for query in queries:
            parsed, check = self.verdict.check(query)
            if not check.supported:
                continue
            raw = self.aqp.final_answer(parsed)
            self.verdict.record(parsed, raw)
            recorded += 1
        self.verdict.train(learn)
        return recorded

    # -------------------------------------------------------------- evaluation

    def evaluate(
        self,
        queries: Sequence[Union[str, ast.Query]],
        record: bool = True,
        max_batches: int | None = None,
    ) -> list[QueryRunResult]:
        """Run test queries, producing per-batch NoLearn and Verdict profiles."""
        return [self.evaluate_query(query, record=record, max_batches=max_batches) for query in queries]

    def evaluate_query(
        self,
        query: Union[str, ast.Query],
        record: bool = True,
        max_batches: int | None = None,
    ) -> QueryRunResult:
        parsed, check = self.verdict.check(query)
        exact = self._exact_for(parsed)
        result = QueryRunResult(
            sql=parsed.text or "", supported=check.supported
        )
        last_raw: AQPAnswer | None = None
        for raw in self.aqp.run(parsed):
            last_raw = raw
            baseline_cells = self._aqp_cells(raw, exact)
            result.baseline.append(
                ProfilePoint(
                    elapsed_seconds=raw.elapsed_seconds,
                    relative_error_bound=raw.mean_relative_error_bound(self.multiplier),
                    actual_relative_error=actual_relative_error(baseline_cells),
                )
            )
            verdict_answer = self.verdict.process_answer(parsed, raw, check)
            verdict_cells = self._verdict_cells(verdict_answer, exact)
            result.verdict.append(
                ProfilePoint(
                    elapsed_seconds=verdict_answer.elapsed_seconds,
                    relative_error_bound=verdict_answer.mean_relative_error_bound(self.multiplier),
                    actual_relative_error=actual_relative_error(verdict_cells),
                )
            )
            result.overhead_seconds += verdict_answer.overhead_seconds
            result.baseline_cells.extend(
                self._bound_vs_actual_cells_aqp(raw, exact)
            )
            result.verdict_cells.extend(
                self._bound_vs_actual_cells_verdict(verdict_answer, exact)
            )
            if max_batches is not None and raw.batches_processed >= max_batches:
                break
        if record and check.supported and last_raw is not None:
            self.verdict.record(parsed, last_raw)
        return result

    def evaluate_time_bound(
        self,
        query: Union[str, ast.Query],
        time_budget_s: float,
        record: bool = True,
    ) -> tuple[ProfilePoint, ProfilePoint]:
        """Figure 11: NoLearn vs Verdict on a time-bound engine, same budget."""
        parsed, check = self.verdict.check(query)
        exact = self._exact_for(parsed)
        baseline_raw = self.time_bound_engine.execute(parsed, time_budget_s)
        baseline_point = ProfilePoint(
            elapsed_seconds=baseline_raw.elapsed_seconds,
            relative_error_bound=baseline_raw.mean_relative_error_bound(self.multiplier),
            actual_relative_error=actual_relative_error(self._aqp_cells(baseline_raw, exact)),
        )
        verdict_answer = self.verdict.execute_time_bound(
            parsed, time_budget_s, record=record
        )
        verdict_point = ProfilePoint(
            elapsed_seconds=verdict_answer.elapsed_seconds,
            relative_error_bound=verdict_answer.mean_relative_error_bound(self.multiplier),
            actual_relative_error=actual_relative_error(
                self._verdict_cells(verdict_answer, exact)
            ),
        )
        return baseline_point, verdict_point

    # ---------------------------------------------------------------- counters

    def scan_report(self) -> dict:
        """Partition/pruning counters: this runner's exact scans + process totals.

        ``exact_executor`` covers the ground-truth scans this runner issued;
        ``process`` is the process-wide accumulation across every engine
        (exact, online aggregation, serving), the same counters
        ``repro.serve.metrics.ServiceMetrics`` snapshots.
        """
        from repro.db.scan import scan_counters_snapshot

        return {
            "exact_executor": self.exact.scan_counters.snapshot(),
            "process": scan_counters_snapshot(),
        }

    # ----------------------------------------------------------------- helpers

    def _exact_for(self, query: ast.Query) -> QueryResult:
        if query not in self._exact_cache:
            self._exact_cache[query] = self.exact.execute(query)
        return self._exact_cache[query]

    def _aqp_cells(self, answer: AQPAnswer, exact: QueryResult) -> list[tuple[float, float]]:
        exact_by_group = exact.by_group()
        cells: list[tuple[float, float]] = []
        for row in answer.rows:
            exact_row = exact_by_group.get(row.group_values)
            if exact_row is None:
                continue
            for name, estimate in row.estimates.items():
                if name in exact_row.aggregates:
                    cells.append((estimate.value, exact_row.aggregates[name]))
        return cells

    def _verdict_cells(
        self, answer: VerdictAnswer, exact: QueryResult
    ) -> list[tuple[float, float]]:
        exact_by_group = exact.by_group()
        cells: list[tuple[float, float]] = []
        for row in answer.rows:
            exact_row = exact_by_group.get(row.group_values)
            if exact_row is None:
                continue
            for name, estimate in row.estimates.items():
                if name in exact_row.aggregates:
                    cells.append((estimate.value, exact_row.aggregates[name]))
        return cells

    def _bound_vs_actual_cells_aqp(
        self, answer: AQPAnswer, exact: QueryResult
    ) -> list[tuple[float, float]]:
        """(relative error bound, actual relative error) per cell."""
        exact_by_group = exact.by_group()
        pairs: list[tuple[float, float]] = []
        for row in answer.rows:
            exact_row = exact_by_group.get(row.group_values)
            if exact_row is None:
                continue
            for name, estimate in row.estimates.items():
                truth = exact_row.aggregates.get(name)
                if truth is None or abs(truth) < 1e-12:
                    continue
                bound = estimate.relative_error_bound(self.multiplier)
                actual = abs(estimate.value - truth) / abs(truth)
                if math.isfinite(bound):
                    pairs.append((bound, actual))
        return pairs

    def _bound_vs_actual_cells_verdict(
        self, answer: VerdictAnswer, exact: QueryResult
    ) -> list[tuple[float, float]]:
        exact_by_group = exact.by_group()
        pairs: list[tuple[float, float]] = []
        for row in answer.rows:
            exact_row = exact_by_group.get(row.group_values)
            if exact_row is None:
                continue
            for name, estimate in row.estimates.items():
                truth = exact_row.aggregates.get(name)
                if truth is None or abs(truth) < 1e-12:
                    continue
                bound = estimate.relative_error_bound(self.multiplier)
                actual = abs(estimate.value - truth) / abs(truth)
                if math.isfinite(bound):
                    pairs.append((bound, actual))
        return pairs


# --------------------------------------------------------------------------- #
# Profile analysis helpers
# --------------------------------------------------------------------------- #


def time_to_reach_bound(profile: Sequence[ProfilePoint], target_bound: float) -> float:
    """Elapsed model time until the error bound first drops to ``target_bound``.

    If the bound is never reached, the profile's final elapsed time is
    returned (matching how a user would wait for the full sample scan).
    """
    for point in profile:
        if point.relative_error_bound <= target_bound:
            return point.elapsed_seconds
    return profile[-1].elapsed_seconds if profile else float("inf")


def error_bound_at_time(profile: Sequence[ProfilePoint], time_budget_s: float) -> float:
    """Lowest error bound achieved within ``time_budget_s`` model seconds.

    If even the first batch exceeds the budget, the first batch's bound is
    returned (a query cannot return without processing at least one batch).
    """
    best: float | None = None
    for point in profile:
        if point.elapsed_seconds <= time_budget_s:
            best = point.relative_error_bound if best is None else min(best, point.relative_error_bound)
    if best is None:
        return profile[0].relative_error_bound if profile else float("inf")
    return best


def actual_error_at_time(profile: Sequence[ProfilePoint], time_budget_s: float) -> float:
    """Actual relative error of the last answer within ``time_budget_s``."""
    chosen: ProfilePoint | None = None
    for point in profile:
        if point.elapsed_seconds <= time_budget_s:
            chosen = point
    if chosen is None:
        return profile[0].actual_relative_error if profile else float("inf")
    return chosen.actual_relative_error


# --------------------------------------------------------------------------- #
# Serving-mode replay
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class ServeReplayReport:
    """Outcome of replaying a query trace through a :class:`VerdictService`."""

    queries: int
    failures: int
    wall_seconds: float
    queries_per_second: float
    metrics: dict


def replay_trace_through_service(
    service,
    queries: Sequence[Union[str, ast.Query]],
    budget=None,
    record: bool = False,
) -> ServeReplayReport:
    """Replay a trace through a service's worker pool and report throughput.

    Every query is submitted to the service's bounded worker pool, so the
    measured wall-clock throughput reflects the concurrency the service
    actually provides.  Per-route latency histograms accumulate in
    ``service.metrics`` (returned in the report as a plain dict).

    Parameters
    ----------
    service:
        A started :class:`repro.serve.service.VerdictService`.
    queries:
        The trace to replay, in order of submission.
    budget:
        Optional :class:`repro.serve.planner.ServiceBudget` applied to every
        request.
    record:
        Whether served queries are recorded into the synopsis (off by
        default: replay measures serving, not ingestion).
    """
    import time as _time

    from repro.errors import ReproError

    futures = []
    started = _time.perf_counter()
    for query in queries:
        futures.append(service.submit(query, budget, record))
    failures = 0
    for future in futures:
        try:
            future.result()
        except ReproError:
            failures += 1
    wall = _time.perf_counter() - started
    served = len(queries) - failures
    return ServeReplayReport(
        queries=len(queries),
        failures=failures,
        wall_seconds=wall,
        queries_per_second=served / wall if wall > 0 else 0.0,
        metrics=service.metrics.as_dict(),
    )


def replay_trace_through_client(
    host: str,
    port: int,
    tenant: str,
    queries: Sequence[str],
    concurrency: int = 8,
    max_relative_error: float | None = None,
    max_latency_s: float | None = None,
    record: bool | None = False,
    timeout_s: float = 60.0,
    warmup: bool = True,
) -> ServeReplayReport:
    """Replay a trace over the wire: N client threads against a live server.

    The HTTP twin of :func:`replay_trace_through_service`: the same trace,
    but each query travels through :class:`repro.serve.client.VerdictClient`
    to a running :class:`repro.serve.http.VerdictHTTPServer`, so the
    measured throughput includes JSON serialisation, the socket round trip,
    and admission control.  Queries are dealt round-robin to ``concurrency``
    threads, each owning one keep-alive client connection (the client is not
    thread-safe).  Requests shed with 429 are retried by the client's
    backoff; the report's ``metrics`` carries client-side latencies
    (seconds) per query index under ``"client_latencies"``.

    With ``warmup`` (the default) every worker establishes its connection
    with a health probe and the fleet synchronises on a barrier before the
    clock starts, so the reported throughput measures steady-state serving
    rather than N simultaneous TCP handshakes.
    """
    import threading
    import time as _time

    from repro.serve.client import ClientError, VerdictClient

    latencies: list[float | None] = [None] * len(queries)
    failures = [0] * concurrency
    ready = threading.Barrier(concurrency + 1) if warmup else None

    def worker(worker_index: int) -> None:
        client = VerdictClient(
            host=host,
            port=port,
            tenant=tenant,
            timeout_s=timeout_s,
            seed=worker_index,
        )
        with client:
            if ready is not None:
                try:
                    client.health()  # connect + first exchange off the clock
                finally:
                    ready.wait(timeout=timeout_s)
            for index in range(worker_index, len(queries), concurrency):
                started = _time.perf_counter()
                try:
                    client.ask(
                        queries[index],
                        max_relative_error=max_relative_error,
                        max_latency_s=max_latency_s,
                        record=record,
                    )
                except ClientError:
                    failures[worker_index] += 1
                    continue
                latencies[index] = _time.perf_counter() - started

    threads = [
        threading.Thread(target=worker, args=(index,)) for index in range(concurrency)
    ]
    started = _time.perf_counter()
    for thread in threads:
        thread.start()
    if ready is not None:
        ready.wait(timeout=timeout_s)
        started = _time.perf_counter()  # every connection is warm: go
    for thread in threads:
        thread.join()
    wall = _time.perf_counter() - started
    failed = sum(failures)
    served = len(queries) - failed
    return ServeReplayReport(
        queries=len(queries),
        failures=failed,
        wall_seconds=wall,
        queries_per_second=served / wall if wall > 0 else 0.0,
        metrics={
            "client_latencies": [value for value in latencies if value is not None],
            "concurrency": concurrency,
        },
    )


def _serve_main(argv: Sequence[str] | None = None) -> int:
    """CLI: replay a Customer1 trace through a live ``VerdictService``.

    ``python -m repro.experiments.runner --serve`` builds the Customer1-like
    workload, ingests the first half of its trace (record + train), then
    replays the second half through the concurrent service and prints the
    per-route serving metrics.
    """
    import argparse
    import json

    from repro.config import CostModelConfig as _CostModel
    from repro.serve import ServiceBudget, SynopsisStore, VerdictService
    from repro.workloads.customer1 import Customer1Workload

    parser = argparse.ArgumentParser(description=_serve_main.__doc__)
    parser.add_argument("--serve", action="store_true", help="run the serving replay")
    parser.add_argument("--rows", type=int, default=20_000, help="fact table rows")
    parser.add_argument("--queries", type=int, default=60, help="trace length")
    parser.add_argument("--workers", type=int, default=4, help="service worker threads")
    parser.add_argument(
        "--error-budget", type=float, default=0.05, help="max relative error bound"
    )
    parser.add_argument(
        "--store-dir", default=None, help="persist learned state to this directory"
    )
    args = parser.parse_args(argv)
    if not args.serve:
        parser.error("this entry point only implements --serve")

    workload = Customer1Workload(num_rows=args.rows, seed=21)
    catalog = workload.build_catalog()
    sampling = SamplingConfig(sample_ratio=0.2, num_batches=5, seed=1)
    store = SynopsisStore(args.store_dir) if args.store_dir else None
    service = VerdictService(
        catalog,
        store=store,
        sampling=sampling,
        cost_model=_CostModel.scaled_for(int(args.rows * sampling.sample_ratio)),
        config=VerdictConfig(learn_length_scales=False),
        max_workers=args.workers,
    )
    trace = workload.generate_trace(num_queries=args.queries, seed=22)
    split = len(trace) // 2
    with service:
        for query in trace[:split]:
            service.record_answer(query.sql)
        service.train()
        report = replay_trace_through_service(
            service,
            [query.sql for query in trace[split:]],
            budget=ServiceBudget.interactive(args.error_budget),
        )
    print(
        json.dumps(
            {
                "queries": report.queries,
                "failures": report.failures,
                "wall_seconds": report.wall_seconds,
                "queries_per_second": report.queries_per_second,
                "metrics": report.metrics,
            },
            indent=2,
        )
    )
    return 0


def aggregate_profile_by_batch(
    results: Iterable[QueryRunResult], engine: str = "verdict"
) -> list[ProfilePoint]:
    """Average the per-batch profiles of many queries (Figure 4's curves)."""
    profiles = [
        result.verdict if engine == "verdict" else result.baseline
        for result in results
        if result.supported
    ]
    profiles = [p for p in profiles if p]
    if not profiles:
        return []
    num_batches = min(len(profile) for profile in profiles)
    aggregated: list[ProfilePoint] = []
    for index in range(num_batches):
        elapsed = sum(profile[index].elapsed_seconds for profile in profiles) / len(profiles)
        bound = sum(profile[index].relative_error_bound for profile in profiles) / len(profiles)
        actual = sum(profile[index].actual_relative_error for profile in profiles) / len(profiles)
        aggregated.append(
            ProfilePoint(
                elapsed_seconds=elapsed,
                relative_error_bound=bound,
                actual_relative_error=actual,
            )
        )
    return aggregated


if __name__ == "__main__":  # pragma: no cover - exercised via CI smoke runs
    import sys

    sys.exit(_serve_main())
