"""Error and speedup metrics used throughout the experiment harness.

The paper reports *relative* errors (Section 8.3): error bounds relative to
the estimate's magnitude and actual errors relative to the exact answer.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def relative_error(estimate: float, truth: float) -> float:
    """``|estimate - truth| / |truth|``; infinite when the truth is ~zero but
    the estimate is not."""
    if abs(truth) < 1e-12:
        return 0.0 if abs(estimate) < 1e-12 else float("inf")
    return abs(estimate - truth) / abs(truth)


def actual_relative_error(
    cells: Iterable[tuple[float, float]],
) -> float:
    """Mean relative error over ``(estimate, truth)`` cells, ignoring cells
    whose truth is ~zero (their relative error is undefined)."""
    errors = [
        relative_error(estimate, truth)
        for estimate, truth in cells
        if abs(truth) >= 1e-12
    ]
    finite = [e for e in errors if math.isfinite(e)]
    if not finite:
        return 0.0
    return sum(finite) / len(finite)


def error_reduction(baseline_error: float, improved_error: float) -> float:
    """Percentage reduction of ``improved_error`` relative to ``baseline_error``.

    Matches the paper's "error reduction" columns (e.g. 90.2% in Table 4).
    Returns 0 when the baseline error is already ~zero.
    """
    if baseline_error <= 1e-15:
        return 0.0
    return 100.0 * (baseline_error - improved_error) / baseline_error


def speedup(baseline_seconds: float, improved_seconds: float) -> float:
    """``baseline / improved`` runtime ratio (the paper's "Speedup" column)."""
    if improved_seconds <= 0:
        return float("inf")
    return baseline_seconds / improved_seconds


def bound_violation_rate(
    pairs: Sequence[tuple[float, float]],
) -> float:
    """Fraction of ``(error_bound, actual_error)`` pairs with actual > bound.

    At 95% confidence a correct system keeps this below roughly 0.05
    (Section 8.4, Figure 5).
    """
    if not pairs:
        return 0.0
    violations = sum(1 for bound, actual in pairs if actual > bound + 1e-12)
    return violations / len(pairs)


def percentile(values: Sequence[float], fraction: float) -> float:
    """Simple percentile helper (linear interpolation), fraction in [0, 1]."""
    if not values:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    ordered = sorted(values)
    position = fraction * (len(ordered) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    if lower == upper:
        return ordered[lower]
    weight = position - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight
