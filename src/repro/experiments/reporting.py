"""Plain-text reporting of experiment results.

The benchmark scripts print the same rows and series the paper's tables and
figures report; these helpers keep the formatting consistent.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str | None = None
) -> str:
    """Render an aligned, pipe-separated text table."""
    string_rows = [[_stringify(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in string_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths[: len(headers)]))
    for row in string_rows:
        lines.append(
            " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_series(
    name: str, points: Sequence[tuple[float, float]], x_label: str = "x", y_label: str = "y"
) -> str:
    """Render an (x, y) series as aligned text (one figure curve)."""
    lines = [f"{name}  ({x_label} -> {y_label})"]
    for x, y in points:
        lines.append(f"  {_stringify(x):>12}  ->  {_stringify(y)}")
    return "\n".join(lines)


def _stringify(value: object) -> str:
    if isinstance(value, float):
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)
