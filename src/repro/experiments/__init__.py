"""Experiment harness: runs workloads through NoLearn and Verdict and
computes the metrics reported in the paper's tables and figures."""

from repro.experiments.metrics import (
    actual_relative_error,
    bound_violation_rate,
    error_reduction,
    relative_error,
    speedup,
)
from repro.experiments.runner import (
    ExperimentRunner,
    ProfilePoint,
    QueryRunResult,
    aggregate_profile_by_batch,
    error_bound_at_time,
    time_to_reach_bound,
)
from repro.experiments.reporting import format_table, format_series

__all__ = [
    "relative_error",
    "actual_relative_error",
    "error_reduction",
    "speedup",
    "bound_violation_rate",
    "ExperimentRunner",
    "ProfilePoint",
    "QueryRunResult",
    "aggregate_profile_by_batch",
    "time_to_reach_bound",
    "error_bound_at_time",
    "format_table",
    "format_series",
]
