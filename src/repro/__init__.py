"""repro -- a reproduction of "Database Learning: Toward a Database that
Becomes Smarter Every Time" (Park, Tajik, Cafarella, Mozafari; SIGMOD 2017).

The package provides:

* ``repro.core`` -- the Verdict database-learning engine (query snippets,
  query synopsis, maximum-entropy inference, parameter learning, model
  validation, data-append handling);
* ``repro.db`` -- the columnar database substrate (tables, catalog, exact
  executor, sampling, IO cost model) standing in for the paper's Spark SQL
  cluster;
* ``repro.aqp`` -- the approximate query processing engines Verdict sits on
  top of (online aggregation, time-bound, answer caching baseline);
* ``repro.sqlparser`` -- the SQL subset parser, supported-query checker, and
  snippet decomposition;
* ``repro.workloads`` -- synthetic data and query-trace generators standing in
  for the paper's Customer1, TPC-H, Twitter n-gram, and UCI datasets;
* ``repro.experiments`` -- the harness that reruns the paper's experiments and
  reports the same tables and figures.

Quickstart::

    from repro import quickstart_catalog, VerdictEngine, OnlineAggregationEngine

    catalog, fact = quickstart_catalog()
    aqp = OnlineAggregationEngine(catalog)
    verdict = VerdictEngine(catalog, aqp)
    answers = verdict.execute("SELECT AVG(revenue) FROM sales WHERE week >= 10 AND week <= 20")
    print(answers[-1].scalar_estimate())
"""

from repro.config import CostModelConfig, SamplingConfig, VerdictConfig
from repro.errors import (
    AQPError,
    CatalogError,
    ExpressionError,
    InferenceError,
    LearningError,
    ReproError,
    SchemaError,
    SQLSyntaxError,
    SynopsisError,
    TableError,
    UnsupportedQueryError,
)
from repro.db import Catalog, Column, ColumnKind, ColumnRole, ExactExecutor, Schema, Table
from repro.aqp import CachingEngine, OnlineAggregationEngine, TimeBoundEngine
from repro.core import (
    AggregateKind,
    AttributeDomains,
    QuerySynopsis,
    Snippet,
    SnippetKey,
    VerdictAnswer,
    VerdictEngine,
)
from repro.sqlparser import parse_query, QueryTypeChecker
from repro.serve import (
    QueryPlanner,
    Route,
    ServedAnswer,
    ServiceBudget,
    ServiceMetrics,
    SynopsisStore,
    VerdictService,
)

__version__ = "1.1.0"

__all__ = [
    "VerdictConfig",
    "CostModelConfig",
    "SamplingConfig",
    "ReproError",
    "SchemaError",
    "TableError",
    "CatalogError",
    "ExpressionError",
    "SQLSyntaxError",
    "UnsupportedQueryError",
    "AQPError",
    "InferenceError",
    "LearningError",
    "SynopsisError",
    "Catalog",
    "Column",
    "ColumnKind",
    "ColumnRole",
    "Schema",
    "Table",
    "ExactExecutor",
    "OnlineAggregationEngine",
    "TimeBoundEngine",
    "CachingEngine",
    "VerdictEngine",
    "VerdictAnswer",
    "QuerySynopsis",
    "Snippet",
    "SnippetKey",
    "AggregateKind",
    "AttributeDomains",
    "parse_query",
    "QueryTypeChecker",
    "QueryPlanner",
    "Route",
    "ServedAnswer",
    "ServiceBudget",
    "ServiceMetrics",
    "SynopsisStore",
    "VerdictService",
    "quickstart_catalog",
]


def quickstart_catalog(num_rows: int = 20_000, seed: int = 0):
    """A small ready-made sales table for the README / quickstart example.

    Returns ``(catalog, fact_table_name)``.
    """
    from repro.workloads.synthetic import make_sales_table

    table = make_sales_table(num_rows=num_rows, seed=seed)
    catalog = Catalog()
    catalog.add_table(table, fact=True)
    return catalog, table.name
