"""Thread-safe serving front door for concurrent Verdict queries.

:class:`VerdictService` turns the single-threaded :class:`VerdictEngine`
into a long-running, concurrent query service:

* a bounded worker pool (:meth:`VerdictService.submit`) so callers can fire
  many requests at once;
* per-fact-table reader/writer locks so reads of one table proceed in
  parallel while ``append`` / ``record`` / ``train`` on that table get
  exclusive access -- a request therefore always observes either the
  pre-append or the post-append state, never a mixture (no torn answers);
* a short engine mutex serialising the inference step and every mutation of
  the shared learned state (the synopsis and prepared factorisations are
  shared across tables, so the per-table locks alone cannot protect them);
* a bounded answer cache whose entries embed the synopsis version and the
  catalog version at store time -- any record, train, or append makes every
  older entry unreachable, so a cache hit can never serve stale data;
* a :class:`~repro.serve.store.SynopsisStore` hook: learned state is
  restored at start-up, flushed periodically after mutations, and written
  out as a full snapshot on graceful shutdown.

Locking discipline (to stay deadlock-free):

1. a request thread holds at most one table lock at a time;
2. the engine mutex is only acquired while already holding a table lock (or
   no lock at all) and nothing else is acquired under it;
3. ``train`` acquires all table write locks in sorted name order.

Shutdown discipline (:meth:`VerdictService.close`):

The service moves through three explicit lifecycle phases --
``serving -> draining -> closed``.  ``close()`` flips the phase to
*draining* (new requests are rejected), then drains, strictly in order:

1. the worker pool (queued ``submit`` requests run or fail fast);
2. every **direct** in-flight ``query``/``append``/``record_answer``/
   ``train`` call (callers such as the HTTP front door invoke these on
   their own threads, so pool shutdown alone cannot see them) -- tracked
   by an in-flight counter;
3. the background trainer (its swap is cheap and its results belong in
   the final snapshot);

and only then writes the single final store snapshot and flips the phase
to *closed*.  Concurrent ``close()`` calls block until the first closer
has written that snapshot, so "close returned" always means "the learned
state is durable"; ``flush()`` after close is a no-op, so nothing can be
written *behind* the final snapshot.
"""

from __future__ import annotations

import contextvars
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Iterator, Union

from repro import faults
from repro.aqp.estimators import confidence_multiplier
from repro.aqp.online_agg import OnlineAggregationEngine, budget_hopeless
from repro.aqp.time_bound import TimeBoundEngine
from repro.aqp.types import AQPAnswer
from repro.config import CostModelConfig, SamplingConfig, VerdictConfig
from repro.core.engine import VerdictAnswer, VerdictEngine
from repro.db.catalog import Catalog
from repro.db.executor import ExactExecutor
from repro.db.scan import ScanCounters
from repro.db.table import Table
from repro.deadline import Deadline, current_deadline, deadline_scope
from repro.errors import DeadlineExceeded, QueryCancelled, ReproError, ServiceError
from repro.obs.metrics import MetricFamily
from repro.obs.trace import Tracer, current_trace, set_attrs
from repro.obs.trace import event as trace_event
from repro.obs.trace import span as trace_span
from repro.serve.breaker import CircuitBreaker
from repro.serve.metrics import ServiceMetrics
from repro.serve.planner import QueryPlanner, Route, RouteDecision, ServiceBudget
from repro.serve.store import SynopsisStore
from repro.sqlparser import ast
from repro.sqlparser.checker import CheckResult

Value = Union[int, float, str]


# --------------------------------------------------------------------------- #
# Answers
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class ServedRow:
    """One output row of a served answer."""

    group_values: tuple[Value, ...]
    values: dict[str, float]
    errors: dict[str, float]


@dataclass(frozen=True)
class ServedAnswer:
    """What the service returns for one request."""

    sql: str
    route: Route
    rows: tuple[ServedRow, ...]
    relative_error_bound: float
    model_seconds: float
    wall_seconds: float
    supported: bool
    budget_met: bool = True
    from_cache: bool = False
    recorded: bool = False
    batches_processed: int = 0
    #: True when the request's wall-clock deadline expired before the error
    #: budget was met and this is the best *partial* estimate (still a valid
    #: estimate ± error, just less refined than asked for).  Degraded
    #: answers are never cached and never recorded into the synopsis.
    degraded: bool = False
    degraded_reason: str = ""

    def scalar(self) -> float:
        """The single value of a one-row, one-aggregate answer."""
        if len(self.rows) != 1 or len(self.rows[0].values) != 1:
            raise ValueError("scalar() requires a single-cell answer")
        return next(iter(self.rows[0].values.values()))

    def by_group(self) -> dict[tuple[Value, ...], ServedRow]:
        return {row.group_values: row for row in self.rows}


@dataclass
class _CacheEntry:
    answer: ServedAnswer
    synopsis_version: int
    catalog_version: int
    # Correlation-models version at store time: training (foreground or
    # background) and set_model bump it, so retrained models make every
    # older entry unreachable even though the synopsis and catalog did not
    # move.  (Not state_epoch: that also moves on lazy factor
    # materialisation, which does not affect already-computed answers and
    # would evict the whole cache for nothing.)
    models_version: int


# --------------------------------------------------------------------------- #
# Reader/writer lock
# --------------------------------------------------------------------------- #


class ReadWriteLock:
    """A writer-preferring reader/writer lock.

    Multiple readers proceed concurrently; a writer waits for active readers
    to drain and blocks new readers while waiting, so appends cannot be
    starved by a stream of queries.  Non-reentrant by design -- the service's
    locking discipline never re-acquires.
    """

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._active_readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    @contextmanager
    def read(self) -> Iterator[None]:
        with self._condition:
            while self._writer_active or self._writers_waiting:
                self._condition.wait()
            self._active_readers += 1
        try:
            yield
        finally:
            with self._condition:
                self._active_readers -= 1
                if not self._active_readers:
                    self._condition.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        with self._condition:
            self._writers_waiting += 1
            while self._active_readers or self._writer_active:
                self._condition.wait()
            self._writers_waiting -= 1
            self._writer_active = True
        try:
            yield
        finally:
            with self._condition:
                self._writer_active = False
                self._condition.notify_all()


# --------------------------------------------------------------------------- #
# Service
# --------------------------------------------------------------------------- #


@dataclass
class _ServiceState:
    """Mutable bits guarded by the service's small internal locks."""

    cache: "OrderedDict" = field(default_factory=lambda: OrderedDict())
    mutations_since_flush: int = 0


class VerdictService:
    """Concurrent, budget-aware, persistent front door to a Verdict engine.

    Parameters
    ----------
    catalog:
        The database catalog to serve.
    store:
        Optional persistent synopsis store.  When given, previously persisted
        learned state is restored at construction, mutations are flushed
        every ``flush_every`` learned-state changes, and :meth:`close` writes
        a final full snapshot.
    config, sampling, cost_model:
        Forwarded to the underlying engines.
    max_workers:
        Size of the worker pool serving :meth:`submit`.
    confidence:
        Confidence level for reported error bounds and budget checks.
    default_budget:
        Budget applied when a request does not carry one (default: best
        effort -- cheapest route, no error requirement).
    record_queries:
        Whether served supported queries are recorded into the synopsis
        (step 4 of Figure 2).  Can be overridden per request.
    cache_capacity:
        Maximum number of answers kept in the answer cache.
    auto_train_every:
        When set, a background training round (:meth:`train_async`) is
        kicked off after every ``auto_train_every`` learned-state mutations
        (records / appends), so correlation parameters track the workload
        continuously without any caller ever blocking on the O(n^3) learn.
        ``None`` (the default) disables automatic training.
    breaker_window, breaker_failure_threshold, breaker_cooldown_s:
        Circuit-breaker tuning for the approximate routes (learned and
        online aggregation): a route whose recent error rate over the last
        ``breaker_window`` attempts reaches ``breaker_failure_threshold``
        is skipped for ``breaker_cooldown_s`` seconds, then probed
        (half-open) before being trusted again.  The exact route is never
        broken: it is the fallback of last resort.
    trainer_max_restarts, trainer_restart_backoff_s:
        A background training round that raises is retried up to
        ``trainer_max_restarts`` times with exponential backoff starting at
        ``trainer_restart_backoff_s``; when every retry fails the trainer is
        marked dead (visible in :meth:`health`) until a later round
        succeeds.
    tracer:
        Optional :class:`repro.obs.trace.Tracer`.  When set, requests that
        arrive without an ambient trace (direct :meth:`query` callers) get
        a root span of their own; requests already traced (the HTTP front
        door opens the root) just contribute child spans.  ``None`` (the
        default) keeps the hot path span-free at the cost of one contextvar
        read per instrumented site.
    """

    def __init__(
        self,
        catalog: Catalog,
        store: SynopsisStore | None = None,
        config: VerdictConfig | None = None,
        sampling: SamplingConfig | None = None,
        cost_model: CostModelConfig | None = None,
        max_workers: int = 4,
        confidence: float = 0.95,
        default_budget: ServiceBudget | None = None,
        record_queries: bool = True,
        flush_every: int = 8,
        cache_capacity: int = 1_024,
        vectorized: bool = True,
        auto_train_every: int | None = None,
        breaker_window: int = 8,
        breaker_failure_threshold: float = 0.5,
        breaker_cooldown_s: float = 5.0,
        trainer_max_restarts: int = 3,
        trainer_restart_backoff_s: float = 0.05,
        tracer: Tracer | None = None,
    ):
        if max_workers <= 0:
            raise ServiceError("max_workers must be positive")
        if cache_capacity <= 0:
            raise ServiceError("cache_capacity must be positive")
        if auto_train_every is not None and auto_train_every <= 0:
            raise ServiceError("auto_train_every must be positive")
        if trainer_max_restarts < 0:
            raise ServiceError("trainer_max_restarts must be non-negative")
        self.catalog = catalog
        # One scan-accounting stream shared by every engine this service
        # owns: the metrics "scan" view then attributes exactly this
        # service's scans, co-resident services notwithstanding.
        self.scan_counters = ScanCounters()
        self.aqp = OnlineAggregationEngine(
            catalog,
            sampling=sampling,
            cost_model=cost_model,
            vectorized=vectorized,
            scan_counters=self.scan_counters,
        )
        self.time_bound = TimeBoundEngine(
            catalog,
            sampling=sampling,
            cost_model=cost_model,
            sample_store=self.aqp.samples,
            vectorized=vectorized,
            scan_counters=self.scan_counters,
        )
        self.engine = VerdictEngine(
            catalog, self.aqp, config=config, time_bound_engine=self.time_bound
        )
        self.exact = ExactExecutor(
            catalog, vectorized=vectorized, scan_counters=self.scan_counters
        )
        self.planner = QueryPlanner(self.engine, confidence=confidence)
        self.metrics = ServiceMetrics(scan_counters=self.scan_counters)
        self.tracer = tracer
        self.store = store
        self.confidence = confidence
        self.multiplier = confidence_multiplier(confidence)
        self.default_budget = default_budget or ServiceBudget()
        self.record_queries = record_queries
        self.flush_every = max(flush_every, 1)
        self.cache_capacity = cache_capacity

        self._state = _ServiceState()
        self._cache_lock = threading.Lock()
        # Serialises inference and every mutation of the learned state; see
        # the module docstring for the locking discipline.
        self._engine_lock = threading.Lock()
        self._table_locks: dict[str, ReadWriteLock] = {}
        self._table_locks_guard = threading.Lock()
        # Lifecycle: "serving" -> "draining" (close() in progress; new
        # requests rejected, in-flight ones draining) -> "closed" (final
        # snapshot written).  Guarded by ``_lifecycle`` together with the
        # count of direct in-flight requests.
        self._phase = "serving"
        self._inflight = 0
        self._lifecycle = threading.Condition()
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="verdict-serve"
        )
        # Background training runs on its own single worker (never on the
        # request pool, so a long learn cannot starve request slots).
        self.auto_train_every = auto_train_every
        self._train_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="verdict-train"
        )
        self._train_guard = threading.Lock()
        self._train_future: Future | None = None
        self._mutations_since_train = 0
        self.trainer_max_restarts = trainer_max_restarts
        self.trainer_restart_backoff_s = trainer_restart_backoff_s
        self.trainer_restarts = 0
        self._trainer_dead = False
        # Circuit breakers for the two approximate routes.  EXACT is never
        # broken (it is the last-resort fallback) and CACHED cannot fail.
        self._breakers: dict[Route, CircuitBreaker] = {
            route: CircuitBreaker(
                name=route.value,
                window=breaker_window,
                failure_threshold=breaker_failure_threshold,
                cooldown_s=breaker_cooldown_s,
                on_transition=self._on_breaker_transition,
            )
            for route in (Route.LEARNED, Route.ONLINE_AGG)
        }
        self.restored = bool(store is not None and store.load_into(self.engine))
        if store is not None:
            for name, count in store.counters.items():
                if count:
                    self.metrics.record_event(f"store.{name}", count)

    def _on_breaker_transition(self, name: str, old: str, new: str) -> None:
        self.metrics.record_event(f"breaker.{name}.{new}")

    # ------------------------------------------------------------------ public

    def query(
        self,
        sql: Union[str, ast.Query],
        budget: ServiceBudget | None = None,
        record: bool | None = None,
    ) -> ServedAnswer:
        """Answer one request within its budget, via the cheapest able route.

        Thread-safe; may be called from any thread (the worker pool uses this
        method too).  Raises :class:`ServiceError` when the service is closed
        and propagates parse errors to the caller.
        """
        with self._request_scope():
            if self.tracer is not None and current_trace() is None:
                # Direct callers (no HTTP front door) still get a trace:
                # mint a root here so the ring and trace log see them.
                with self.tracer.request(name="service.query") as root:
                    root.set(sql=sql if isinstance(sql, str) else (sql.text or ""))
                    return self._serve_query(sql, budget, record)
            return self._serve_query(sql, budget, record)

    def explain(
        self,
        sql: Union[str, ast.Query],
        budget: ServiceBudget | None = None,
    ) -> dict:
        """The planner's full decision record for one request, *unexecuted*.

        Returns plain data mirroring exactly what :meth:`query` would do
        with this budget right now: the candidate-route table (cost/error
        estimates, planning order, per-route reasons), whether the answer
        cache would hit, each breaker's state and the resulting skip
        decisions, and the cost-model inputs (estimated scan rows, sample
        batch rows, synopsis readiness).  Reading breaker state here never
        consumes a half-open probe slot, and the cache probe never touches
        LRU order -- EXPLAIN observes, it does not perturb.
        """
        with self._request_scope():
            budget = budget or self.default_budget
            parsed, check = self.engine.check(sql)
            cached = self._cache_probe(sql, budget)
            decisions = self.planner.plan(parsed, check, budget)
            order = {decision.route: index for index, decision in enumerate(decisions)}
            planned = {decision.route: decision for decision in decisions}
            snippets = self.planner.synopsis_snippets_for(parsed.table)

            candidates: list[dict] = [
                {
                    "route": Route.CACHED.value,
                    "planned": cached is not None,
                    "would_attempt": cached is not None,
                    "reason": (
                        "cache holds a current answer within the error budget"
                        if cached is not None
                        else "no current cache entry satisfies the budget"
                    ),
                    "cached_error_bound": (
                        cached.relative_error_bound if cached is not None else None
                    ),
                }
            ]
            chosen = Route.CACHED.value if cached is not None else None
            for route in (Route.LEARNED, Route.ONLINE_AGG, Route.EXACT):
                entry: dict = {"route": route.value, "planned": route in planned}
                decision = planned.get(route)
                if decision is None:
                    if route is Route.LEARNED and not check.supported:
                        entry["reason"] = (
                            "query class is unsupported by the learned synopsis"
                        )
                    elif route is Route.LEARNED and snippets == 0:
                        entry["reason"] = (
                            f"synopsis holds no ready snippets for {parsed.table!r}"
                        )
                    else:
                        entry["reason"] = "budget demands an exact answer"
                    entry["would_attempt"] = False
                    candidates.append(entry)
                    continue
                entry.update(decision.as_dict())
                entry["order"] = order[route]
                breaker = self._breakers.get(route)
                would_attempt = True
                skip_reason = None
                if breaker is not None:
                    snapshot = breaker.snapshot()
                    entry["breaker"] = snapshot
                    if snapshot["state"] == "open":
                        would_attempt = False
                        skip_reason = (
                            "circuit breaker open for another "
                            f"{snapshot['cooldown_remaining_s']:.3g}s"
                        )
                if route is Route.ONLINE_AGG and Route.LEARNED in planned:
                    entry["note"] = (
                        "skipped when the learned route answers: its improved "
                        "bound is never larger (Theorem 1); runs only as the "
                        "fallback for inference errors"
                    )
                entry["would_attempt"] = would_attempt
                if skip_reason is not None:
                    entry["skip_reason"] = skip_reason
                if chosen is None and would_attempt:
                    chosen = route.value
                candidates.append(entry)

            deadline = current_deadline()
            return {
                "sql": parsed.text or (sql if isinstance(sql, str) else ""),
                "table": parsed.table,
                "supported": check.supported,
                "unsupported_reasons": list(check.reasons),
                "budget": {
                    "max_relative_error": budget.max_relative_error,
                    "max_latency_s": budget.max_latency_s,
                    "deadline_s": budget.deadline_s,
                    "requires_exact": budget.requires_exact,
                },
                "deadline": {
                    "ambient": deadline is not None,
                    "remaining_s": (
                        deadline.remaining_s if deadline is not None else None
                    ),
                },
                "candidates": candidates,
                "chosen_route": chosen,
                "cost_model_inputs": {
                    "estimated_exact_rows": self.planner.estimated_exact_rows(parsed),
                    "estimated_first_batch_rows": (
                        self.planner.estimated_first_batch_rows(parsed)
                    ),
                    "synopsis_snippets_for_table": snippets,
                    "confidence": self.confidence,
                },
                "versions": {
                    "synopsis": self.engine.synopsis.version,
                    "catalog": self.catalog.catalog_version,
                    "models": self.engine.models_version,
                    "synopsis_size": self.engine.synopsis_size(),
                },
                "cache": {
                    "would_hit": cached is not None,
                    "entries": self.cache_size(),
                },
            }

    def _serve_query(
        self,
        sql: Union[str, ast.Query],
        budget: ServiceBudget | None,
        record: bool | None,
    ) -> ServedAnswer:
        budget = budget or self.default_budget
        deadline = (
            Deadline.after(budget.deadline_s) if budget.deadline_s is not None else None
        )
        # The deadline is ambient for this request thread: the online-agg
        # batch loop and the morsel scan loop poll it cooperatively.  Worker
        # threads a route fans out to receive it by value in their closures.
        with deadline_scope(deadline):
            try:
                return self._serve_within_deadline(sql, budget, record)
            except DeadlineExceeded:
                self.metrics.record_event("deadline.exceeded")
                raise
            except QueryCancelled:
                self.metrics.record_event("query.cancelled")
                raise

    def _serve_within_deadline(
        self,
        sql: Union[str, ast.Query],
        budget: ServiceBudget,
        record: bool | None,
    ) -> ServedAnswer:
        should_record = self.record_queries if record is None else record
        started = time.perf_counter()

        # The cache is keyed by the request itself (SQL text or parsed
        # query), checked *before* parsing: a hit costs a dict probe and two
        # version comparisons, not a parse.
        with trace_span("cache.lookup") as cache_span:
            cached = self._cache_lookup(sql, budget)
            if cache_span is not None:
                cache_span.set(hit=cached is not None)
        if cached is not None:
            wall = time.perf_counter() - started
            answer = replace(
                cached, route=Route.CACHED, from_cache=True, wall_seconds=wall,
                recorded=False,
            )
            self.metrics.observe(
                Route.CACHED.value, wall, model_seconds=0.0, budget_met=True
            )
            set_attrs(
                route=Route.CACHED.value,
                error_bound=answer.relative_error_bound,
            )
            return answer

        parsed, check = self.engine.check(sql)
        with trace_span("plan") as plan_span:
            decisions = self.planner.plan(parsed, check, budget)
            if plan_span is not None:
                plan_span.set(
                    supported=check.supported,
                    candidates=[decision.as_dict() for decision in decisions],
                )
        best: ServedAnswer | None = None
        best_raw: AQPAnswer | None = None
        best_versions: tuple[int, int, int] | None = None
        learned_answered = False
        fallback = False
        for decision in decisions:
            if decision.route is Route.ONLINE_AGG and learned_answered:
                # Dominated: the learned route already refined the same raw
                # answers with inference, whose bound is never larger
                # (Theorem 1).  Online aggregation only runs as the fallback
                # when inference itself *errored*.
                trace_event(
                    "route.skip",
                    route=decision.route.value,
                    reason="dominated by the learned answer (Theorem 1)",
                )
                continue
            if (
                best is not None
                and budget.max_latency_s is not None
                and decision.estimated_seconds > budget.max_latency_s
            ):
                # Escalating would blow the latency budget; keep best effort.
                trace_event(
                    "route.skip",
                    route=decision.route.value,
                    reason="estimated cost exceeds the latency budget",
                    estimated_seconds=decision.estimated_seconds,
                )
                continue
            breaker = self._breakers.get(decision.route)
            if breaker is not None and not breaker.allow():
                # The breaker is open (or half-open with its probes taken):
                # skip straight to the fallback instead of paying for
                # another failure.
                self.metrics.record_event(f"breaker.{decision.route.value}.skip")
                trace_event(
                    "route.skip",
                    route=decision.route.value,
                    reason="circuit breaker rejected the attempt",
                )
                fallback = True
                continue
            try:
                with trace_span(
                    f"route.{decision.route.value}",
                    predicted_seconds=decision.estimated_seconds,
                    predicted_rows=decision.estimated_rows,
                    predicted_error=decision.estimated_error,
                ) as route_span:
                    candidate, raw, versions = self._execute_route(
                        decision, parsed, check, budget
                    )
                    if route_span is not None:
                        route_span.set(
                            observed_seconds=candidate.model_seconds,
                            observed_error=candidate.relative_error_bound,
                            batches=candidate.batches_processed,
                            degraded=candidate.degraded,
                        )
            except DeadlineExceeded:
                if breaker is not None:
                    # The client's clock ran out; that says nothing about
                    # the route's health, so release the attempt unrecorded.
                    breaker.cancel()
                if best is not None:
                    return self._degrade(best, budget, started)
                raise
            except QueryCancelled:
                if breaker is not None:
                    # Cancellation says nothing about the route's health.
                    breaker.cancel()
                # Never degrade to a partial: nobody is listening.  The
                # abort happens before _record/_cache_store, so the answer
                # cache, store, and metrics stay consistent.
                raise
            except ReproError:
                if breaker is not None:
                    breaker.record_failure()
                self.metrics.record_event(f"route.{decision.route.value}.error")
                fallback = True
                continue
            if breaker is not None:
                breaker.record_success()
            if decision.route is Route.LEARNED:
                learned_answered = True
            if best is None or candidate.relative_error_bound < best.relative_error_bound:
                best, best_raw, best_versions = candidate, raw, versions
            if budget.error_met(candidate.relative_error_bound):
                break
            fallback = True
        if best is None or best_versions is None:
            raise ServiceError(f"no route could answer {parsed.text or sql!r}")

        budget_met = budget.error_met(best.relative_error_bound) and (
            budget.max_latency_s is None or best.model_seconds <= budget.max_latency_s
        )
        if best.degraded:
            # The deadline cut refinement short: return the partial estimate
            # immediately -- no recording (it would spend time the client no
            # longer has) and no caching (the answer is deliberately
            # under-refined).
            wall = time.perf_counter() - started
            answer = replace(best, wall_seconds=wall, budget_met=False, recorded=False)
            self.metrics.record_event("deadline.degraded")
            self.metrics.observe(
                answer.route.value,
                wall,
                model_seconds=answer.model_seconds,
                budget_met=False,
                fallback=fallback,
            )
            return answer
        recorded = False
        cache_versions = best_versions
        if should_record and check.supported and best_raw is not None:
            with trace_span("record") as record_span:
                recorded, pre_version, post_versions = self._record(parsed, best_raw)
                if record_span is not None:
                    record_span.set(recorded=recorded)
            if recorded and (pre_version, post_versions[1], post_versions[2]) == best_versions:
                # Recording this answer's own snippets is the only mutation
                # since execution, and it does not invalidate the answer:
                # stamp the entry with the post-record versions so repeats
                # hit.  Any *interleaved* mutation leaves the execution-time
                # stamp in place, making the entry born-stale (never served).
                cache_versions = post_versions
        wall = time.perf_counter() - started
        answer = replace(
            best, wall_seconds=wall, budget_met=budget_met, recorded=recorded
        )
        self._cache_store(sql, answer, cache_versions)
        self.metrics.observe(
            answer.route.value,
            wall,
            model_seconds=answer.model_seconds,
            budget_met=budget_met,
            fallback=fallback,
        )
        set_attrs(
            route=answer.route.value,
            error_bound=answer.relative_error_bound,
            model_seconds=answer.model_seconds,
            budget_met=budget_met,
        )
        return answer

    def submit(
        self,
        sql: Union[str, ast.Query],
        budget: ServiceBudget | None = None,
        record: bool | None = None,
    ) -> Future:
        """Queue a request on the worker pool; returns a ``Future``."""
        if self._phase != "serving":
            raise ServiceError("service is closed")
        faults.inject("service.submit")
        # The ambient trace (and any other contextvars, e.g. a deadline
        # scope) must follow the request onto the worker thread; a plain
        # submit would run it in the pool thread's own empty context.
        context = contextvars.copy_context()
        return self._pool.submit(context.run, self.query, sql, budget, record)

    def append(self, table_name: str, appended: Table, adjust: bool = True) -> int:
        """Append tuples to a fact table with exclusive access (Appendix D).

        Blocks until in-flight reads of the table drain; returns the number
        of synopsis snippets adjusted.
        """
        with self._request_scope():
            with self._table_lock(table_name).write():
                with self._engine_lock:
                    adjusted = self.engine.register_append(
                        table_name, appended, adjust=adjust
                    )
            self._note_mutation()
            return adjusted

    def train(self, learn: bool | None = None) -> None:
        """Run the offline step (Algorithm 1) with exclusive access.

        Blocks the calling thread (and, while the swap runs, every table)
        until training finishes.  Prefer :meth:`train_async` on a serving
        path: it performs the same learn off the request path and swaps the
        results in under the engine lock alone.
        """
        with self._request_scope():
            locks = [
                self._table_lock(name) for name in sorted(self.catalog.fact_tables())
            ]
            self._train_locked(locks, 0, learn)
            # A completed round resets the auto-train mutation counter -- the
            # counter means "mutations since the last training", whichever
            # path performed it.
            with self._cache_lock:
                self._mutations_since_train = 0
            self._note_mutation(count_towards_training=False)

    def train_async(self, learn: bool | None = None) -> Future:
        """Run the offline step in a background worker; returns a ``Future``.

        The expensive O(n^3) likelihood optimisation and covariance
        factorisation run on a snapshot of the synopsis *without holding any
        lock*, so concurrent queries (including ones that record new
        snippets) are never blocked behind training.  The engine lock is
        held only twice, briefly: once to capture the snapshot and once to
        swap the learned models and refreshed factorisations in atomically
        -- a query observes either the pre-train state or the post-train
        state, never a mixture.  Snippets recorded while training ran are
        reconciled by the engine's usual rank-k factor extension; a round
        invalidated by an interleaved append adjustment simply leaves those
        factorisations to rebuild lazily.

        At most one background round is in flight: calling again while one
        runs returns the same ``Future``.  The future resolves to the
        learned-parameters mapping that :meth:`VerdictEngine.train` returns.
        """
        if self._phase != "serving":
            raise ServiceError("service is closed")
        with self._train_guard:
            future = self._train_future
            if future is not None and not future.done():
                return future
            future = self._train_pool.submit(self._train_in_background, learn)
            self._train_future = future
            return future

    def _train_in_background(self, learn: bool | None):
        """One background round, retried with backoff when it crashes.

        A training crash (numerical blow-up on a degenerate synopsis, an
        injected fault) must not silently end continuous learning: the round
        is retried up to ``trainer_max_restarts`` times with exponential
        backoff, and only when every retry fails is the trainer marked dead
        -- which :meth:`health` reports so operators (and the HTTP
        ``/v1/healthz`` endpoint) can see learning has stopped.  A later
        successful round (e.g. a manual :meth:`train_async`) revives it.
        """
        attempt = 0
        while True:
            try:
                faults.inject("service.train", attempt=attempt)
                results = self._train_round(learn)
            except Exception:
                attempt += 1
                if attempt > self.trainer_max_restarts:
                    self._trainer_dead = True
                    self.metrics.record_event("trainer.dead")
                    raise
                self.trainer_restarts += 1
                self.metrics.record_event("trainer.restart")
                time.sleep(self.trainer_restart_backoff_s * (2 ** (attempt - 1)))
            else:
                self._trainer_dead = False
                return results

    def _train_round(self, learn: bool | None):
        learn_flag = (
            self.engine.config.learn_length_scales if learn is None else learn
        )
        with self._engine_lock:
            if self.engine.training_current(learn_flag):
                return self.engine.train(learn_flag)
            snapshot = self.engine.training_snapshot(learn_flag)
        outcome = self.engine.compute_training(snapshot)  # no locks held
        with self._engine_lock:
            results = self.engine.apply_training(outcome)
        with self._cache_lock:
            self._mutations_since_train = 0
        self._note_mutation(count_towards_training=False)
        return results

    def record_answer(self, sql: Union[str, ast.Query]) -> bool:
        """Run a query to completion and record its snippets (training aid).

        Unlike :meth:`query`, the full sample is always scanned so the
        recorded snippets carry the tightest raw errors -- this is what the
        trace-ingestion phase of the experiments uses.
        """
        with self._request_scope():
            parsed, check = self.engine.check(sql)
            if not check.supported:
                return False
            with self._table_lock(parsed.table).read():
                raw = self.aqp.final_answer(parsed)
            recorded, _, _ = self._record(parsed, raw)
            return recorded

    def flush(self) -> str:
        """Flush learned state to the store (``"noop"`` without a store).

        After :meth:`close` has written the final snapshot this is a no-op:
        nothing may be persisted *behind* the snapshot that defines the
        restart state.
        """
        if self.store is None:
            return "noop"
        with self._lifecycle:
            if self._phase == "closed":
                return "noop"
        with self._engine_lock:
            faults.inject("service.flush")
            return self.store.flush(self.engine)

    def snapshot(self) -> str:
        """Force a full store snapshot now (``"noop"`` without a store).

        Unlike :meth:`flush` this always writes a complete snapshot (with
        prepared factorisations), making the current learned state durable
        regardless of what kind of mutations preceded it -- the admin
        ``snapshot`` endpoint of the HTTP front door calls this.
        """
        if self.store is None:
            return "noop"
        with self._lifecycle:
            if self._phase == "closed":
                return "noop"
        with self._engine_lock:
            return self.store.save_snapshot(self.engine)

    def replicate_deltas(self, lines: list[str]) -> list[dict]:
        """Apply leader-shipped WAL records verbatim (follower side).

        Each line is a complete CRC'd delta record as it appears in the
        leader's log; the store appends it byte-for-byte and applies its
        snippets through the same restore path a restart uses, so the
        follower's state is byte-identical to the leader's by construction.
        Cached answers need no explicit invalidation: cache entries are
        stamped with the synopsis version, which every applied record
        advances.
        """
        if self.store is None:
            raise ServiceError("cannot apply replication without a store")
        results = []
        with self._request_scope():
            with self._engine_lock:
                for line in lines:
                    results.append(self.store.ship_append(self.engine, line))
        if results:
            self.metrics.record_event("replication.apply", len(results))
        return results

    def replicate_snapshot(self, document: str) -> dict:
        """Install a leader-shipped snapshot, replacing all local state."""
        if self.store is None:
            raise ServiceError("cannot apply replication without a store")
        with self._request_scope():
            with self._engine_lock:
                applied = self.store.install_shipped_snapshot(self.engine, document)
        self.metrics.record_event("replication.bootstrap")
        return applied

    def close(self) -> None:
        """Graceful shutdown: drain all work, then snapshot the learned state.

        The ordering is explicit (see the module docstring): reject new
        requests, drain the worker pool, drain *direct* in-flight requests
        (callers like the HTTP front door bypass the pool), drain the
        background trainer, and only then write the final snapshot.  The
        final write is always a *full snapshot* (not a delta): it captures
        the prepared factorisations bit-for-bit, which is what makes a
        restarted service answer byte-identically to one that never stopped.

        Safe to call from many threads: exactly one closer performs the
        shutdown, and every other ``close()`` blocks until the snapshot is
        durable -- so "close returned" always means "state persisted".
        """
        with self._lifecycle:
            if self._phase != "serving":
                while self._phase != "closed":
                    self._lifecycle.wait()
                return
            self._phase = "draining"
        self._pool.shutdown(wait=True)
        with self._lifecycle:
            while self._inflight:
                self._lifecycle.wait()
        # Let an in-flight background training round finish (its swap is
        # cheap) so the shutdown snapshot captures what it learned.  Must
        # happen after the request drain: requests can kick off auto-train
        # rounds, never the other way around.
        self._train_pool.shutdown(wait=True)
        if self.store is not None:
            with self._engine_lock:
                self.store.save_snapshot(self.engine)
        with self._lifecycle:
            self._phase = "closed"
            self._lifecycle.notify_all()

    def __enter__(self) -> "VerdictService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        """Whether the service has stopped accepting requests."""
        return self._phase != "serving"

    @property
    def lifecycle_phase(self) -> str:
        """The shutdown phase: ``"serving"``, ``"draining"``, or ``"closed"``."""
        return self._phase

    def cache_size(self) -> int:
        with self._cache_lock:
            return len(self._state.cache)

    def health(self) -> dict:
        """Liveness/readiness summary: ``ok`` or ``degraded`` plus reasons.

        Degraded means the service still answers requests but some part of
        the stack is impaired: a route breaker is open, the store had to
        quarantine a corrupt snapshot, or the background trainer died.  The
        HTTP front door aggregates this per tenant into ``/v1/healthz``.
        """
        reasons: list[str] = []
        if self._phase != "serving":
            reasons.append(f"service is {self._phase}")
        if self.store is not None and self.store.quarantined:
            reasons.append("store quarantined a corrupt snapshot")
        for route, breaker in self._breakers.items():
            state = breaker.state
            if state != "closed":
                reasons.append(f"{route.value} route breaker is {state}")
        if self._trainer_dead:
            reasons.append(
                f"background trainer dead after {self.trainer_restarts} restart(s)"
            )
        return {
            "status": "ok" if not reasons else "degraded",
            "phase": self._phase,
            "reasons": reasons,
        }

    def observability(self) -> dict:
        """Metrics plus robustness state (breakers, trainer, store recovery)."""
        data = self.metrics.as_dict()
        data["breakers"] = {
            route.value: breaker.snapshot()
            for route, breaker in self._breakers.items()
        }
        data["trainer"] = {
            "restarts": self.trainer_restarts,
            "dead": self._trainer_dead,
        }
        if self.store is not None:
            data["store"] = self.store.state_snapshot()
        if self.tracer is not None:
            data["tracer"] = self.tracer.stats()
        return data

    #: Breaker states as gauge values (Prometheus cannot carry strings).
    _BREAKER_STATE_VALUES = {"closed": 0, "half_open": 1, "open": 2}

    def metric_families(self, labels: dict | None = None) -> list[MetricFamily]:
        """Everything :meth:`observability` reports, as typed metric families.

        The route counters/histograms come from :class:`ServiceMetrics`;
        this adds breaker state, trainer liveness, store recovery counters,
        and answer-cache residency -- the one registry the Prometheus
        endpoint renders.  ``labels`` (typically ``{"tenant": name}``) is
        stamped on every sample.
        """
        base = dict(labels or {})
        families = self.metrics.metric_families(base)
        breaker_state = MetricFamily(
            "verdict_breaker_state",
            "gauge",
            "Route circuit-breaker state (0=closed, 1=half_open, 2=open).",
        )
        breaker_transitions = MetricFamily(
            "verdict_breaker_transitions_total",
            "counter",
            "Circuit-breaker state transitions, by route.",
        )
        for route, breaker in self._breakers.items():
            snapshot = breaker.snapshot()
            breaker_state.add(
                base | {"route": route.value},
                self._BREAKER_STATE_VALUES.get(snapshot["state"], 0),
            )
            breaker_transitions.add(
                base | {"route": route.value}, snapshot["transitions"]
            )
        trainer_restarts = MetricFamily(
            "verdict_trainer_restarts_total",
            "counter",
            "Background-trainer crash restarts.",
        ).add(base, self.trainer_restarts)
        trainer_dead = MetricFamily(
            "verdict_trainer_dead",
            "gauge",
            "1 when the background trainer exhausted its restarts.",
        ).add(base, 1 if self._trainer_dead else 0)
        cache_entries = MetricFamily(
            "verdict_cache_entries",
            "gauge",
            "Answer-cache entries resident.",
        ).add(base, self.cache_size())
        families += [
            breaker_state,
            breaker_transitions,
            trainer_restarts,
            trainer_dead,
            cache_entries,
        ]
        if self.store is not None:
            store_events = MetricFamily(
                "verdict_store_events_total",
                "counter",
                "Synopsis-store recovery and maintenance events, by kind.",
            )
            for name, count in sorted(self.store.counters.items()):
                store_events.add(base | {"event": name}, count)
            quarantined = MetricFamily(
                "verdict_store_quarantined",
                "gauge",
                "1 when the store quarantined a corrupt snapshot.",
            ).add(base, 1 if self.store.quarantined else 0)
            families += [store_events, quarantined]
        return families

    # -------------------------------------------------------------- lifecycle

    @contextmanager
    def _request_scope(self) -> Iterator[None]:
        """Count one direct request in flight; reject it unless serving.

        :meth:`close` drains these before the final snapshot, so a request
        that got past this gate always runs against a live engine and its
        mutations are always captured by the shutdown snapshot.
        """
        with self._lifecycle:
            if self._phase != "serving":
                raise ServiceError("service is closed")
            self._inflight += 1
        try:
            yield
        finally:
            with self._lifecycle:
                self._inflight -= 1
                if not self._inflight:
                    self._lifecycle.notify_all()

    # ------------------------------------------------------------------ routes

    def _degrade(
        self, best: ServedAnswer, budget: ServiceBudget, started: float
    ) -> ServedAnswer:
        """Flag ``best`` as the degraded partial answer of an expired deadline."""
        wall = time.perf_counter() - started
        answer = replace(
            best,
            wall_seconds=wall,
            budget_met=False,
            recorded=False,
            degraded=True,
            degraded_reason=(
                f"deadline of {budget.deadline_s:g}s expired before the "
                "error budget was met"
                if budget.deadline_s is not None
                else "deadline expired before the error budget was met"
            ),
        )
        self.metrics.record_event("deadline.degraded")
        self.metrics.observe(
            answer.route.value,
            wall,
            model_seconds=answer.model_seconds,
            budget_met=False,
            fallback=True,
        )
        return answer

    def _execute_route(
        self,
        decision: RouteDecision,
        parsed: ast.Query,
        check: CheckResult,
        budget: ServiceBudget,
    ) -> tuple[ServedAnswer, AQPAnswer | None, tuple[int, int, int]]:
        """Run one route; returns (answer, raw, versions-at-execution).

        The (synopsis, catalog, models) version triple is captured while the
        table read lock is still held, so it is consistent with the state
        the answer was computed over -- a mutation racing in after the lock
        is released cannot tag this answer as fresher than it is.
        """
        faults.inject(f"service.route.{decision.route.value}", table=parsed.table)
        lock = self._table_lock(parsed.table)
        with lock.read():
            if decision.route is Route.LEARNED:
                # The learned answer depends on the models, which background
                # training swaps under the engine lock alone (no table
                # lock), so its models-version stamp must be captured
                # *inside* the engine lock the inference ran under --
                # reading it here could tag a pre-train answer as
                # post-train.
                answer, raw, models_version = self._run_learned(parsed, check, budget)
            elif decision.route is Route.ONLINE_AGG:
                answer, raw = self._run_online_agg(parsed, check, budget)
                models_version = self.engine.models_version
            elif decision.route is Route.EXACT:
                answer, raw = self._run_exact(parsed, check, decision)
                models_version = self.engine.models_version
            else:
                raise ServiceError(f"unexpected route {decision.route}")
            versions = (
                self.engine.synopsis.version,
                self.catalog.catalog_version,
                models_version,
            )
            return answer, raw, versions

    def _run_learned(
        self, parsed: ast.Query, check: CheckResult, budget: ServiceBudget
    ) -> tuple[ServedAnswer, AQPAnswer, int]:
        improved: VerdictAnswer | None = None
        raw: AQPAnswer | None = None
        models_version = self.engine.models_version
        degraded = False
        degraded_reason = ""
        try:
            for raw in self.aqp.run(parsed):
                with self._engine_lock:
                    improved = self.engine.process_answer(parsed, raw, check)
                    models_version = self.engine.models_version
                bound = improved.mean_relative_error_bound(self.multiplier)
                if budget.max_relative_error is None:
                    break  # best effort: the first improved batch is the answer
                if bound <= budget.max_relative_error:
                    break
                if (
                    budget.max_latency_s is not None
                    and improved.elapsed_seconds >= budget.max_latency_s
                ):
                    break
                if budget_hopeless(raw, bound, budget.max_relative_error):
                    break  # provably cannot reach the budget; escalate instead
        except DeadlineExceeded:
            # The batch loop polls the ambient deadline before each batch;
            # with at least one processed batch we hold a valid (if less
            # refined) estimate ± error -- serve it flagged, never discard it.
            if improved is None or raw is None:
                raise
            degraded = True
            degraded_reason = (
                f"deadline expired after {raw.batches_processed} sample batch(es)"
            )
        if improved is None or raw is None:
            raise ServiceError("online aggregation produced no answers")
        rows = tuple(
            ServedRow(
                group_values=row.group_values,
                values={name: est.value for name, est in row.estimates.items()},
                errors={
                    name: self.multiplier * est.error
                    for name, est in row.estimates.items()
                },
            )
            for row in improved.rows
        )
        answer = ServedAnswer(
            sql=parsed.text or "",
            route=Route.LEARNED,
            rows=rows,
            relative_error_bound=improved.mean_relative_error_bound(self.multiplier),
            model_seconds=improved.elapsed_seconds,
            wall_seconds=0.0,
            supported=check.supported,
            batches_processed=raw.batches_processed,
            degraded=degraded,
            degraded_reason=degraded_reason,
        )
        return answer, raw, models_version

    def _run_online_agg(
        self, parsed: ast.Query, check: CheckResult, budget: ServiceBudget
    ) -> tuple[ServedAnswer, AQPAnswer]:
        if budget.max_relative_error is None and budget.max_latency_s is None:
            raw = self.aqp.first_answer(parsed)
        else:
            raw = self.aqp.execute_with_budget(
                parsed,
                max_relative_error=budget.max_relative_error,
                max_latency_s=budget.max_latency_s,
                confidence_multiplier=self.multiplier,
                give_up_when_hopeless=True,
            )
        bound = raw.mean_relative_error_bound(self.multiplier)
        # The batch loop stops early when the ambient deadline expires (and
        # the partial prefix estimate is returned); flag that as degraded
        # unless the estimate happens to meet the error budget anyway.
        ambient = current_deadline()
        degraded = ambient is not None and ambient.expired and not budget.error_met(bound)
        rows = tuple(
            ServedRow(
                group_values=row.group_values,
                values={name: est.value for name, est in row.estimates.items()},
                errors={
                    name: self.multiplier * est.error
                    for name, est in row.estimates.items()
                },
            )
            for row in raw.rows
        )
        answer = ServedAnswer(
            sql=parsed.text or "",
            route=Route.ONLINE_AGG,
            rows=rows,
            relative_error_bound=bound,
            model_seconds=raw.elapsed_seconds,
            wall_seconds=0.0,
            supported=check.supported,
            batches_processed=raw.batches_processed,
            degraded=degraded,
            degraded_reason=(
                f"deadline expired after {raw.batches_processed} sample batch(es)"
                if degraded
                else ""
            ),
        )
        return answer, raw

    def _run_exact(
        self, parsed: ast.Query, check: CheckResult, decision: RouteDecision
    ) -> tuple[ServedAnswer, None]:
        result = self.exact.execute(parsed)
        rows = tuple(
            ServedRow(
                group_values=row.group_values,
                values=dict(row.aggregates),
                errors={name: 0.0 for name in row.aggregates},
            )
            for row in result.rows
        )
        answer = ServedAnswer(
            sql=parsed.text or "",
            route=Route.EXACT,
            rows=rows,
            relative_error_bound=0.0,
            model_seconds=decision.estimated_seconds,
            wall_seconds=0.0,
            supported=check.supported,
        )
        return answer, None

    # ----------------------------------------------------------------- writes

    def _record(
        self, parsed: ast.Query, raw: AQPAnswer
    ) -> tuple[bool, int, tuple[int, int, int]]:
        """Record a raw answer's snippets; returns version bookkeeping.

        The return value is ``(recorded, synopsis version immediately before
        the record, (synopsis, catalog, models) versions immediately
        after)`` -- the caller uses it to decide whether its own record was
        the *only* mutation since it executed (and its cache entry may carry
        the post-record stamp) or something else interleaved.
        """
        with self._table_lock(parsed.table).write():
            with self._engine_lock:
                pre_version = self.engine.synopsis.version
                added = self.engine.record(parsed, raw)
                post_versions = (
                    self.engine.synopsis.version,
                    self.catalog.catalog_version,
                    self.engine.models_version,
                )
        if added:
            self._note_mutation()
        return added > 0, pre_version, post_versions

    def _train_locked(
        self, locks: list[ReadWriteLock], index: int, learn: bool | None
    ) -> None:
        """Acquire all table write locks (sorted order) then train."""
        if index == len(locks):
            with self._engine_lock:
                self.engine.train(learn)
            return
        with locks[index].write():
            self._train_locked(locks, index + 1, learn)

    def _note_mutation(self, count_towards_training: bool = True) -> None:
        should_flush = False
        should_train = False
        with self._cache_lock:
            if self.store is not None:
                self._state.mutations_since_flush += 1
                should_flush = self._state.mutations_since_flush >= self.flush_every
                if should_flush:
                    self._state.mutations_since_flush = 0
            if count_towards_training and self.auto_train_every is not None:
                self._mutations_since_train += 1
                should_train = self._mutations_since_train >= self.auto_train_every
                if should_train:
                    self._mutations_since_train = 0
        if should_flush:
            try:
                self.flush()
            except (ReproError, OSError):
                # A failed periodic flush must not fail the request that
                # triggered it: the learned state simply stays dirty and the
                # next mutation retries.  Counted so operators see it.
                self.metrics.record_event("flush.error")
        if should_train:
            try:
                self.train_async()
            except (ServiceError, RuntimeError):
                # Lost the race with close(): the request that triggered the
                # auto-train already has its answer, and a closing service
                # has no use for another round.
                pass

    # ------------------------------------------------------------------- cache

    def _cache_lookup(
        self, request: Union[str, ast.Query], budget: ServiceBudget
    ) -> ServedAnswer | None:
        with self._cache_lock:
            entry: _CacheEntry | None = self._state.cache.get(request)
            if entry is None:
                return None
            stale = (
                entry.synopsis_version != self.engine.synopsis.version
                or entry.catalog_version != self.catalog.catalog_version
                or entry.models_version != self.engine.models_version
            )
            if stale:
                del self._state.cache[request]
                return None
            if not budget.error_met(entry.answer.relative_error_bound):
                return None
            self._state.cache.move_to_end(request)
            return entry.answer

    def _cache_probe(
        self, request: Union[str, ast.Query], budget: ServiceBudget
    ) -> ServedAnswer | None:
        """Read-only cache check for EXPLAIN: observes, never perturbs.

        Unlike :meth:`_cache_lookup` this neither evicts stale entries nor
        promotes hits in the LRU order -- an EXPLAIN must leave the service
        exactly as it found it.
        """
        with self._cache_lock:
            entry: _CacheEntry | None = self._state.cache.get(request)
            if entry is None:
                return None
            stale = (
                entry.synopsis_version != self.engine.synopsis.version
                or entry.catalog_version != self.catalog.catalog_version
                or entry.models_version != self.engine.models_version
            )
            if stale or not budget.error_met(entry.answer.relative_error_bound):
                return None
            return entry.answer

    def _cache_store(
        self,
        request: Union[str, ast.Query],
        answer: ServedAnswer,
        versions: tuple[int, int, int],
    ) -> None:
        """Store an answer stamped with the versions it was computed under.

        ``versions`` must be captured at execution (or post-own-record) time,
        never read here: a mutation racing in between execution and this call
        would otherwise stamp a pre-mutation answer as current.
        """
        with self._cache_lock:
            self._state.cache[request] = _CacheEntry(
                answer=answer,
                synopsis_version=versions[0],
                catalog_version=versions[1],
                models_version=versions[2],
            )
            self._state.cache.move_to_end(request)
            while len(self._state.cache) > self.cache_capacity:
                self._state.cache.popitem(last=False)

    # ------------------------------------------------------------------- locks

    def _table_lock(self, table_name: str) -> ReadWriteLock:
        with self._table_locks_guard:
            lock = self._table_locks.get(table_name)
            if lock is None:
                lock = ReadWriteLock()
                self._table_locks[table_name] = lock
            return lock
