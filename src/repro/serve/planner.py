"""Budget-aware query planning: route each request to the cheapest engine.

Every request arrives with a :class:`ServiceBudget` (maximum relative error
bound, maximum model-time latency).  The :class:`QueryPlanner` inspects the
parsed query, the supported-class check, and the current synopsis, and emits
an ordered list of :class:`RouteDecision`\\ s -- cheapest first -- for the
service to try:

1. **cached** -- a previously computed answer whose synopsis/catalog versions
   are still current and whose error bound fits the budget (checked by the
   service, which owns the cache);
2. **learned** -- online aggregation improved by Verdict's inference: the
   first sample batch usually already meets a loose error budget because the
   synopsis tightens the bound (the paper's Figure 4 effect), making this the
   cheapest non-cached route on a warm service;
3. **online_agg** -- plain online aggregation, refining batch by batch until
   the raw CLT bound meets the budget (works for supported *and* unsupported
   aggregate queries);
4. **exact** -- the exact executor: always correct, always the most
   expensive (a full denormalised scan under the IO cost model).

Cost estimates use the same deterministic IO cost model the AQP engines
charge, so "cheapest" is well-defined and reproducible.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.aqp.estimators import confidence_multiplier
from repro.core.engine import VerdictEngine
from repro.db.scan import estimate_scan_rows
from repro.errors import ServiceError
from repro.sqlparser import ast
from repro.sqlparser.checker import CheckResult


class Route(str, enum.Enum):
    """The four ways the serving layer can answer a request."""

    CACHED = "cached"
    LEARNED = "learned"
    ONLINE_AGG = "online_agg"
    EXACT = "exact"


@dataclass(frozen=True)
class ServiceBudget:
    """Per-request error / latency budget.

    Parameters
    ----------
    max_relative_error:
        Largest acceptable mean relative error *bound* (at the service's
        confidence level).  ``0.0`` demands an exact answer; ``None`` means
        any approximation is acceptable (best effort, cheapest route wins).
    max_latency_s:
        Largest acceptable latency in *model* seconds (the deterministic IO
        cost model's clock, not wall time).  ``None`` means unbounded.
    deadline_s:
        Hard **wall-clock** deadline for the whole request, in real seconds.
        Unlike ``max_latency_s`` (a planning input on the deterministic cost
        model's clock) this is enforced at run time with cooperative
        cancellation: when it expires mid-request the service returns the
        best partial estimate flagged *degraded*, or raises
        :class:`~repro.errors.DeadlineExceeded` (HTTP 504) when no estimate
        exists yet.  ``None`` means no deadline.
    """

    max_relative_error: float | None = None
    max_latency_s: float | None = None
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_relative_error is not None and self.max_relative_error < 0:
            raise ServiceError("max_relative_error must be non-negative")
        if self.max_latency_s is not None and self.max_latency_s <= 0:
            raise ServiceError("max_latency_s must be positive")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ServiceError("deadline_s must be positive")

    @property
    def requires_exact(self) -> bool:
        return self.max_relative_error is not None and self.max_relative_error == 0.0

    def error_met(self, relative_error_bound: float) -> bool:
        """Whether an answer with this error bound satisfies the budget."""
        if self.max_relative_error is None:
            return True
        return relative_error_bound <= self.max_relative_error

    @classmethod
    def exact(cls, max_latency_s: float | None = None) -> "ServiceBudget":
        """A budget demanding the exact answer."""
        return cls(max_relative_error=0.0, max_latency_s=max_latency_s)

    @classmethod
    def interactive(
        cls, max_relative_error: float = 0.05, max_latency_s: float | None = None
    ) -> "ServiceBudget":
        """A typical dashboard budget: 5% error bound, optional latency cap."""
        return cls(max_relative_error=max_relative_error, max_latency_s=max_latency_s)


@dataclass(frozen=True)
class RouteDecision:
    """One planned route with the planner's reasoning and cost estimates.

    ``estimated_rows`` is the rows the route is expected to touch (the
    pruned-scan estimate for exact, the first sample batch plus dimension
    rows for the approximate routes).  ``estimated_error`` is the planner's
    a-priori relative-error-bound proxy: ``0.0`` for exact; for the sample
    routes the unit-coefficient-of-variation CLT bound
    ``multiplier / sqrt(batch rows)`` -- the actual bound scales with the
    data's dispersion, but the proxy ranks routes and, recorded next to the
    observed bound in the request trace, is the predicted-vs-observed pair
    the adaptive planner will calibrate on.
    """

    route: Route
    reason: str
    estimated_seconds: float
    estimated_rows: int = 0
    estimated_error: float | None = None

    def as_dict(self) -> dict:
        """Plain-data rendering for EXPLAIN output and trace attributes."""
        return {
            "route": self.route.value,
            "reason": self.reason,
            "estimated_seconds": self.estimated_seconds,
            "estimated_rows": self.estimated_rows,
            "estimated_error": self.estimated_error,
        }


class QueryPlanner:
    """Plans the route order for one request given its budget."""

    def __init__(self, engine: VerdictEngine, confidence: float = 0.95):
        self.engine = engine
        self.confidence = confidence
        self.multiplier = confidence_multiplier(confidence)

    # ------------------------------------------------------------------ public

    def plan(
        self, query: ast.Query, check: CheckResult, budget: ServiceBudget
    ) -> list[RouteDecision]:
        """Ordered route preference (cheapest first) for one request.

        The cached route is not planned here: the service consults its answer
        cache before calling the planner (a hit needs no plan at all).
        """
        exact_cost = self.estimated_exact_seconds(query)
        exact_rows = self.estimated_exact_rows(query)
        if budget.requires_exact:
            return [
                RouteDecision(
                    route=Route.EXACT,
                    reason="budget demands an exact answer",
                    estimated_seconds=exact_cost,
                    estimated_rows=exact_rows,
                    estimated_error=0.0,
                )
            ]

        decisions: list[RouteDecision] = []
        batch_cost = self.estimated_first_batch_seconds(query)
        batch_rows = self.estimated_first_batch_rows(query)
        batch_error = self.estimated_batch_error(batch_rows)
        if check.supported:
            ready = self.synopsis_snippets_for(query.table)
            if ready > 0:
                decisions.append(
                    RouteDecision(
                        route=Route.LEARNED,
                        reason=(
                            f"synopsis holds {ready} snippets for {query.table!r}; "
                            "inference tightens the first-batch bound"
                        ),
                        estimated_seconds=batch_cost,
                        estimated_rows=batch_rows,
                        # Theorem 1: the improved bound is never larger than
                        # the raw first-batch bound, so the raw proxy is a
                        # (conservative) estimate for the learned route too.
                        estimated_error=batch_error,
                    )
                )
        # Online aggregation stays in the plan even when the learned route
        # precedes it, as the fallback for inference *errors* -- but the
        # service skips it whenever the learned route produced an answer:
        # the improved bound is never larger than the raw bound (Theorem 1),
        # so a budget the learned route missed cannot be met by re-refining
        # the same raw answers without inference.
        decisions.append(
            RouteDecision(
                route=Route.ONLINE_AGG,
                reason=(
                    "online aggregation refines the raw CLT bound batch by batch"
                    if budget.max_relative_error is not None
                    else "no error budget given; cheapest raw approximation"
                ),
                estimated_seconds=batch_cost,
                estimated_rows=batch_rows,
                estimated_error=batch_error,
            )
        )
        decisions.append(
            RouteDecision(
                route=Route.EXACT,
                reason="fallback: exact scan always meets any error budget",
                estimated_seconds=exact_cost,
                estimated_rows=exact_rows,
                estimated_error=0.0,
            )
        )
        return decisions

    # --------------------------------------------------------------- estimates

    def synopsis_snippets_for(self, table: str) -> int:
        """How many past snippets the synopsis holds for one fact table."""
        synopsis = self.engine.synopsis
        threshold = max(self.engine.config.min_past_snippets, 1)
        total = 0
        for key in synopsis.keys():
            if key.table == table:
                count = synopsis.count(key)
                if count >= threshold:
                    total += count
        return total

    def estimated_exact_seconds(self, query: ast.Query) -> float:
        """Model seconds for an exact answer: a *pruned* denormalised scan.

        The exact executor scans partition-wise and skips partitions whose
        zone maps prove no row can match (:mod:`repro.db.scan`), so the cost
        estimate charges only the rows of the surviving partitions -- a
        selective predicate over clustered data makes the exact route far
        cheaper than a full scan, and the planner's route ordering sees that.
        Predicates over joined dimension attributes prune conservatively
        (they are not resolvable on the fact table alone).
        """
        return self.engine.aqp.cost_model.query_seconds(
            self.estimated_exact_rows(query)
        )

    def estimated_exact_rows(self, query: ast.Query) -> int:
        """Rows the exact route must touch: pruned fact scan plus dimensions."""
        catalog = self.engine.catalog
        if catalog.has_table(query.table):
            rows = estimate_scan_rows(catalog.table(query.table), query.where)
        else:
            rows = 0
        return rows + self._dimension_rows(query)

    def estimated_first_batch_seconds(self, query: ast.Query) -> float:
        """Model seconds for the cheapest approximate answer (one batch)."""
        return self.engine.aqp.cost_model.query_seconds(
            self.estimated_first_batch_rows(query)
        )

    def estimated_first_batch_rows(self, query: ast.Query) -> int:
        """Rows one sample batch touches, dimension joins included."""
        aqp = self.engine.aqp
        catalog = self.engine.catalog
        if not catalog.has_table(query.table):
            return 0
        sample = aqp.samples.sample_for(query.table)
        return sample.rows_after_batches(1) + self._dimension_rows(query)

    def estimated_batch_error(self, batch_rows: int) -> float:
        """A-priori relative-error-bound proxy for a ``batch_rows`` sample.

        The CLT bound at the planner's confidence, assuming a unit
        coefficient of variation (the dispersion term the planner cannot
        know without scanning).  See :class:`RouteDecision`.
        """
        return self.multiplier / math.sqrt(max(batch_rows, 1))

    def _dimension_rows(self, query: ast.Query) -> int:
        catalog = self.engine.catalog
        return sum(
            catalog.cardinality(join.table)
            for join in query.joins
            if catalog.has_table(join.table)
        )
