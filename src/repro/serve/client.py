"""Thin blocking HTTP client for the Verdict front door.

:class:`VerdictClient` wraps the ``/v1`` wire protocol of
:mod:`repro.serve.http` in plain method calls.  Stdlib only
(``http.client``), one keep-alive connection per client instance (**not**
thread-safe -- give each thread its own client, as the benchmarks do).

Backpressure handling: a 429 (shed load) is retried automatically with
capped exponential backoff plus deterministic jitter, up to
``max_retries`` attempts -- the client-side half of the admission
contract, and what the backpressure property test asserts "eventually
succeeds once load drops".  A ``Retry-After`` header, when the server
sends one, overrides the computed backoff (jittered *upward* only, so the
client never comes back earlier than asked).  A 503 (server draining) is
retried only when it carries ``Retry-After`` -- an explicit "come back
later"; a bare 503 means the server is going away and the caller should
fail over, not camp on the socket.

Transport-level drops are split by *when* the connection died.  A refused
or failed **connect** means the request was provably never sent, so it is
safe to retry -- against the next endpoint when several are configured --
for *any* request, mutating or not.  A connection that died **in flight**
(reset, timeout after the bytes left) leaves the request's fate unknown:
those reconnect and retry only when ``retry_transport_errors`` is set
**and the request is idempotent** (``ask`` with ``record=False`` and every
GET).  Anything that mutates learned state (``feedback/append``,
``feedback/record``, recording asks, admin calls) is never replayed
blindly -- a duplicate append would silently double rows.  Non-idempotent
in-flight drops raise :class:`TransportError` so callers see crashes
honestly and decide themselves.

Failover: pass ``endpoints=["host:a", "host:b"]`` to spread one logical
service over a replicated leader/follower pair.  A mutating request that
lands on a read-only follower comes back as a typed 503 whose body names
the leader; the client adopts that endpoint and retries -- safe for any
request, because the follower rejected it before doing anything.  A
``retry_budget_s`` wall-clock budget bounds the *total* time spent
retrying (backoff sleeps included) per call; exceeding it raises
:class:`RetriesExhausted` instead of sleeping into the caller's deadline.

Every HTTP error status maps to a typed exception carrying the server's
machine-readable error code (:class:`BadRequestError`,
:class:`NotFoundError`, :class:`ConflictError`, :class:`SaturatedError`,
:class:`ServerClosingError`, :class:`RemoteError`).
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
from typing import Mapping, Sequence

from repro.errors import ReproError


class ClientError(ReproError):
    """Base class for everything the client can raise."""

    def __init__(self, message: str, status: int | None = None, code: str | None = None):
        super().__init__(message)
        self.status = status
        self.code = code


class TransportError(ClientError):
    """The connection died (refused, reset, timed out) before a response."""


class BadRequestError(ClientError):
    """400: malformed request (schema violation, invalid SQL, bad rows)."""


class NotFoundError(ClientError):
    """404: unknown tenant, table, or route."""


class ConflictError(ClientError):
    """409: tenant already exists."""


class SaturatedError(ClientError):
    """429: shed by admission control and retries exhausted.

    ``quota``, when the shed came from the per-tenant resource governor,
    is the tenant's quota state from the error body (remaining tokens,
    refill wait, concurrency) at the final attempt.
    """

    def __init__(
        self,
        message: str,
        status: int | None = None,
        code: str | None = None,
        quota: dict | None = None,
    ):
        super().__init__(message, status=status, code=code)
        self.quota = quota


class CancelledError(ClientError):
    """499: the request was cancelled mid-flight (cancel API / disconnect)."""


class ServerClosingError(ClientError):
    """503: the server is shutting down."""


class RemoteError(ClientError):
    """Any other non-2xx response (including 500 internal errors)."""


class RetriesExhausted(ClientError):
    """The per-call ``retry_budget_s`` wall clock ran out while retrying.

    Raised *instead of* sleeping past the budget, so a caller with a
    deadline gets the time back.  Carries the last status/code seen.
    """


def parse_endpoint(value: str, default_port: int = 8123) -> tuple[str, int]:
    """``host``, ``host:port``, or ``http://host:port[/...]`` -> (host, port)."""
    text = value.strip()
    if "//" in text:
        text = text.split("//", 1)[1]
    text = text.split("/", 1)[0]
    host, _, port = text.partition(":")
    if not host:
        raise ClientError(f"invalid endpoint {value!r}")
    if not port:
        return host, default_port
    try:
        return host, int(port)
    except ValueError:
        raise ClientError(f"invalid endpoint {value!r}") from None


_STATUS_EXCEPTIONS = {
    400: BadRequestError,
    404: NotFoundError,
    409: ConflictError,
    429: SaturatedError,
    499: CancelledError,
    503: ServerClosingError,
}


class VerdictClient:
    """Blocking JSON client for one front-door server (one tenant by default).

    Parameters
    ----------
    host, port:
        The server address.
    tenant:
        Default tenant for every call (overridable per call).
    timeout_s:
        Socket timeout for connect and each response read.
    max_retries:
        How many times a 429 is retried before :class:`SaturatedError`.
    backoff_base_s, backoff_cap_s:
        Exponential backoff schedule: attempt ``k`` sleeps
        ``min(cap, base * 2**k)`` scaled by jitter in ``[0.5, 1.0]``.
    retry_transport_errors:
        Also retry (with the same backoff) when an established connection
        drops mid-request, for *idempotent* requests only (GETs and
        non-recording asks) -- useful across a server restart; off by
        default.  A failed *connect* is always retryable regardless (the
        request was never sent).
    seed:
        Seed of the deterministic jitter stream.
    endpoints:
        Optional list of ``host:port`` endpoints forming one logical
        service (a replicated pair).  The first is tried first; a refused
        connect or a follower rejection rotates to the next.  Overrides
        ``host``/``port``.
    retry_budget_s:
        Wall-clock budget for retrying one call (sleeps included).  When a
        retry would sleep past it, :class:`RetriesExhausted` is raised
        instead.  ``None`` (default) keeps the attempt-count limit only.
    follow_leader_hints:
        Follow the ``leader`` endpoint named in a follower's typed 503
        rejection (on by default).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8123,
        tenant: str | None = None,
        timeout_s: float = 30.0,
        max_retries: int = 6,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        retry_transport_errors: bool = False,
        seed: int = 0,
        endpoints: Sequence[str] | None = None,
        retry_budget_s: float | None = None,
        follow_leader_hints: bool = True,
    ):
        if endpoints:
            self._endpoints = [parse_endpoint(entry) for entry in endpoints]
        else:
            self._endpoints = [(host, port)]
        self._endpoint_index = 0
        self.host, self.port = self._endpoints[0]
        self.tenant = tenant
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.retry_transport_errors = retry_transport_errors
        self.retry_budget_s = retry_budget_s
        self.follow_leader_hints = follow_leader_hints
        self.retries_performed = 0
        #: Endpoint switches performed (rotations + followed leader hints).
        self.failovers_performed = 0
        #: Request id of the most recent response (the server echoes the
        #: offered X-Request-Id or the id it minted).
        self.last_request_id: str | None = None
        #: Tenant quota state from the most recent governor 429 body, if
        #: any -- remaining tokens, refill wait, concurrency.
        self.last_quota: dict | None = None
        self._random = random.Random(seed)
        self._connection: http.client.HTTPConnection | None = None

    # ----------------------------------------------------------------- public

    def ask(
        self,
        sql: str,
        tenant: str | None = None,
        max_relative_error: float | None = None,
        max_latency_s: float | None = None,
        deadline_s: float | None = None,
        record: bool | None = None,
        request_id: str | None = None,
    ) -> dict:
        """Answer one SQL request; returns the answer state dict.

        ``request_id``, when given, is sent as the ``X-Request-Id`` header
        so the server adopts it end to end (audit log, trace ring).  The id
        the server actually used -- minted when none was offered -- is
        available afterwards as :attr:`last_request_id`.
        """
        payload = {
            "tenant": self._tenant(tenant),
            "sql": sql,
            "max_relative_error": max_relative_error,
            "max_latency_s": max_latency_s,
            "deadline_s": deadline_s,
            "record": record,
        }
        # Only a non-recording ask is replayable after a dropped
        # connection: with record unset or True the server may already have
        # mutated the synopsis before the connection died.
        return self._request(
            "POST",
            "/v1/ask",
            payload,
            idempotent=record is False,
            request_id=request_id,
        )["answer"]

    def ask_traced(
        self,
        sql: str,
        tenant: str | None = None,
        max_relative_error: float | None = None,
        max_latency_s: float | None = None,
        deadline_s: float | None = None,
        record: bool | None = None,
        request_id: str | None = None,
    ) -> dict:
        """Like :meth:`ask`, with the request's span tree attached.

        Returns the full response payload: ``answer``, ``trace`` (the span
        tree, or ``None`` when the server runs untraced), ``request_id``.
        """
        payload = {
            "tenant": self._tenant(tenant),
            "sql": sql,
            "max_relative_error": max_relative_error,
            "max_latency_s": max_latency_s,
            "deadline_s": deadline_s,
            "record": record,
            "trace": True,
        }
        return self._request(
            "POST",
            "/v1/ask",
            payload,
            idempotent=record is False,
            request_id=request_id,
        )

    def explain(
        self,
        sql: str,
        tenant: str | None = None,
        max_relative_error: float | None = None,
        max_latency_s: float | None = None,
        deadline_s: float | None = None,
    ) -> dict:
        """The planner's full decision record for one request, not executed.

        Returns the candidate-route table (cost/error estimates, breaker
        states, skip reasons), the chosen route, cost-model inputs, and
        cache/version state -- see ``VerdictService.explain``.
        """
        payload = {
            "tenant": self._tenant(tenant),
            "sql": sql,
            "max_relative_error": max_relative_error,
            "max_latency_s": max_latency_s,
            "deadline_s": deadline_s,
            "explain": True,
        }
        # EXPLAIN executes nothing, so it is always replayable.
        return self._request("POST", "/v1/ask", payload, idempotent=True)["explain"]

    def trace(self, request_id: str) -> dict:
        """The finished span tree of one served request, from the ring."""
        return self._request(
            "GET", f"/v1/trace/{request_id}", idempotent=True
        )["trace"]

    def metrics_prometheus(self, tenant: str | None = None) -> str:
        """The Prometheus text exposition (server-wide or tenant-scoped)."""
        name = tenant if tenant is not None else self.tenant
        path = "/v1/metrics?format=prometheus" + (f"&tenant={name}" if name else "")
        return self._request("GET", path, idempotent=True, raw=True)

    def append(
        self,
        table: str,
        rows: Mapping[str, Sequence],
        tenant: str | None = None,
        adjust: bool = True,
    ) -> dict:
        """Append rows (column -> values mapping) to a tenant fact table."""
        payload = {
            "tenant": self._tenant(tenant),
            "table": table,
            "rows": {column: list(values) for column, values in rows.items()},
            "adjust": adjust,
        }
        return self._request("POST", "/v1/feedback/append", payload)

    def record(self, sql: str, tenant: str | None = None) -> bool:
        """Full-scan one query and record its snippets (training aid)."""
        payload = {"tenant": self._tenant(tenant), "sql": sql}
        return self._request("POST", "/v1/feedback/record", payload)["recorded"]

    def metrics(self, tenant: str | None = None) -> dict:
        """Tenant-scoped metrics, or server-wide when no tenant is set."""
        name = tenant if tenant is not None else self.tenant
        path = "/v1/metrics" + (f"?tenant={name}" if name else "")
        return self._request("GET", path, idempotent=True)

    def train(
        self, tenant: str | None = None, learn: bool | None = None, wait: bool = True
    ) -> dict:
        payload = {"tenant": self._tenant(tenant), "learn": learn, "wait": wait}
        return self._request("POST", "/v1/admin/train", payload)

    def snapshot(self, tenant: str | None = None) -> dict:
        payload = {"tenant": self._tenant(tenant)}
        return self._request("POST", "/v1/admin/snapshot", payload)

    def create_tenant(self, tenant: str | None = None) -> dict:
        payload = {"tenant": self._tenant(tenant)}
        return self._request("POST", "/v1/admin/tenants", payload)

    def list_tenants(self) -> list[dict]:
        return self._request("GET", "/v1/admin/tenants", idempotent=True)["tenants"]

    def cancel(self, request_id: str) -> dict:
        """Cancel the in-flight request with this id (cooperatively).

        Returns ``{"cancelled": true, ...}`` when the id was in flight;
        raises :class:`NotFoundError` when it already finished or was never
        admitted.  Safe to repeat: cancellation is idempotent.
        """
        return self._request("POST", f"/v1/cancel/{request_id}", {}, idempotent=True)

    def health(self) -> dict:
        return self._request("GET", "/v1/healthz", idempotent=True)

    # ------------------------------------------------------------- replication

    def replication_status(self) -> dict:
        """Role, fencing epoch, per-tenant lag/ack state of this node."""
        return self._request("GET", "/v1/replication/status", idempotent=True)

    def replication_snapshot(self, tenant: str | None = None) -> dict:
        """A shippable bootstrap snapshot document for one tenant."""
        name = self._tenant(tenant)
        return self._request(
            "GET", f"/v1/replication/snapshot?tenant={name}", idempotent=True
        )

    def replication_deltas(
        self,
        tenant: str | None = None,
        from_seq: int = 0,
        epoch: int | None = None,
        lineage: str | None = None,
        max_records: int | None = None,
    ) -> dict:
        """The leader's WAL tail past ``from_seq`` (also acks through it)."""
        name = self._tenant(tenant)
        path = f"/v1/replication/deltas?tenant={name}&from={from_seq}"
        if epoch is not None:
            path += f"&epoch={epoch}"
        if lineage:
            path += f"&lineage={lineage}"
        if max_records is not None:
            path += f"&max_records={max_records}"
        return self._request("GET", path, idempotent=True)

    def promote(self) -> dict:
        """Promote the connected follower to leader (manual failover)."""
        return self._request("POST", "/v1/admin/promote", {})

    def fence(self, epoch: int, lineage: str) -> dict:
        """Tell this node a newer leader exists: stop accepting writes."""
        return self._request(
            "POST", "/v1/replication/fence", {"epoch": epoch, "lineage": lineage}
        )

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "VerdictClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ---------------------------------------------------------------- private

    def _tenant(self, tenant: str | None) -> str:
        name = tenant if tenant is not None else self.tenant
        if not name:
            raise ClientError("no tenant given (set client.tenant or pass tenant=)")
        return name

    def _backoff(self, attempt: int, retry_after: str | None = None) -> float:
        """Sleep duration before retry ``attempt``.

        A parsable server ``Retry-After`` is a floor, jittered upward by up
        to 50% so a fleet of shed clients does not return in lockstep; the
        client never comes back *earlier* than the server asked.
        """
        if retry_after is not None:
            try:
                asked = float(retry_after)
            except ValueError:
                asked = None
            if asked is not None and asked >= 0:
                return asked * (1.0 + 0.5 * self._random.random())
        delay = min(self.backoff_cap_s, self.backoff_base_s * (2.0**attempt))
        return delay * (0.5 + 0.5 * self._random.random())

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s
            )
        return self._connection

    def _drop_connection(self) -> None:
        if self._connection is not None:
            try:
                self._connection.close()
            except OSError:
                pass
            self._connection = None

    def _rotate_endpoint(self) -> bool:
        """Switch to the next configured endpoint; False with only one."""
        if len(self._endpoints) < 2:
            return False
        self._drop_connection()
        self._endpoint_index = (self._endpoint_index + 1) % len(self._endpoints)
        self.host, self.port = self._endpoints[self._endpoint_index]
        self.failovers_performed += 1
        return True

    def _adopt_endpoint(self, endpoint: str) -> None:
        """Point at the leader a follower's rejection named."""
        host, port = parse_endpoint(endpoint)
        self._drop_connection()
        if (host, port) in self._endpoints:
            self._endpoint_index = self._endpoints.index((host, port))
        else:
            self._endpoints.append((host, port))
            self._endpoint_index = len(self._endpoints) - 1
        self.host, self.port = host, port
        self.failovers_performed += 1

    def _sleep_within_budget(
        self, delay: float, deadline: float | None, context: str
    ) -> None:
        """Back off for ``delay`` -- unless that would bust the retry budget."""
        if deadline is not None and time.monotonic() + delay > deadline:
            raise RetriesExhausted(
                f"{context}: retry budget of {self.retry_budget_s:g}s exhausted"
            )
        if delay > 0:
            time.sleep(delay)

    @staticmethod
    def _error_info(data: bytes) -> dict:
        """The typed error object of a failure body, tolerating garbage."""
        try:
            payload = json.loads(data) if data else {}
        except json.JSONDecodeError:
            return {}
        error = payload.get("error") if isinstance(payload, dict) else None
        return error if isinstance(error, dict) else {}

    def _request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        idempotent: bool = False,
        request_id: str | None = None,
        raw: bool = False,
    ) -> dict | str:
        body = None
        headers = {}
        if payload is not None:
            # Omit explicit Nones: optional fields simply stay unsent.
            body = json.dumps(
                {key: value for key, value in payload.items() if value is not None}
            ).encode()
            headers["Content-Type"] = "application/json"
        if request_id is not None:
            headers["X-Request-Id"] = request_id
        context = f"{method} {path}"
        attempt = 0
        # Endpoint switches (rotations, followed leader hints) are bounded
        # separately from backoff retries: they are free of double-execution
        # risk but must not ping-pong forever between two confused nodes.
        hops = 0
        max_hops = len(self._endpoints) + 2
        deadline = (
            None
            if self.retry_budget_s is None
            else time.monotonic() + self.retry_budget_s
        )
        while True:
            connection = self._connect()
            if connection.sock is None:
                # Connect explicitly so a refused/unreachable endpoint is
                # distinguishable from an in-flight drop: nothing was sent,
                # so retrying is safe for ANY request, mutating or not.
                try:
                    connection.connect()
                except OSError as error:
                    self._drop_connection()
                    rotated = hops < max_hops and self._rotate_endpoint()
                    if rotated:
                        hops += 1
                    if attempt < self.max_retries and (
                        rotated or self.retry_transport_errors
                    ):
                        self.retries_performed += 1
                        delay = 0.0 if rotated else self._backoff(attempt)
                        self._sleep_within_budget(delay, deadline, context)
                        attempt += 1
                        continue
                    raise TransportError(
                        f"{context} failed: connect to {self.host}:{self.port}: "
                        f"{type(error).__name__}: {error}"
                    ) from error
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                data = response.read()
                status = response.status
                retry_after = response.getheader("Retry-After")
                self.last_request_id = response.getheader("X-Request-Id")
            except (
                ConnectionError,
                http.client.HTTPException,
                socket.timeout,
                OSError,
            ) as error:
                self._drop_connection()
                # An in-flight drop leaves the request's fate unknown; only
                # requests that are safe to execute twice are replayed --
                # against the next endpoint when one is configured.
                if (
                    self.retry_transport_errors
                    and idempotent
                    and attempt < self.max_retries
                ):
                    if hops < max_hops and self._rotate_endpoint():
                        hops += 1
                    self.retries_performed += 1
                    self._sleep_within_budget(
                        self._backoff(attempt), deadline, context
                    )
                    attempt += 1
                    continue
                raise TransportError(
                    f"{context} failed: {type(error).__name__}: {error}"
                ) from error
            if status == 429:
                # A governor shed's body carries the tenant's quota state;
                # remember it (the Retry-After header it came with is
                # already derived from the bucket refill, so the backoff
                # below honors the quota automatically).
                quota = self._error_info(data).get("quota")
                if isinstance(quota, dict):
                    self.last_quota = quota
                if attempt < self.max_retries:
                    self.retries_performed += 1
                    self._sleep_within_budget(
                        self._backoff(attempt, retry_after), deadline, context
                    )
                    attempt += 1
                    continue
            if status == 503:
                info = self._error_info(data)
                if (
                    info.get("code") == "read_only_follower"
                    and self.follow_leader_hints
                    and hops < max_hops
                ):
                    # The follower rejected the request before doing any
                    # work, so retrying elsewhere is safe even for
                    # mutations.  Prefer the leader it named; otherwise try
                    # the next configured endpoint.
                    leader = info.get("leader")
                    if leader:
                        self._adopt_endpoint(leader)
                        hops += 1
                        continue
                    if self._rotate_endpoint():
                        hops += 1
                        continue
                if retry_after is not None and attempt < self.max_retries:
                    # An explicit "come back later" (e.g. a rolling
                    # restart); a bare 503 still fails fast below.
                    self.retries_performed += 1
                    self._sleep_within_budget(
                        self._backoff(attempt, retry_after), deadline, context
                    )
                    attempt += 1
                    continue
            if raw and 200 <= status < 300:
                return data.decode("utf-8", errors="replace")
            return self._decode(method, path, status, data)

    def _decode(self, method: str, path: str, status: int, data: bytes) -> dict:
        try:
            payload = json.loads(data) if data else {}
        except json.JSONDecodeError as error:
            raise RemoteError(
                f"{method} {path}: unparsable {status} response", status=status
            ) from error
        if 200 <= status < 300:
            return payload
        error_info = payload.get("error", {}) if isinstance(payload, dict) else {}
        code = error_info.get("code")
        message = error_info.get("message", f"HTTP {status}")
        exc_type = _STATUS_EXCEPTIONS.get(status, RemoteError)
        if exc_type is SaturatedError:
            quota = error_info.get("quota")
            raise SaturatedError(
                f"{method} {path}: {message}",
                status=status,
                code=code,
                quota=quota if isinstance(quota, dict) else None,
            )
        raise exc_type(f"{method} {path}: {message}", status=status, code=code)
