"""Per-tenant resource governance: token buckets, cancellation, brownout.

The global :class:`~repro.serve.http.admission.AdmissionController` bounds
*total* concurrent engine work, but it is tenant-blind: one abusive tenant
offering unbounded load fills the shared queue and starves everyone else.
This module layers three mechanisms under it:

**Cost-priced token buckets** (:class:`TokenBucket`, :class:`ResourceGovernor`).
Every tenant owns a bucket refilled at ``tenant_qps`` tokens per second with
``burst_s`` seconds of burst capacity.  A request's price comes from the
planner's deterministic cost estimates *before* any engine work runs: a
cheap cached/learned ask costs about one token, a forced exact scan costs
``1 + estimated_seconds / cost_unit_s``.  A tenant whose bucket cannot
cover the price is shed with a 429 carrying its quota state (remaining
tokens, refill wait) so well-behaved tenants never queue behind an abuser.
Tokens price *offered* load: a governor-admitted request that the global
controller later sheds does not get a refund -- hammering a saturated
server still spends quota, which is exactly the pressure that protects the
other tenants.

**Cooperative cancellation** (:class:`CancelRegistry`).  The front door
registers each in-flight ask's :class:`~repro.deadline.CancelToken` under
its request id; ``POST /v1/cancel/<request_id>`` (or a client disconnect
detected by the token's socket probe) arms the token, and the next
``check_deadline`` poll deep in the scan/online-agg loops raises
:class:`~repro.errors.QueryCancelled` -- the worker slot frees promptly and
nothing is cached or recorded.

**Brownout** (:class:`BrownoutController`).  Under sustained saturation
(admission queue-wait p99 over a threshold for N consecutive windows) the
controller escalates a brownout level that widens every request's
error tolerance -- and, at deeper levels, replaces a hard ``exact``
requirement with a small error floor -- steering the planner onto the
cheap approximate routes so goodput degrades smoothly instead of
collapsing into a wall of 429s.  M consecutive healthy windows walk the
level back down.  Level, transitions, and window verdicts are exported as
Prometheus families and surfaced in ``/v1/healthz`` and EXPLAIN.

Everything here is deliberately engine-free: the governor prices requests
from numbers the planner already computed and never touches tables, so a
shed costs microseconds.
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager
from dataclasses import replace
from typing import Callable, Iterator

from repro import faults
from repro.deadline import CancelToken
from repro.obs.metrics import MetricFamily
from repro.obs.trace import set_attrs
from repro.serve.planner import ServiceBudget

# ShedLoad lives in repro.serve.http.admission, whose package __init__ pulls
# in the HTTP server -- which imports this module.  Import it lazily at the
# first shed to break the cycle.
_SHED_LOAD = None


def _shed_load_type():
    global _SHED_LOAD
    if _SHED_LOAD is None:
        from repro.serve.http.admission import ShedLoad

        _SHED_LOAD = ShedLoad
    return _SHED_LOAD


class TokenBucket:
    """A thread-safe token bucket with exact spend accounting.

    ``capacity`` tokens of burst, refilled continuously at ``refill_per_s``.
    ``spent`` is the exact cumulative cost of every successful
    :meth:`try_acquire` -- the conservation invariant the property tests
    assert: ``spent == sum(granted costs)`` and the level never goes
    negative.  ``clock`` is injectable so tests control time.
    """

    def __init__(
        self,
        capacity: float,
        refill_per_s: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if refill_per_s <= 0:
            raise ValueError("refill_per_s must be positive")
        self.capacity = float(capacity)
        self.refill_per_s = float(refill_per_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._tokens = float(capacity)
        self._last = clock()
        self.spent = 0.0
        self.granted = 0
        self.denied = 0

    def _refill_locked(self) -> None:
        now = self._clock()
        elapsed = now - self._last
        if elapsed > 0:
            self._tokens = min(self.capacity, self._tokens + elapsed * self.refill_per_s)
            self._last = now

    def try_acquire(self, cost: float) -> tuple[bool, float, float]:
        """Spend ``cost`` tokens if available.

        Returns ``(ok, remaining, refill_wait_s)`` where ``refill_wait_s``
        is how long until the bucket holds ``cost`` tokens (0.0 when the
        acquire succeeded).  A cost above the bucket's *capacity* can still
        be granted once enough tokens accumulate -- it is clamped to
        capacity for the wait computation so oversized requests are not
        told to wait forever (they drain the full bucket instead).
        """
        if cost < 0:
            raise ValueError("cost must be non-negative")
        with self._lock:
            self._refill_locked()
            charge = min(cost, self.capacity)
            if self._tokens >= charge:
                self._tokens -= charge
                self.spent += charge
                self.granted += 1
                return True, self._tokens, 0.0
            self.denied += 1
            wait = (charge - self._tokens) / self.refill_per_s
            return False, self._tokens, wait

    def credit(self, amount: float) -> None:
        """Return ``amount`` tokens (capped at capacity); unspends them."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        with self._lock:
            self._refill_locked()
            credited = min(amount, self.capacity - self._tokens)
            self._tokens += credited
            self.spent = max(0.0, self.spent - credited)

    @property
    def remaining(self) -> float:
        with self._lock:
            self._refill_locked()
            return self._tokens

    def snapshot(self) -> dict:
        with self._lock:
            self._refill_locked()
            return {
                "capacity": self.capacity,
                "refill_per_s": self.refill_per_s,
                "remaining": self._tokens,
                "spent": self.spent,
                "granted": self.granted,
                "denied": self.denied,
            }


class _TenantState:
    """One tenant's bucket, concurrency gauge, and outcome counters."""

    __slots__ = (
        "bucket",
        "active",
        "admitted",
        "shed_tokens",
        "shed_concurrency",
        "cancelled",
    )

    def __init__(self, bucket: TokenBucket | None):
        self.bucket = bucket
        self.active = 0
        self.admitted = 0
        self.shed_tokens = 0
        self.shed_concurrency = 0
        self.cancelled: dict[str, int] = {}


class CancelRegistry:
    """Request-id -> :class:`CancelToken` map for in-flight asks.

    ``cancel`` is the ``POST /v1/cancel/<request_id>`` entry point: it arms
    the token (idempotently) and reports whether the id was known.  Tokens
    are registered *before* execution starts and unregistered in a
    ``finally``, so a cancel can never race a slot leak.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._tokens: dict[str, tuple[CancelToken, str]] = {}
        self.requested = 0
        self.delivered = 0
        self.unknown = 0

    @contextmanager
    def track(self, request_id: str, token: CancelToken, tenant: str) -> Iterator[None]:
        with self._lock:
            self._tokens[request_id] = (token, tenant)
        try:
            yield
        finally:
            with self._lock:
                self._tokens.pop(request_id, None)

    def cancel(self, request_id: str, reason: str = "requested") -> tuple[bool, str]:
        """Arm the token for ``request_id``; returns ``(found, tenant)``."""
        with self._lock:
            self.requested += 1
            entry = self._tokens.get(request_id)
            if entry is None:
                self.unknown += 1
                return False, ""
        token, tenant = entry
        # The fault point sits between the lookup and the arm: a kill here
        # models a server dying mid-cancellation, which the crash matrix
        # proves leaves no torn state (the query never recorded anything).
        # It (and the arm) runs outside the lock so a "delay" rule cannot
        # block every other cancel and track call behind it.
        faults.inject("governor.cancel", request_id=request_id, tenant=tenant)
        if token.cancel(reason):
            with self._lock:
                self.delivered += 1
        return True, tenant

    def in_flight(self) -> int:
        with self._lock:
            return len(self._tokens)


class ResourceGovernor:
    """Per-tenant token buckets and concurrency caps under the global gate.

    ``tenant_qps`` is the steady-state refill in *cheap-query tokens* per
    second (a cached/learned ask prices at ~1 token); ``burst_s`` sizes the
    bucket at ``tenant_qps * burst_s`` tokens.  ``tenant_concurrency``
    bounds one tenant's simultaneously executing asks.  Either limit may be
    ``None`` (unlimited) -- with both ``None`` the governor still tracks
    per-tenant counters and hosts the cancel registry, so cancellation and
    metrics work on an ungoverned server.
    """

    def __init__(
        self,
        tenant_qps: float | None = None,
        tenant_concurrency: int | None = None,
        burst_s: float = 2.0,
        cost_unit_s: float = 0.1,
        clock: Callable[[], float] = time.monotonic,
    ):
        if tenant_qps is not None and tenant_qps <= 0:
            raise ValueError("tenant_qps must be positive (or None)")
        if tenant_concurrency is not None and tenant_concurrency <= 0:
            raise ValueError("tenant_concurrency must be positive (or None)")
        if burst_s <= 0:
            raise ValueError("burst_s must be positive")
        if cost_unit_s <= 0:
            raise ValueError("cost_unit_s must be positive")
        self.tenant_qps = tenant_qps
        self.tenant_concurrency = tenant_concurrency
        self.burst_s = burst_s
        self.cost_unit_s = cost_unit_s
        self._clock = clock
        self._lock = threading.Lock()
        self._tenants: dict[str, _TenantState] = {}
        self.cancels = CancelRegistry()

    # ------------------------------------------------------------------ pricing

    def price(self, estimated_seconds: float) -> float:
        """Tokens for a request the planner expects to cost this much.

        One base token (every request occupies the wire and a handler
        thread) plus the estimated model-seconds in ``cost_unit_s`` units:
        the forced exact scan the planner prices at seconds costs an order
        of magnitude more quota than a sub-``cost_unit_s`` first-batch
        estimate, which is the starvation protection.
        """
        if estimated_seconds < 0:
            estimated_seconds = 0.0
        return 1.0 + estimated_seconds / self.cost_unit_s

    def price_query(self, planner, parsed, budget: ServiceBudget | None) -> float:
        """Price one ask from the tenant planner's cost estimates."""
        try:
            if budget is not None and budget.requires_exact:
                estimate = planner.estimated_exact_seconds(parsed)
            else:
                estimate = planner.estimated_first_batch_seconds(parsed)
        except Exception:
            # An unpriceable query (unknown table surfaces later as a 404)
            # costs the base token only.
            estimate = 0.0
        return self.price(estimate)

    # ---------------------------------------------------------------- admission

    def _state(self, tenant: str) -> _TenantState:
        with self._lock:
            state = self._tenants.get(tenant)
            if state is None:
                bucket = None
                if self.tenant_qps is not None:
                    bucket = TokenBucket(
                        capacity=self.tenant_qps * self.burst_s,
                        refill_per_s=self.tenant_qps,
                        clock=self._clock,
                    )
                state = _TenantState(bucket)
                self._tenants[tenant] = state
            return state

    def quota_state(self, tenant: str) -> dict:
        """The tenant's live quota numbers (the 429 body's ``quota`` field)."""
        state = self._state(tenant)
        quota: dict = {
            "tenant_qps": self.tenant_qps,
            "tenant_concurrency": self.tenant_concurrency,
            "active": state.active,
        }
        if state.bucket is not None:
            snap = state.bucket.snapshot()
            quota["remaining_tokens"] = round(snap["remaining"], 6)
            quota["capacity_tokens"] = snap["capacity"]
        return quota

    @contextmanager
    def admit(self, tenant: str, cost: float) -> Iterator[None]:
        """Hold one tenant-concurrency slot after spending ``cost`` tokens.

        Raises :class:`ShedLoad` (HTTP 429) when the tenant is over either
        limit; the error carries the quota state and a Retry-After derived
        from the bucket's actual refill wait, not the global queue horizon.
        """
        state = self._state(tenant)
        shed: tuple[str, float] | None = None
        with self._lock:
            if (
                self.tenant_concurrency is not None
                and state.active >= self.tenant_concurrency
            ):
                state.shed_concurrency += 1
                shed = (
                    f"tenant {tenant!r} is at its concurrency cap "
                    f"({state.active}/{self.tenant_concurrency} active)",
                    # The honest hint is one in-flight request draining;
                    # the bucket refill pace is the natural proxy.
                    1.0 / (self.tenant_qps or 1.0),
                )
            else:
                if state.bucket is not None:
                    ok, remaining, wait = state.bucket.try_acquire(cost)
                    if not ok:
                        state.shed_tokens += 1
                        shed = (
                            f"tenant {tenant!r} is out of quota "
                            f"({remaining:.2f} tokens, request priced {cost:.2f})",
                            wait,
                        )
                if shed is None:
                    state.active += 1
                    state.admitted += 1
        if shed is not None:
            self._shed(tenant, message=shed[0], retry_after_s=shed[1])
        set_attrs(governor="admitted", cost_tokens=round(cost, 4))
        try:
            yield
        finally:
            with self._lock:
                state.active -= 1

    def _shed(self, tenant: str, message: str, retry_after_s: float) -> None:
        """Raise the priced 429 (fault-injectable); lock NOT held here."""
        quota = self.quota_state(tenant)
        quota["refill_s"] = round(max(retry_after_s, 0.0), 6)
        retry_after = min(max(retry_after_s, 0.05), 30.0)
        set_attrs(governor="shed", retry_after_s=retry_after)
        faults.inject("governor.shed", tenant=tenant)
        raise _shed_load_type()(message, retry_after_s=retry_after, quota=quota)

    def record_cancel(self, tenant: str, reason: str) -> None:
        """Count one delivered cancellation against ``tenant``."""
        state = self._state(tenant)
        with self._lock:
            state.cancelled[reason] = state.cancelled.get(reason, 0) + 1

    # ------------------------------------------------------------------ reports

    @property
    def enabled(self) -> bool:
        return self.tenant_qps is not None or self.tenant_concurrency is not None

    def snapshot(self) -> dict:
        with self._lock:
            tenants = {
                name: {
                    "active": state.active,
                    "admitted": state.admitted,
                    "shed_tokens": state.shed_tokens,
                    "shed_concurrency": state.shed_concurrency,
                    "cancelled": dict(sorted(state.cancelled.items())),
                    "bucket": state.bucket.snapshot() if state.bucket else None,
                }
                for name, state in sorted(self._tenants.items())
            }
        return {
            "enabled": self.enabled,
            "tenant_qps": self.tenant_qps,
            "tenant_concurrency": self.tenant_concurrency,
            "burst_s": self.burst_s,
            "cost_unit_s": self.cost_unit_s,
            "cancels": {
                "requested": self.cancels.requested,
                "delivered": self.cancels.delivered,
                "unknown": self.cancels.unknown,
                "in_flight": self.cancels.in_flight(),
            },
            "tenants": tenants,
        }

    def metric_families(self) -> list[MetricFamily]:
        """Governor counters as typed families for Prometheus exposition."""
        outcomes = MetricFamily(
            "verdict_governor_outcomes_total",
            "counter",
            "Per-tenant governor admission outcomes.",
        )
        spent = MetricFamily(
            "verdict_governor_tokens_spent_total",
            "counter",
            "Cumulative priced tokens spent, per tenant.",
        )
        remaining = MetricFamily(
            "verdict_governor_tokens_remaining",
            "gauge",
            "Tokens currently available in each tenant's bucket.",
        )
        active = MetricFamily(
            "verdict_governor_active",
            "gauge",
            "Requests currently executing, per tenant.",
        )
        cancels = MetricFamily(
            "verdict_governor_cancels_total",
            "counter",
            "Delivered query cancellations, per tenant and reason.",
        )
        with self._lock:
            for name, state in sorted(self._tenants.items()):
                base = {"tenant": name}
                outcomes.add(base | {"outcome": "admitted"}, state.admitted)
                outcomes.add(base | {"outcome": "shed_tokens"}, state.shed_tokens)
                outcomes.add(
                    base | {"outcome": "shed_concurrency"}, state.shed_concurrency
                )
                active.add(base, state.active)
                if state.bucket is not None:
                    snap = state.bucket.snapshot()
                    spent.add(base, snap["spent"])
                    remaining.add(base, snap["remaining"])
                for reason, count in sorted(state.cancelled.items()):
                    cancels.add(base | {"reason": reason}, count)
        requests = MetricFamily(
            "verdict_cancel_requests_total",
            "counter",
            "POST /v1/cancel outcomes.",
        )
        requests.add({"outcome": "delivered"}, self.cancels.delivered)
        requests.add({"outcome": "unknown"}, self.cancels.unknown)
        return [outcomes, spent, remaining, active, cancels, requests]


class BrownoutController:
    """Windowed saturation detector that widens budgets under overload.

    Feed it every ask's admission queue wait (0.0 for immediate
    admissions).  Observations land in fixed ``window_s`` windows; a window
    whose queue-wait p99 exceeds ``threshold_s`` is *saturated*.
    ``saturated_windows`` consecutive saturated windows escalate the
    brownout level (to at most ``max_level``); ``healthy_windows``
    consecutive healthy ones -- including empty windows, an idle server is
    a healthy server -- de-escalate it.

    :meth:`effective_budget` maps a request's budget through the level:

    * level 0 -- unchanged;
    * any level -- a finite ``max_relative_error`` is widened by
      ``widen_factor ** level``;
    * level >= ``exact_relax_level`` -- a hard exact requirement
      (``max_relative_error == 0.0``) is replaced by
      ``exact_floor * (level - exact_relax_level + 1)``, steering the
      planner off the expensive exact route entirely.

    Budgets with no error bound are already best-effort and pass through.
    """

    def __init__(
        self,
        threshold_s: float = 0.5,
        window_s: float = 1.0,
        saturated_windows: int = 3,
        healthy_windows: int = 3,
        max_level: int = 3,
        widen_factor: float = 2.0,
        exact_relax_level: int = 2,
        exact_floor: float = 0.02,
        clock: Callable[[], float] = time.monotonic,
    ):
        if threshold_s <= 0 or window_s <= 0:
            raise ValueError("threshold_s and window_s must be positive")
        if saturated_windows < 1 or healthy_windows < 1:
            raise ValueError("window counts must be >= 1")
        if max_level < 1:
            raise ValueError("max_level must be >= 1")
        if widen_factor <= 1.0:
            raise ValueError("widen_factor must exceed 1.0")
        if not 1 <= exact_relax_level <= max_level:
            raise ValueError("exact_relax_level must be within 1..max_level")
        if exact_floor <= 0:
            raise ValueError("exact_floor must be positive")
        self.threshold_s = threshold_s
        self.window_s = window_s
        self.saturated_windows = saturated_windows
        self.healthy_windows = healthy_windows
        self.max_level = max_level
        self.widen_factor = widen_factor
        self.exact_relax_level = exact_relax_level
        self.exact_floor = exact_floor
        self._clock = clock
        self._lock = threading.Lock()
        self._window_start = clock()
        self._samples: list[float] = []
        self._saturated_streak = 0
        self._healthy_streak = 0
        self.level = 0
        self.escalations = 0
        self.deescalations = 0
        self.windows_saturated = 0
        self.windows_healthy = 0
        self.last_p99 = 0.0

    # ----------------------------------------------------------------- feeding

    def observe(self, queue_wait_s: float) -> None:
        """Record one ask's queue wait (rolls windows as the clock advances)."""
        with self._lock:
            self._roll_locked()
            self._samples.append(queue_wait_s)

    def tick(self) -> None:
        """Advance window bookkeeping without an observation (idle recovery)."""
        with self._lock:
            self._roll_locked()

    def _roll_locked(self) -> None:
        now = self._clock()
        while now - self._window_start >= self.window_s:
            self._close_window_locked()
            self._window_start += self.window_s
            if self.level == 0 and self._saturated_streak == 0:
                # Every remaining elapsed window is empty and healthy and
                # cannot change the level; account them in bulk so an idle
                # day is not closed one window at a time.
                gap = int((now - self._window_start) // self.window_s)
                if gap > 0:
                    self.windows_healthy += gap
                    self._healthy_streak += gap
                    self._window_start += gap * self.window_s

    def _close_window_locked(self) -> None:
        samples = self._samples
        self._samples = []
        if samples:
            ordered = sorted(samples)
            rank = math.ceil(0.99 * len(ordered))
            self.last_p99 = ordered[min(max(rank - 1, 0), len(ordered) - 1)]
            saturated = self.last_p99 > self.threshold_s
        else:
            self.last_p99 = 0.0
            saturated = False
        if saturated:
            self.windows_saturated += 1
            self._saturated_streak += 1
            self._healthy_streak = 0
            if (
                self._saturated_streak >= self.saturated_windows
                and self.level < self.max_level
            ):
                self.level += 1
                self.escalations += 1
                self._saturated_streak = 0
        else:
            self.windows_healthy += 1
            self._healthy_streak += 1
            self._saturated_streak = 0
            if self._healthy_streak >= self.healthy_windows and self.level > 0:
                self.level -= 1
                self.deescalations += 1
                self._healthy_streak = 0

    # ----------------------------------------------------------------- applying

    def effective_budget(self, budget: ServiceBudget) -> ServiceBudget:
        """The budget this request actually runs under at the current level."""
        level = self.level
        if level == 0 or budget.max_relative_error is None:
            return budget
        if budget.max_relative_error == 0.0:
            if level < self.exact_relax_level:
                return budget
            floor = self.exact_floor * (level - self.exact_relax_level + 1)
            return replace(budget, max_relative_error=floor)
        widened = budget.max_relative_error * (self.widen_factor**level)
        return replace(budget, max_relative_error=widened)

    # ------------------------------------------------------------------ reports

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "level": self.level,
                "max_level": self.max_level,
                "threshold_s": self.threshold_s,
                "window_s": self.window_s,
                "last_p99_s": self.last_p99,
                "saturated_streak": self._saturated_streak,
                "healthy_streak": self._healthy_streak,
                "windows_saturated": self.windows_saturated,
                "windows_healthy": self.windows_healthy,
                "escalations": self.escalations,
                "deescalations": self.deescalations,
            }

    def metric_families(self) -> list[MetricFamily]:
        with self._lock:
            level = MetricFamily(
                "verdict_brownout_level",
                "gauge",
                "Current brownout level (0 = budgets untouched).",
            ).add({}, self.level)
            transitions = MetricFamily(
                "verdict_brownout_transitions_total",
                "counter",
                "Brownout level transitions, by direction.",
            )
            transitions.add({"direction": "escalate"}, self.escalations)
            transitions.add({"direction": "deescalate"}, self.deescalations)
            windows = MetricFamily(
                "verdict_brownout_windows_total",
                "counter",
                "Closed saturation-detector windows, by verdict.",
            )
            windows.add({"state": "saturated"}, self.windows_saturated)
            windows.add({"state": "healthy"}, self.windows_healthy)
            p99 = MetricFamily(
                "verdict_brownout_queue_wait_p99_seconds",
                "gauge",
                "Queue-wait p99 of the most recently closed window.",
            ).add({}, self.last_p99)
        return [level, transitions, windows, p99]
