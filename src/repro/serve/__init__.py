"""The serving layer: concurrent query serving with persistent learned state.

This package turns the reproduction from a library answering one query at a
time into a long-running service (the deployment mode of the reference
VerdictDB implementation):

* :mod:`repro.serve.store` -- :class:`SynopsisStore`, durable snapshots plus
  an incremental delta log of the engine's learned state, so a restarted
  service resumes exactly as smart as it stopped;
* :mod:`repro.serve.planner` -- :class:`QueryPlanner` and
  :class:`ServiceBudget`, routing each request to the cheapest engine able
  to meet its error/latency budget (cached -> learned -> online aggregation
  -> exact);
* :mod:`repro.serve.service` -- :class:`VerdictService`, the thread-safe
  front door: worker pool, per-fact-table reader/writer locks, versioned
  answer cache, graceful shutdown;
* :mod:`repro.serve.metrics` -- :class:`ServiceMetrics`, per-route counters
  and latency histograms;
* :mod:`repro.serve.http` -- the multi-tenant HTTP/JSON front door
  (stdlib ``ThreadingHTTPServer``): ask/feedback/metrics/admin endpoints,
  bounded admission queue with shed-load backpressure, per-tenant state,
  per-session JSONL audit log (run it with ``python -m repro.serve.http``);
* :mod:`repro.serve.client` -- :class:`VerdictClient`, the thin blocking
  HTTP client with retry-on-429 exponential backoff.
"""

from repro.serve.client import VerdictClient
from repro.serve.metrics import LatencyHistogram, ServiceMetrics
from repro.serve.planner import QueryPlanner, Route, RouteDecision, ServiceBudget
from repro.serve.service import ReadWriteLock, ServedAnswer, ServedRow, VerdictService
from repro.serve.store import SynopsisStore

__all__ = [
    "LatencyHistogram",
    "QueryPlanner",
    "ReadWriteLock",
    "Route",
    "RouteDecision",
    "ServedAnswer",
    "ServedRow",
    "ServiceBudget",
    "ServiceMetrics",
    "SynopsisStore",
    "VerdictClient",
    "VerdictService",
]
