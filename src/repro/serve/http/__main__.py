"""CLI: run the multi-tenant HTTP front door.

Quickstart (synthetic sales workload, two tenants)::

    python -m repro.serve.http --root /tmp/verdict --tenants acme,globex

The first stdout line is a JSON readiness record::

    {"listening": {"host": "127.0.0.1", "port": 8123}, "root": "/tmp/verdict"}

so scripts (and the fault-injection tests) can wait for it, parse the bound
port (``--port 0`` picks a free one), and start firing requests.  The
process serves until SIGINT/SIGTERM, then shuts down gracefully: in-flight
requests finish, every tenant's learned state is snapshotted, and the audit
log is closed.  Because each tenant's catalog is built deterministically
from ``(workload, rows, seed, tenant name)``, a restarted server over the
same ``--root`` and data flags resumes every tenant byte-identically.

High availability: start a second process with ``--follow <leader>`` to run
it as a read-only replication follower pulling the leader's WAL::

    python -m repro.serve.http --root /tmp/verdict-b --follow 127.0.0.1:8123

The follower serves asks (degraded read-only mode), rejects writes with a
typed 503 naming the leader, and ``POST /v1/admin/promote`` turns it into
the leader under a fresh fencing epoch (manual failover).  ``--repl-ack
sync`` on the *leader* makes feedback acks wait until a follower confirms
the write is durably applied remotely.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
import zlib
from pathlib import Path

from repro.config import CostModelConfig, SamplingConfig, VerdictConfig
from repro.db.catalog import Catalog
from repro.obs.trace import Tracer
from repro.serve.governor import BrownoutController, ResourceGovernor
from repro.serve.http.audit import AuditLog
from repro.serve.http.server import VerdictHTTPServer
from repro.serve.http.tenants import TenantManager
from repro.serve.replication import ReplicationManager, ReplicationPuller
from repro.serve.replication.state import ROLE_FOLLOWER, ROLE_LEADER
from repro.serve.service import VerdictService


def tenant_seed(base_seed: int, tenant: str) -> int:
    """Deterministic per-tenant seed -- stable across process restarts."""
    return base_seed + (zlib.crc32(tenant.encode()) % 100_000)


def build_catalog_factory(workload: str, rows: int, seed: int):
    """A ``tenant name -> Catalog`` factory for the built-in workloads."""

    def factory(tenant: str) -> Catalog:
        this_seed = tenant_seed(seed, tenant)
        if workload == "customer1":
            from repro.workloads.customer1 import Customer1Workload

            return Customer1Workload(num_rows=rows, seed=this_seed).build_catalog()
        if workload == "sales":
            from repro.workloads.synthetic import make_sales_table

            catalog = Catalog()
            catalog.add_table(
                make_sales_table(num_rows=rows, num_weeks=52, seed=this_seed),
                fact=True,
            )
            return catalog
        raise ValueError(f"unknown workload {workload!r}")

    return factory


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.http", description=__doc__
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8123, help="0 picks a free port")
    parser.add_argument(
        "--root", required=True, help="state directory (tenant stores, audit log)"
    )
    parser.add_argument("--workload", choices=("sales", "customer1"), default="sales")
    parser.add_argument("--rows", type=int, default=20_000, help="rows per tenant")
    parser.add_argument("--seed", type=int, default=7, help="base data seed")
    parser.add_argument("--sample-ratio", type=float, default=0.2)
    parser.add_argument("--batches", type=int, default=5, help="sample batches")
    parser.add_argument(
        "--workers", type=int, default=4, help="max concurrently executing requests"
    )
    parser.add_argument(
        "--queue", type=int, default=16, help="admission queue bound (shed beyond)"
    )
    parser.add_argument(
        "--queue-timeout", type=float, default=5.0, help="seconds queued before shed"
    )
    parser.add_argument(
        "--max-loaded-tenants", type=int, default=8, help="LRU residency cap"
    )
    parser.add_argument(
        "--tenant-qps",
        type=float,
        default=None,
        help="per-tenant token refill rate (cheap-query tokens per second); "
        "expensive asks are priced higher by the planner's cost estimate",
    )
    parser.add_argument(
        "--tenant-concurrency",
        type=int,
        default=None,
        help="max simultaneously executing asks per tenant",
    )
    parser.add_argument(
        "--tenant-burst",
        type=float,
        default=2.0,
        help="bucket burst capacity, in seconds of --tenant-qps refill",
    )
    parser.add_argument(
        "--cost-unit",
        type=float,
        default=0.1,
        help="estimated model-seconds per extra quota token when pricing asks",
    )
    parser.add_argument(
        "--brownout",
        action="store_true",
        help="widen error budgets under sustained queue saturation "
        "(graceful degradation instead of a wall of 429s)",
    )
    parser.add_argument(
        "--brownout-threshold",
        type=float,
        default=0.5,
        help="queue-wait p99 (seconds) above which a window counts saturated",
    )
    parser.add_argument(
        "--brownout-window",
        type=float,
        default=1.0,
        help="saturation-detector window length in seconds",
    )
    parser.add_argument(
        "--tenants", default="", help="comma-separated tenants to pre-create"
    )
    parser.add_argument(
        "--auto-train-every",
        type=int,
        default=None,
        help="background-train a tenant after every N learned-state mutations",
    )
    parser.add_argument(
        "--learn",
        action="store_true",
        help="learn correlation length scales during training (slower)",
    )
    parser.add_argument(
        "--flush-every",
        type=int,
        default=8,
        help="flush learned state to the store after every N mutations",
    )
    parser.add_argument(
        "--audit-max-bytes",
        type=int,
        default=None,
        help="rotate the audit log once the live file reaches this size",
    )
    parser.add_argument(
        "--audit-retention",
        type=int,
        default=4,
        help="rotated audit files kept (oldest deleted at each rotation)",
    )
    parser.add_argument(
        "--no-trace",
        action="store_true",
        help="disable request tracing entirely (spans, ring, trace log)",
    )
    parser.add_argument(
        "--trace-ring",
        type=int,
        default=256,
        help="finished traces kept in memory for GET /v1/trace/<id>",
    )
    parser.add_argument(
        "--trace-log",
        default=None,
        help="JSONL trace log path (default <root>/trace/trace.jsonl; "
        "'none' disables the file while keeping the in-memory ring)",
    )
    parser.add_argument(
        "--slow-query-s",
        type=float,
        default=None,
        help="also write traces at least this slow to <root>/trace/slow.jsonl",
    )
    parser.add_argument(
        "--follow",
        default=None,
        metavar="HOST:PORT",
        help="run as a read-only replication follower of this leader",
    )
    parser.add_argument(
        "--repl-poll",
        type=float,
        default=0.5,
        help="follower pull interval in seconds",
    )
    parser.add_argument(
        "--repl-ack",
        choices=("async", "sync"),
        default="async",
        help="sync: leader feedback acks wait for a follower's durable apply",
    )
    parser.add_argument(
        "--repl-ack-timeout",
        type=float,
        default=10.0,
        help="seconds a sync-ack write waits before a typed 503",
    )
    parser.add_argument(
        "--repl-lag-degraded",
        type=float,
        default=30.0,
        help="follower lag above this many seconds reports degraded health",
    )
    args = parser.parse_args(argv)

    root = Path(args.root)
    sampling = SamplingConfig(
        sample_ratio=args.sample_ratio, num_batches=args.batches, seed=1
    )
    cost_model = CostModelConfig.scaled_for(int(args.rows * args.sample_ratio))
    config = VerdictConfig(learn_length_scales=args.learn)

    replication = ReplicationManager(
        root,
        role=ROLE_FOLLOWER if args.follow else ROLE_LEADER,
        leader_url=args.follow,
        ack_mode=args.repl_ack,
        ack_timeout_s=args.repl_ack_timeout,
        lag_degraded_s=args.repl_lag_degraded,
    )

    def service_factory(catalog, store) -> VerdictService:
        return VerdictService(
            catalog,
            store=store,
            sampling=sampling,
            cost_model=cost_model,
            config=config,
            max_workers=2,
            # Training is a write: followers receive learned state via
            # replication, never produce it locally.
            auto_train_every=None if replication.is_follower else args.auto_train_every,
            flush_every=args.flush_every,
        )

    tenants = TenantManager(
        root,
        build_catalog_factory(args.workload, args.rows, args.seed),
        service_factory=service_factory,
        max_loaded=args.max_loaded_tenants,
        replication=replication,
    )
    for name in filter(None, args.tenants.split(",")):
        if not tenants.exists(name):
            tenants.create(name)

    audit = AuditLog.open_session(
        root / "audit",
        max_bytes=args.audit_max_bytes,
        retention=args.audit_retention,
    )
    tracer = None
    if not args.no_trace:
        if args.trace_log == "none":
            trace_log = None
        elif args.trace_log is not None:
            trace_log = Path(args.trace_log)
        else:
            trace_log = root / "trace" / "trace.jsonl"
        slow_log = (
            root / "trace" / "slow.jsonl" if args.slow_query_s is not None else None
        )
        tracer = Tracer(
            ring_capacity=args.trace_ring,
            log_path=trace_log,
            slow_log_path=slow_log,
            slow_threshold_s=args.slow_query_s,
        )
    governor = ResourceGovernor(
        tenant_qps=args.tenant_qps,
        tenant_concurrency=args.tenant_concurrency,
        burst_s=args.tenant_burst,
        cost_unit_s=args.cost_unit,
    )
    brownout = None
    if args.brownout:
        brownout = BrownoutController(
            threshold_s=args.brownout_threshold,
            window_s=args.brownout_window,
        )
    server = VerdictHTTPServer(
        (args.host, args.port),
        tenants,
        max_active=args.workers,
        max_queued=args.queue,
        queue_timeout_s=args.queue_timeout,
        audit=audit,
        tracer=tracer,
        replication=replication,
        governor=governor,
        brownout=brownout,
    )
    puller = None
    if replication.is_follower and replication.leader_url:
        puller = ReplicationPuller(
            replication,
            tenants,
            replication.leader_url,
            poll_interval_s=args.repl_poll,
            tracer=tracer,
        )
        puller.start()
    replication.bind(tenants=tenants, puller=puller)
    server.start()
    print(
        json.dumps(
            {
                "listening": {"host": args.host, "port": server.port},
                "root": str(root),
                "workload": args.workload,
                "audit": str(audit.path),
                "trace": (
                    None
                    if tracer is None
                    else str(tracer.log_path) if tracer.log_path else "ring-only"
                ),
                "replication": {
                    "role": replication.role,
                    "epoch": replication.epoch.number,
                    "leader": replication.leader_url,
                    "ack_mode": replication.ack_mode,
                },
            }
        ),
        flush=True,
    )

    stop = threading.Event()

    def on_signal(signum, frame):
        stop.set()

    signal.signal(signal.SIGINT, on_signal)
    signal.signal(signal.SIGTERM, on_signal)
    try:
        stop.wait()
    finally:
        if puller is not None:
            puller.stop()
        server.close()
    print(json.dumps({"stopped": True}), flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
