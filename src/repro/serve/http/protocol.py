"""Wire protocol for the HTTP front door: schemas, validation, error mapping.

Every request body is a JSON object validated *strictly* against a small
declarative schema before any engine code runs: missing fields, wrong types,
and unknown fields are all rejected with a typed 400 so malformed traffic
never reaches a tenant's service.  Failures anywhere in the stack are mapped
to one :class:`ApiError` with a stable machine-readable ``code``:

========  ======================  ============================================
status    code                    meaning
========  ======================  ============================================
400       ``bad_request``         malformed JSON / schema violation
400       ``invalid_sql``         the SQL text failed to parse
400       ``bad_rows``            append rows do not match the table schema
404       ``unknown_tenant``      tenant was never created
404       ``unknown_table``       SQL or append references an unknown table
404       ``unknown_route``       no such endpoint
409       ``tenant_exists``       tenant create with an existing name
409       ``epoch_fenced``        the write/fence carries a stale or divergent
                                  fencing epoch (a deposed leader's late
                                  write); hard error, never retried
409       ``snapshot_required``   a replication pull's ``from`` predates the
                                  leader's delta log; follower must bootstrap
                                  from ``/v1/replication/snapshot``
409       ``replication_gap``     shipped records do not chain onto the
                                  follower's applied state
429       ``shed_load``           admission queue full / queue wait timed out /
                                  a tenant quota or concurrency cap was hit
                                  (the body's ``quota`` field carries the
                                  tenant's remaining tokens and refill wait)
499       ``cancelled``           the request was cancelled mid-flight
                                  (``POST /v1/cancel`` or client disconnect);
                                  nothing was cached or recorded
503       ``shutting_down``       the server is draining
503       ``read_only_follower``  a mutating request reached a follower; the
                                  ``leader`` field in the error body names
                                  the endpoint to retry against
503       ``replication_timeout`` sync-ack mode: the write is durable locally
                                  but no follower confirmed it in time
504       ``deadline_exceeded``   the request's deadline expired with nothing
                                  to return (partial estimates come back 200,
                                  flagged ``degraded``)
500       ``internal``            anything else
========  ======================  ============================================

Responses are JSON too.  :func:`answer_to_state` renders a
:class:`~repro.serve.service.ServedAnswer` as plain data, and
:func:`answer_fingerprint` canonicalises the *deterministic* subset of that
state (everything except wall-clock timings and cache provenance) -- two
answers computed over byte-identical learned state produce byte-identical
fingerprints, which is what the kill/restart fault tests assert over the
wire.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.serve.planner import ServiceBudget
from repro.serve.service import ServedAnswer

#: Tenant names are path-safe by construction (they become directory names).
TENANT_NAME_RE = re.compile(r"\A[A-Za-z0-9][A-Za-z0-9_.-]{0,63}\Z")

#: Largest accepted request body, in bytes (a generous cap for appends).
MAX_BODY_BYTES = 16 * 1024 * 1024


class ApiError(ReproError):
    """One typed HTTP failure: status code, machine code, human message.

    ``retry_after_s``, when set, becomes the response's ``Retry-After``
    header -- admission control fills it with its queue-drain backoff hint
    on 429s.  ``extra`` fields are merged into the error body (e.g. the
    ``leader`` hint on ``read_only_follower``).
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        retry_after_s: float | None = None,
        extra: dict | None = None,
    ):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.retry_after_s = retry_after_s
        self.extra = dict(extra or {})

    def body(self) -> dict:
        return {"error": {"code": self.code, "message": self.message, **self.extra}}


def bad_request(message: str, code: str = "bad_request") -> ApiError:
    return ApiError(400, code, message)


def unknown_tenant(name: str) -> ApiError:
    return ApiError(404, "unknown_tenant", f"unknown tenant {name!r}")


def unknown_route(method: str, path: str) -> ApiError:
    return ApiError(404, "unknown_route", f"no route for {method} {path}")


def tenant_exists(name: str) -> ApiError:
    return ApiError(409, "tenant_exists", f"tenant {name!r} already exists")


def shed_load(
    message: str,
    retry_after_s: float | None = None,
    quota: dict | None = None,
) -> ApiError:
    # ``quota`` (set on per-tenant governor sheds) rides into the error
    # body: remaining tokens, refill wait, and concurrency state so the
    # client can back off for exactly as long as the bucket needs.
    extra = {"quota": quota} if quota is not None else None
    return ApiError(429, "shed_load", message, retry_after_s=retry_after_s, extra=extra)


def cancelled(message: str, reason: str = "requested") -> ApiError:
    # 499 (client closed request): non-standard but the de-facto code for
    # "the client is no longer waiting"; never retried by the client.
    return ApiError(499, "cancelled", message, extra={"reason": reason})


def shutting_down(message: str = "server is shutting down") -> ApiError:
    return ApiError(503, "shutting_down", message)


def deadline_exceeded(message: str) -> ApiError:
    return ApiError(504, "deadline_exceeded", message)


def read_only_follower(message: str, leader: str | None = None) -> ApiError:
    # Deliberately no Retry-After: retrying against the same follower can
    # never succeed.  The client follows the ``leader`` hint instead.
    extra = {"leader": leader} if leader else {}
    return ApiError(503, "read_only_follower", message, extra=extra)


def epoch_fenced(
    message: str,
    local: tuple[int, str] | None = None,
    remote: tuple[int, str] | None = None,
) -> ApiError:
    extra: dict = {}
    if local is not None:
        extra["local_epoch"], extra["local_lineage"] = local
    if remote is not None:
        extra["remote_epoch"], extra["remote_lineage"] = remote
    return ApiError(409, "epoch_fenced", message, extra=extra)


def snapshot_required(tenant: str, from_seq: int, snapshot_seq: int) -> ApiError:
    return ApiError(
        409,
        "snapshot_required",
        f"tenant {tenant!r}: pull from seq {from_seq} predates the leader's "
        f"delta log (snapshot is at seq {snapshot_seq}); bootstrap from "
        "/v1/replication/snapshot",
        extra={"snapshot_seq": snapshot_seq},
    )


def replication_timeout(message: str) -> ApiError:
    # No Retry-After either: the write *is* durable on the leader; blindly
    # retrying it would double-apply.  The caller decides what "applied
    # locally, unconfirmed remotely" means for it.
    return ApiError(503, "replication_timeout", message)


# --------------------------------------------------------------------------- #
# Strict request validation
# --------------------------------------------------------------------------- #


def _validate(payload: object, fields: dict[str, tuple]) -> dict:
    """Check ``payload`` against ``{name: (types, required)}`` strictly.

    Returns the validated dict.  Raises :class:`ApiError` (400) on a
    non-object payload, a missing required field, a wrong type, or any
    field not named in the schema.
    """
    if not isinstance(payload, dict):
        raise bad_request("request body must be a JSON object")
    unknown = set(payload) - set(fields)
    if unknown:
        raise bad_request(f"unknown fields {sorted(unknown)}")
    out: dict = {}
    for name, (types, required) in fields.items():
        if name not in payload or payload[name] is None:
            if required:
                raise bad_request(f"missing required field {name!r}")
            out[name] = None
            continue
        value = payload[name]
        if not isinstance(value, types) or isinstance(value, bool) and bool not in (
            types if isinstance(types, tuple) else (types,)
        ):
            raise bad_request(
                f"field {name!r} has wrong type {type(value).__name__}"
            )
        out[name] = value
    return out


def _validate_tenant_name(name: str) -> str:
    if not TENANT_NAME_RE.match(name):
        raise bad_request(
            f"invalid tenant name {name!r} (want {TENANT_NAME_RE.pattern})"
        )
    return name


@dataclass(frozen=True)
class AskRequest:
    tenant: str
    sql: str
    budget: ServiceBudget | None
    record: bool | None
    explain: bool = False
    trace: bool = False


def parse_ask(payload: object) -> AskRequest:
    fields = _validate(
        payload,
        {
            "tenant": (str, True),
            "sql": (str, True),
            "max_relative_error": ((int, float), False),
            "max_latency_s": ((int, float), False),
            "deadline_s": ((int, float), False),
            "record": (bool, False),
            "explain": (bool, False),
            "trace": (bool, False),
        },
    )
    _validate_tenant_name(fields["tenant"])
    if not fields["sql"].strip():
        raise bad_request("field 'sql' must be non-empty")
    budget = None
    if any(
        fields[name] is not None
        for name in ("max_relative_error", "max_latency_s", "deadline_s")
    ):
        try:
            budget = ServiceBudget(
                max_relative_error=fields["max_relative_error"],
                max_latency_s=fields["max_latency_s"],
                deadline_s=fields["deadline_s"],
            )
        except ReproError as error:
            raise bad_request(str(error)) from error
    return AskRequest(
        tenant=fields["tenant"],
        sql=fields["sql"],
        budget=budget,
        record=fields["record"],
        explain=bool(fields["explain"]),
        trace=bool(fields["trace"]),
    )


@dataclass(frozen=True)
class AppendRequest:
    tenant: str
    table: str
    rows: dict[str, list]
    adjust: bool


def parse_append(payload: object) -> AppendRequest:
    fields = _validate(
        payload,
        {
            "tenant": (str, True),
            "table": (str, True),
            "rows": (dict, True),
            "adjust": (bool, False),
        },
    )
    _validate_tenant_name(fields["tenant"])
    rows = fields["rows"]
    if not rows:
        raise bad_request("field 'rows' must name at least one column", "bad_rows")
    for column, values in rows.items():
        if not isinstance(column, str) or not isinstance(values, list):
            raise bad_request(
                "field 'rows' must map column names to value lists", "bad_rows"
            )
    return AppendRequest(
        tenant=fields["tenant"],
        table=fields["table"],
        rows=rows,
        adjust=True if fields["adjust"] is None else fields["adjust"],
    )


@dataclass(frozen=True)
class RecordRequest:
    tenant: str
    sql: str


def parse_record(payload: object) -> RecordRequest:
    fields = _validate(payload, {"tenant": (str, True), "sql": (str, True)})
    _validate_tenant_name(fields["tenant"])
    if not fields["sql"].strip():
        raise bad_request("field 'sql' must be non-empty")
    return RecordRequest(tenant=fields["tenant"], sql=fields["sql"])


@dataclass(frozen=True)
class TrainRequest:
    tenant: str
    learn: bool | None
    wait: bool


def parse_train(payload: object) -> TrainRequest:
    fields = _validate(
        payload,
        {"tenant": (str, True), "learn": (bool, False), "wait": (bool, False)},
    )
    _validate_tenant_name(fields["tenant"])
    return TrainRequest(
        tenant=fields["tenant"],
        learn=fields["learn"],
        wait=True if fields["wait"] is None else fields["wait"],
    )


@dataclass(frozen=True)
class TenantRequest:
    tenant: str


def parse_tenant_only(payload: object) -> TenantRequest:
    fields = _validate(payload, {"tenant": (str, True)})
    _validate_tenant_name(fields["tenant"])
    return TenantRequest(tenant=fields["tenant"])


@dataclass(frozen=True)
class FenceRequest:
    epoch: int
    lineage: str


def parse_fence(payload: object) -> FenceRequest:
    fields = _validate(payload, {"epoch": (int, True), "lineage": (str, True)})
    if fields["epoch"] < 1:
        raise bad_request("field 'epoch' must be a positive integer")
    if not fields["lineage"]:
        raise bad_request("field 'lineage' must be non-empty")
    return FenceRequest(epoch=fields["epoch"], lineage=fields["lineage"])


def parse_promote(payload: object) -> None:
    """``admin/promote`` takes no arguments; the body must be ``{}`` (or absent)."""
    if payload is None:
        return None
    _validate(payload, {})
    return None


# --------------------------------------------------------------------------- #
# Answer serialisation
# --------------------------------------------------------------------------- #


def _plain(value):
    """Convert NumPy scalars to native Python types for JSON."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.str_):
        return str(value)
    return value


def answer_to_state(answer: ServedAnswer) -> dict:
    """Render a served answer as plain JSON-serialisable data."""
    return {
        "sql": answer.sql,
        "route": answer.route.value,
        "rows": [
            {
                "group": [_plain(value) for value in row.group_values],
                "values": {name: _plain(v) for name, v in row.values.items()},
                "errors": {name: _plain(v) for name, v in row.errors.items()},
            }
            for row in answer.rows
        ],
        "relative_error_bound": float(answer.relative_error_bound),
        "model_seconds": float(answer.model_seconds),
        "wall_seconds": float(answer.wall_seconds),
        "supported": answer.supported,
        "budget_met": answer.budget_met,
        "from_cache": answer.from_cache,
        "recorded": answer.recorded,
        "batches_processed": answer.batches_processed,
        "degraded": answer.degraded,
        "degraded_reason": answer.degraded_reason,
    }


#: The non-deterministic answer fields: wall-clock timing and provenance
#: that legitimately differ between a cold and a warm (cached) service.
#: ``model_seconds`` is nondeterministic too: on the learned route it adds
#: the *measured* inference overhead to the cost model's deterministic IO
#: estimate.
#: ``degraded``/``degraded_reason`` join the list: whether a wall-clock
#: deadline cut refinement short depends on real time, never on the learned
#: state being fingerprinted.
NONDETERMINISTIC_FIELDS = (
    "wall_seconds",
    "model_seconds",
    "from_cache",
    "route",
    "recorded",
    "degraded",
    "degraded_reason",
)


def answer_fingerprint(state: dict) -> bytes:
    """Canonical bytes of the deterministic part of an answer state.

    Two services holding byte-identical learned state produce identical
    fingerprints for the same request, regardless of wall-clock timing,
    cache warmth, or whether the answer was recorded -- the kill/restart
    fault tests compare exactly this.
    """
    deterministic = {
        key: value
        for key, value in state.items()
        if key not in NONDETERMINISTIC_FIELDS
    }
    return json.dumps(deterministic, sort_keys=True, separators=(",", ":")).encode()


# --------------------------------------------------------------------------- #
# Exception mapping
# --------------------------------------------------------------------------- #


def map_exception(error: Exception) -> ApiError:
    """Map any engine/service failure onto one typed :class:`ApiError`."""
    # Imported here to keep the protocol module import-light for clients.
    from repro.errors import (
        CatalogError,
        DeadlineExceeded,
        EpochFencedError,
        QueryCancelled,
        ReadOnlyFollowerError,
        ReplicationGapError,
        ServiceError,
        SQLSyntaxError,
        TableError,
        UnsupportedQueryError,
    )
    from repro.serve.http.admission import ShedLoad, ShuttingDown

    if isinstance(error, ApiError):
        return error
    if isinstance(error, DeadlineExceeded):
        return deadline_exceeded(str(error))
    if isinstance(error, QueryCancelled):
        return cancelled(str(error), reason=error.reason)
    if isinstance(error, EpochFencedError):
        return epoch_fenced(str(error), local=error.local, remote=error.remote)
    if isinstance(error, ReadOnlyFollowerError):
        return read_only_follower(str(error), leader=error.leader)
    if isinstance(error, ReplicationGapError):
        return ApiError(409, "replication_gap", str(error))
    if isinstance(error, ShedLoad):
        return shed_load(
            str(error),
            getattr(error, "retry_after_s", None),
            quota=getattr(error, "quota", None),
        )
    if isinstance(error, ShuttingDown):
        return shutting_down(str(error))
    if isinstance(error, SQLSyntaxError):
        return bad_request(f"SQL failed to parse: {error}", "invalid_sql")
    if isinstance(error, UnsupportedQueryError):
        # Unsupported-but-parsable queries are normally still served (the
        # online-agg route handles them); reaching here means a route
        # explicitly refused, which is the client's query class problem.
        return bad_request(str(error), "unsupported_query")
    if isinstance(error, CatalogError):
        return ApiError(404, "unknown_table", str(error))
    if isinstance(error, TableError):
        return bad_request(str(error), "bad_rows")
    if isinstance(error, ServiceError) and "closed" in str(error):
        return shutting_down(str(error))
    return ApiError(500, "internal", f"{type(error).__name__}: {error}")
