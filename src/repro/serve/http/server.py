"""The HTTP/JSON front door: a stdlib ``ThreadingHTTPServer`` over tenants.

No third-party web framework -- the whole network layer is the standard
library, so the front door deploys anywhere the engine does.  Endpoints
(all under ``/v1``, JSON request/response):

=======  =======================  ===========================================
method   path                     purpose
=======  =======================  ===========================================
POST     ``/v1/ask``              answer one SQL request within its budget
POST     ``/v1/feedback/append``  append rows to a tenant fact table
POST     ``/v1/feedback/record``  full-scan a query and record its snippets
GET      ``/v1/metrics``          server-wide (or ``?tenant=`` scoped) stats
POST     ``/v1/admin/train``      run the offline step (sync or background)
POST     ``/v1/admin/snapshot``   force a durable full snapshot
POST     ``/v1/admin/tenants``    create a tenant
GET      ``/v1/admin/tenants``    list tenants
GET      ``/v1/healthz``          liveness probe
=======  =======================  ===========================================

Execution model: connection-handler threads run the query themselves (the
per-tenant service's worker pool is for in-process ``submit()`` callers),
gated by one shared :class:`~repro.serve.http.admission.AdmissionController`
so a burst cannot run unbounded engine work -- beyond ``max_active``
concurrent requests and ``max_queued`` waiters, requests are shed with 429.
``ask`` and both ``feedback`` endpoints pay admission; metrics, admin, and
health do not (operators must be able to look at a saturated server).

Shutdown (:meth:`VerdictHTTPServer.close`) is ordered: stop admitting
(queued waiters fail fast with 503, admitted requests finish), drain, stop
the accept loop, close every tenant (each writes its final snapshot), close
the audit log.  In-flight requests therefore always terminate with a real
response -- 200 if admitted before the close, 503 otherwise.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro import faults
from repro.serve.http import protocol
from repro.serve.http.admission import AdmissionController
from repro.serve.http.audit import AuditLog
from repro.serve.http.protocol import ApiError
from repro.serve.http.tenants import TenantManager
from repro.sqlparser.parser import parse_query


def _check_tables(catalog, parsed) -> None:
    """404 for any table the SQL names that the tenant's catalog lacks."""
    for name in (parsed.table, *(join.table for join in parsed.joins)):
        if not catalog.has_table(name):
            raise ApiError(404, "unknown_table", f"unknown table {name!r}")


class VerdictHTTPServer(ThreadingHTTPServer):
    """Multi-tenant HTTP front door over per-tenant Verdict services."""

    daemon_threads = True
    allow_reuse_address = True
    # Burst admission is the AdmissionController's job, not the kernel's:
    # the listen backlog must absorb a whole client fleet connecting at
    # once (the default of 5 turns client 6+ into 1s SYN retransmits).
    request_queue_size = 128

    def __init__(
        self,
        address: tuple[str, int],
        tenants: TenantManager,
        max_active: int = 4,
        max_queued: int = 16,
        queue_timeout_s: float | None = 5.0,
        audit: AuditLog | None = None,
    ):
        super().__init__(address, _Handler)
        self.tenants = tenants
        self.admission = AdmissionController(
            max_active=max_active,
            max_queued=max_queued,
            queue_timeout_s=queue_timeout_s,
        )
        self.audit = audit
        self.started_ts = time.time()
        self._serve_thread: threading.Thread | None = None
        self._close_lock = threading.Lock()
        self._closed = False

    # ---------------------------------------------------------------- control

    def start(self) -> "VerdictHTTPServer":
        """Run the accept loop on a background thread; returns ``self``."""
        self._serve_thread = threading.Thread(
            target=self.serve_forever, name="verdict-http", daemon=True
        )
        self._serve_thread.start()
        return self

    @property
    def port(self) -> int:
        return self.server_address[1]

    def close(self) -> None:
        """Ordered graceful shutdown; idempotent and thread-safe."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
            # 1. Stop admitting: queued waiters get 503, admitted finish.
            self.admission.close()
            # 2. Drain admitted requests so no engine work is in flight.
            self.admission.wait_idle(timeout_s=60.0)
            # 3. Stop the accept loop and release the listening socket.
            self.shutdown()
            self.server_close()
            if self._serve_thread is not None:
                self._serve_thread.join(timeout=10.0)
            # 4. Close tenants last: every service writes its final
            #    snapshot with zero requests in flight anywhere.
            self.tenants.close()
            if self.audit is not None:
                self.audit.close()

    def __enter__(self) -> "VerdictHTTPServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _Handler(BaseHTTPRequestHandler):
    """Routes one connection's requests; see the module docstring."""

    protocol_version = "HTTP/1.1"
    # Idle keep-alive connections die on their own rather than pinning
    # handler threads forever.
    timeout = 60.0
    # The response goes out as two writes (header block, then body) on an
    # unbuffered socket; with Nagle on, the body write stalls behind the
    # peer's delayed ACK (~40ms per request on localhost).
    disable_nagle_algorithm = True
    server: VerdictHTTPServer

    # Silence the default stderr access log; the audit log is the record.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    # ---------------------------------------------------------------- routing

    def _dispatch(self, method: str) -> None:
        started = time.perf_counter()
        url = urlparse(self.path)
        audit_fields: dict = {}
        try:
            faults.inject("http.handler", method=method, path=url.path)
            status, payload = self._route(method, url.path, url.query, audit_fields)
        except ApiError as error:
            status, payload = error.status, error.body()
            audit_fields["error"] = error.code
        except Exception as error:  # engine failures -> typed mapping
            mapped = protocol.map_exception(error)
            status, payload = mapped.status, mapped.body()
            audit_fields["error"] = mapped.code
        latency = time.perf_counter() - started
        try:
            self._respond(status, payload)
        except (BrokenPipeError, ConnectionResetError):
            audit_fields["client_gone"] = True
        if self.server.audit is not None:
            self.server.audit.record(
                endpoint=f"{method} {url.path}",
                status=status,
                latency_s=latency,
                **audit_fields,
            )

    def _route(
        self, method: str, path: str, query: str, audit_fields: dict
    ) -> tuple[int, dict]:
        if method == "POST" and path == "/v1/ask":
            return self._ask(self._read_json(), audit_fields)
        if method == "POST" and path == "/v1/feedback/append":
            return self._append(self._read_json(), audit_fields)
        if method == "POST" and path == "/v1/feedback/record":
            return self._record(self._read_json(), audit_fields)
        if method == "GET" and path == "/v1/metrics":
            params = parse_qs(query)
            tenant = params.get("tenant", [None])[0]
            audit_fields["tenant"] = tenant
            return self._metrics(tenant)
        if method == "POST" and path == "/v1/admin/train":
            return self._train(self._read_json(), audit_fields)
        if method == "POST" and path == "/v1/admin/snapshot":
            return self._snapshot(self._read_json(), audit_fields)
        if method == "POST" and path == "/v1/admin/tenants":
            return self._create_tenant(self._read_json(), audit_fields)
        if method == "GET" and path == "/v1/admin/tenants":
            return 200, {"tenants": self.server.tenants.list_tenants()}
        if method == "GET" and path == "/v1/healthz":
            return self._healthz()
        raise protocol.unknown_route(method, path)

    def _healthz(self) -> tuple[int, dict]:
        """Aggregate health: the server itself plus every resident tenant.

        Always 200 (the process is alive and answering); the *status* field
        says how well: ``ok``, ``degraded`` (some tenant has an open
        breaker, a quarantined store, or a dead trainer -- the per-tenant
        reasons say which), or ``draining`` during shutdown.
        """
        server = self.server
        tenants = server.tenants.resident_health()
        reasons = [
            f"tenant {name}: {reason}"
            for name, health in sorted(tenants.items())
            for reason in health["reasons"]
        ]
        if server.admission.closed:
            status = "draining"
        elif reasons:
            status = "degraded"
        else:
            status = "ok"
        return 200, {
            "status": status,
            "reasons": reasons,
            "tenants": tenants,
            "uptime_s": time.time() - server.started_ts,
        }

    # -------------------------------------------------------------- endpoints

    def _ask(self, payload: object, audit_fields: dict) -> tuple[int, dict]:
        request = protocol.parse_ask(payload)
        audit_fields["tenant"] = request.tenant
        # Client-fault errors (bad SQL, unknown table) must not reach the
        # routing layer, where they would surface as opaque 500s.
        parsed = parse_query(request.sql)
        with self.server.admission.admit():
            with self.server.tenants.lease(request.tenant) as tenant:
                _check_tables(tenant.service.catalog, parsed)
                answer = tenant.service.query(
                    request.sql, budget=request.budget, record=request.record
                )
        state = protocol.answer_to_state(answer)
        audit_fields["route"] = state["route"]
        audit_fields["error_bound"] = state["relative_error_bound"]
        return 200, {"tenant": request.tenant, "answer": state}

    def _append(self, payload: object, audit_fields: dict) -> tuple[int, dict]:
        from repro.db.table import Table

        request = protocol.parse_append(payload)
        audit_fields["tenant"] = request.tenant
        with self.server.admission.admit():
            with self.server.tenants.lease(request.tenant) as tenant:
                catalog = tenant.service.catalog
                if not catalog.has_table(request.table):
                    raise ApiError(
                        404, "unknown_table", f"unknown table {request.table!r}"
                    )
                schema = catalog.table(request.table).schema
                appended = Table(request.table, schema, request.rows)
                adjusted = tenant.service.append(
                    request.table, appended, adjust=request.adjust
                )
        audit_fields["rows"] = len(appended)
        return 200, {
            "tenant": request.tenant,
            "table": request.table,
            "appended_rows": len(appended),
            "snippets_adjusted": adjusted,
        }

    def _record(self, payload: object, audit_fields: dict) -> tuple[int, dict]:
        request = protocol.parse_record(payload)
        audit_fields["tenant"] = request.tenant
        # Parse errors are the client's fault and must not burn a full
        # sample scan: surface them before admission.
        parsed = parse_query(request.sql)
        with self.server.admission.admit():
            with self.server.tenants.lease(request.tenant) as tenant:
                _check_tables(tenant.service.catalog, parsed)
                recorded = tenant.service.record_answer(request.sql)
        return 200, {"tenant": request.tenant, "recorded": recorded}

    def _metrics(self, tenant_name: str | None) -> tuple[int, dict]:
        server = self.server
        if tenant_name is None:
            return 200, {
                "uptime_s": time.time() - server.started_ts,
                "admission": server.admission.snapshot(),
                "tenants": server.tenants.stats(),
                "audit_entries": (
                    server.audit.entries_written if server.audit else 0
                ),
            }
        with server.tenants.lease(tenant_name) as tenant:
            service = tenant.service
            return 200, {
                "tenant": tenant_name,
                "restored": service.restored,
                "cache_size": service.cache_size(),
                "lifecycle_phase": service.lifecycle_phase,
                # Metrics plus robustness state: per-route breakers, the
                # background trainer, and the store's recovery counters.
                "metrics": service.observability(),
            }

    def _train(self, payload: object, audit_fields: dict) -> tuple[int, dict]:
        request = protocol.parse_train(payload)
        audit_fields["tenant"] = request.tenant
        with self.server.tenants.lease(request.tenant) as tenant:
            if request.wait:
                tenant.service.train(request.learn)
                return 200, {"tenant": request.tenant, "trained": True}
            tenant.service.train_async(request.learn)
            return 200, {"tenant": request.tenant, "scheduled": True}

    def _snapshot(self, payload: object, audit_fields: dict) -> tuple[int, dict]:
        request = protocol.parse_tenant_only(payload)
        audit_fields["tenant"] = request.tenant
        with self.server.tenants.lease(request.tenant) as tenant:
            outcome = tenant.service.snapshot()
        return 200, {"tenant": request.tenant, "snapshot": outcome}

    def _create_tenant(self, payload: object, audit_fields: dict) -> tuple[int, dict]:
        request = protocol.parse_tenant_only(payload)
        audit_fields["tenant"] = request.tenant
        record = self.server.tenants.create(request.tenant)
        return 201, record

    # ----------------------------------------------------------------- plumbing

    def _read_json(self) -> object:
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            self.close_connection = True  # unread body would desync keep-alive
            raise protocol.bad_request("missing Content-Length")
        try:
            length = int(length_header)
        except ValueError:
            self.close_connection = True
            raise protocol.bad_request("bad Content-Length") from None
        if length < 0 or length > protocol.MAX_BODY_BYTES:
            self.close_connection = True
            raise protocol.bad_request(
                f"body of {length} bytes exceeds {protocol.MAX_BODY_BYTES}"
            )
        body = self.rfile.read(length)
        try:
            return json.loads(body)
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise protocol.bad_request(f"body is not valid JSON: {error}") from None

    def _respond(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if status == 429:
            self.send_header("Retry-After", "1")
        self.end_headers()
        self.wfile.write(body)
