"""The HTTP/JSON front door: a stdlib ``ThreadingHTTPServer`` over tenants.

No third-party web framework -- the whole network layer is the standard
library, so the front door deploys anywhere the engine does.  Endpoints
(all under ``/v1``, JSON request/response):

=======  ========================  ==========================================
method   path                      purpose
=======  ========================  ==========================================
POST     ``/v1/ask``               answer one SQL request within its budget
                                   (``explain: true`` returns the planner's
                                   decision record without executing;
                                   ``trace: true`` attaches the span tree)
POST     ``/v1/cancel/<id>``       cooperatively cancel the in-flight ask
                                   whose ``X-Request-Id`` is ``<id>``
                                   (bypasses admission; the cancelled ask
                                   itself answers 499 ``cancelled``)
POST     ``/v1/feedback/append``   append rows to a tenant fact table
POST     ``/v1/feedback/record``   full-scan a query and record its snippets
GET      ``/v1/metrics``           server-wide (or ``?tenant=`` scoped)
                                   stats; ``?format=prometheus`` renders the
                                   text exposition instead of JSON
GET      ``/v1/trace/<id>``        finished span tree of one request id
POST     ``/v1/admin/train``       run the offline step (sync or background)
POST     ``/v1/admin/snapshot``    force a durable full snapshot
POST     ``/v1/admin/tenants``     create a tenant
GET      ``/v1/admin/tenants``     list tenants
POST     ``/v1/admin/promote``     promote this follower to leader under a
                                   fresh fencing epoch (manual failover)
GET      ``/v1/healthz``           liveness probe (reports replication role,
                                   fencing epoch, and max lag)
GET      ``/v1/replication/...``   WAL shipping: ``snapshot`` (checksummed
                                   bootstrap document), ``deltas?from=<seq>``
                                   (CRC'd WAL tail; the pull doubles as the
                                   follower's durable-apply ack), ``status``
POST     ``/v1/replication/fence`` another node claims a higher epoch: stop
                                   accepting writes (used on deposed leaders)
=======  ========================  ==========================================

Mutating endpoints (``feedback/*``, ``admin/train``, ``admin/snapshot``,
tenant create) are gated on the replication role: a follower rejects them
with a typed 503 carrying a ``leader`` hint, and a fenced-out ex-leader
rejects them with a hard 409 ``epoch_fenced``.  ``ask`` is always served
(read-only degraded mode), with snippet recording forced off on
non-writable nodes.  Replication endpoints bypass admission: a saturated
leader must still ship its WAL.

Every request is stamped with a request id -- adopted from a valid
``X-Request-Id`` header or minted -- echoed in the response header and
payload, recorded on the audit line, and (with a tracer) keying the
request's span tree in the trace ring and JSONL trace log.

Execution model: connection-handler threads run the query themselves (the
per-tenant service's worker pool is for in-process ``submit()`` callers),
gated by one shared :class:`~repro.serve.http.admission.AdmissionController`
so a burst cannot run unbounded engine work -- beyond ``max_active``
concurrent requests and ``max_queued`` waiters, requests are shed with 429.
``ask`` and both ``feedback`` endpoints pay admission; metrics, admin, and
health do not (operators must be able to look at a saturated server).

Shutdown (:meth:`VerdictHTTPServer.close`) is ordered: stop admitting
(queued waiters fail fast with 503, admitted requests finish), drain, stop
the accept loop, close every tenant (each writes its final snapshot), close
the audit log.  In-flight requests therefore always terminate with a real
response -- 200 if admitted before the close, 503 otherwise.
"""

from __future__ import annotations

import json
import select
import socket
import threading
import time
from contextlib import ExitStack
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro import faults
from repro.deadline import CancelToken, cancel_scope
from repro.errors import QueryCancelled
from repro.obs.metrics import MetricFamily, merge_families, render_prometheus
from repro.obs.trace import (
    Tracer,
    current_trace,
    mint_request_id,
    span as trace_span,
    valid_request_id,
)
from repro.serve.governor import BrownoutController, ResourceGovernor
from repro.serve.http import protocol
from repro.serve.http.admission import AdmissionController, ShedLoad
from repro.serve.http.audit import AuditLog
from repro.serve.http.protocol import ApiError
from repro.serve.http.tenants import TenantManager
from repro.serve.replication import ReplicationManager
from repro.sqlparser.parser import parse_query

#: Cap on delta records per replication pull (the follower batches anyway).
MAX_SHIP_RECORDS = 1024


def _check_tables(catalog, parsed) -> None:
    """404 for any table the SQL names that the tenant's catalog lacks."""
    for name in (parsed.table, *(join.table for join in parsed.joins)):
        if not catalog.has_table(name):
            raise ApiError(404, "unknown_table", f"unknown table {name!r}")


class VerdictHTTPServer(ThreadingHTTPServer):
    """Multi-tenant HTTP front door over per-tenant Verdict services."""

    daemon_threads = True
    allow_reuse_address = True
    # Burst admission is the AdmissionController's job, not the kernel's:
    # the listen backlog must absorb a whole client fleet connecting at
    # once (the default of 5 turns client 6+ into 1s SYN retransmits).
    request_queue_size = 128

    def __init__(
        self,
        address: tuple[str, int],
        tenants: TenantManager,
        max_active: int = 4,
        max_queued: int = 16,
        queue_timeout_s: float | None = 5.0,
        audit: AuditLog | None = None,
        tracer: Tracer | None = None,
        replication: ReplicationManager | None = None,
        governor: ResourceGovernor | None = None,
        brownout: BrownoutController | None = None,
    ):
        super().__init__(address, _Handler)
        self.tenants = tenants
        # Always present: an unconfigured governor admits everything but
        # still hosts the cancel registry and per-tenant counters, so
        # POST /v1/cancel works on an ungoverned server too.
        self.governor = governor if governor is not None else ResourceGovernor()
        # Brownout is opt-in (None = budgets are never touched).
        self.brownout = brownout
        # A server constructed without replication wiring is a standalone
        # leader at epoch 1: every write gate below passes unconditionally.
        self.replication = (
            replication if replication is not None else ReplicationManager()
        )
        # Set by a fired "torn" ship fault: the handler sends the (mangled)
        # response first, then the process dies -- modelling a leader that
        # crashed mid-ship after the bytes left the socket.
        self._kill_after_response = False
        self.admission = AdmissionController(
            max_active=max_active,
            max_queued=max_queued,
            queue_timeout_s=queue_timeout_s,
        )
        self.audit = audit
        # Every request gets a request id regardless; the tracer decides
        # whether a span tree is recorded against it.
        self.tracer = tracer
        self.started_ts = time.time()
        self._serve_thread: threading.Thread | None = None
        self._close_lock = threading.Lock()
        self._closed = False

    # ---------------------------------------------------------------- control

    def start(self) -> "VerdictHTTPServer":
        """Run the accept loop on a background thread; returns ``self``."""
        self._serve_thread = threading.Thread(
            target=self.serve_forever, name="verdict-http", daemon=True
        )
        self._serve_thread.start()
        return self

    @property
    def port(self) -> int:
        return self.server_address[1]

    def close(self) -> None:
        """Ordered graceful shutdown; idempotent and thread-safe."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
            # 1. Stop admitting: queued waiters get 503, admitted finish.
            self.admission.close()
            # 2. Drain admitted requests so no engine work is in flight.
            self.admission.wait_idle(timeout_s=60.0)
            # 3. Stop the accept loop and release the listening socket.
            self.shutdown()
            self.server_close()
            if self._serve_thread is not None:
                self._serve_thread.join(timeout=10.0)
            # 4. Close tenants last: every service writes its final
            #    snapshot with zero requests in flight anywhere.
            self.tenants.close()
            if self.audit is not None:
                self.audit.close()
            if self.tracer is not None:
                self.tracer.close()

    def __enter__(self) -> "VerdictHTTPServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _Handler(BaseHTTPRequestHandler):
    """Routes one connection's requests; see the module docstring."""

    protocol_version = "HTTP/1.1"
    # Idle keep-alive connections die on their own rather than pinning
    # handler threads forever.
    timeout = 60.0
    # The response goes out as two writes (header block, then body) on an
    # unbuffered socket; with Nagle on, the body write stalls behind the
    # peer's delayed ACK (~40ms per request on localhost).
    disable_nagle_algorithm = True
    server: VerdictHTTPServer

    # Silence the default stderr access log; the audit log is the record.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    # ---------------------------------------------------------------- routing

    def _dispatch(self, method: str) -> None:
        started = time.perf_counter()
        url = urlparse(self.path)
        # Every request carries a request id end to end: adopted from a
        # valid X-Request-Id header, minted otherwise.  It is echoed in the
        # response header and payload, stamped on the audit record, and
        # keys the trace in the ring/trace log.
        offered = self.headers.get("X-Request-Id") or ""
        request_id = offered if valid_request_id(offered) else mint_request_id()
        # Stashed so _ask can register its cancel token under the same id
        # the client saw in the response header.
        self.active_request_id = request_id
        audit_fields: dict = {}
        tracer = self.server.tracer
        if tracer is None:
            status, payload, retry_after = self._handle(method, url, audit_fields)
        else:
            with tracer.request(request_id, name=f"{method} {url.path}") as root:
                status, payload, retry_after = self._handle(
                    method, url, audit_fields
                )
                root.set(status=status)
                if "error" in audit_fields:
                    root.set(error_code=audit_fields["error"])
        if isinstance(payload, dict):
            payload = {**payload, "request_id": request_id}
        latency = time.perf_counter() - started
        try:
            self._respond(
                status, payload, retry_after_s=retry_after, request_id=request_id
            )
        except (BrokenPipeError, ConnectionResetError):
            audit_fields["client_gone"] = True
        if self.server.audit is not None:
            replication = self.server.replication
            self.server.audit.record(
                endpoint=f"{method} {url.path}",
                status=status,
                latency_s=latency,
                request_id=request_id,
                role=replication.role,
                epoch=replication.epoch.number,
                **audit_fields,
            )
        if self.server._kill_after_response:
            faults.hard_exit()

    def _handle(
        self, method: str, url, audit_fields: dict
    ) -> tuple[int, dict | str, float | None]:
        """Route one request, mapping every failure to a typed response."""
        try:
            faults.inject("http.handler", method=method, path=url.path)
            status, payload = self._route(method, url.path, url.query, audit_fields)
            return status, payload, None
        except ApiError as error:
            audit_fields["error"] = error.code
            return error.status, error.body(), error.retry_after_s
        except Exception as error:  # engine failures -> typed mapping
            mapped = protocol.map_exception(error)
            audit_fields["error"] = mapped.code
            return mapped.status, mapped.body(), mapped.retry_after_s

    def _route(
        self, method: str, path: str, query: str, audit_fields: dict
    ) -> tuple[int, dict]:
        if method == "POST" and path == "/v1/ask":
            return self._ask(self._read_json(), audit_fields)
        if method == "POST" and path == "/v1/feedback/append":
            return self._append(self._read_json(), audit_fields)
        if method == "POST" and path == "/v1/feedback/record":
            return self._record(self._read_json(), audit_fields)
        if method == "POST" and path.startswith("/v1/cancel/"):
            # Cancellation bypasses admission: it must land on a saturated
            # server -- that is exactly when cancelling matters most.
            return self._cancel(path[len("/v1/cancel/"):], audit_fields)
        if method == "GET" and path == "/v1/metrics":
            params = parse_qs(query)
            tenant = params.get("tenant", [None])[0]
            audit_fields["tenant"] = tenant
            return self._metrics(tenant, params.get("format", [None])[0])
        if method == "GET" and path.startswith("/v1/trace/"):
            return self._trace(path[len("/v1/trace/"):])
        if method == "POST" and path == "/v1/admin/train":
            return self._train(self._read_json(), audit_fields)
        if method == "POST" and path == "/v1/admin/snapshot":
            return self._snapshot(self._read_json(), audit_fields)
        if method == "POST" and path == "/v1/admin/tenants":
            return self._create_tenant(self._read_json(), audit_fields)
        if method == "GET" and path == "/v1/admin/tenants":
            return 200, {"tenants": self.server.tenants.list_tenants()}
        if method == "POST" and path == "/v1/admin/promote":
            return self._promote(self._read_json(), audit_fields)
        if method == "GET" and path == "/v1/replication/deltas":
            return self._replication_deltas(parse_qs(query), audit_fields)
        if method == "GET" and path == "/v1/replication/snapshot":
            return self._replication_snapshot(parse_qs(query), audit_fields)
        if method == "GET" and path == "/v1/replication/status":
            return self._replication_status()
        if method == "POST" and path == "/v1/replication/fence":
            return self._fence(self._read_json(), audit_fields)
        if method == "GET" and path == "/v1/healthz":
            return self._healthz()
        raise protocol.unknown_route(method, path)

    def _healthz(self) -> tuple[int, dict]:
        """Aggregate health: the server itself plus every resident tenant.

        Always 200 (the process is alive and answering); the *status* field
        says how well: ``ok``, ``degraded`` (some tenant has an open
        breaker, a quarantined store, or a dead trainer -- the per-tenant
        reasons say which), or ``draining`` during shutdown.
        """
        server = self.server
        tenants = server.tenants.resident_health()
        reasons = [
            f"tenant {name}: {reason}"
            for name, health in sorted(tenants.items())
            for reason in health["reasons"]
        ]
        reasons += server.replication.health_reasons()
        brownout = server.brownout
        if brownout is not None:
            brownout.tick()
            if brownout.level > 0:
                reasons.append(
                    f"brownout at level {brownout.level}: error budgets widened "
                    f"under sustained queue saturation"
                )
        if server.admission.closed:
            status = "draining"
        elif reasons:
            status = "degraded"
        else:
            status = "ok"
        payload = {
            "status": status,
            "reasons": reasons,
            "tenants": tenants,
            "replication": server.replication.summary(),
            "governor": server.governor.snapshot(),
            "uptime_s": time.time() - server.started_ts,
        }
        if brownout is not None:
            payload["brownout"] = brownout.snapshot()
        return 200, payload

    # -------------------------------------------------------------- endpoints

    def _ask(self, payload: object, audit_fields: dict) -> tuple[int, dict]:
        server = self.server
        request = protocol.parse_ask(payload)
        audit_fields["tenant"] = request.tenant
        # Client-fault errors (bad SQL, unknown table) must not reach the
        # routing layer, where they would surface as opaque 500s.
        parsed = parse_query(request.sql)
        if request.explain:
            # EXPLAIN never executes (no scan, no engine work), so like
            # metrics and health it bypasses admission: the plan must be
            # inspectable on a saturated server.
            with server.tenants.lease(request.tenant) as tenant:
                _check_tables(tenant.service.catalog, parsed)
                effective = self._effective_budget(tenant, request.budget, audit_fields)
                plan = tenant.service.explain(request.sql, budget=effective)
                plan["governance"] = self._governance_explain(
                    tenant, parsed, request.budget, effective, request.tenant
                )
            audit_fields["explain"] = True
            return 200, {"tenant": request.tenant, "explain": plan}
        with ExitStack() as stack:
            # The lease comes first: pricing a request needs the tenant's
            # planner, and a lease only pins residency (it is safe to hold
            # across an admission queue wait).
            with server.tenants.lease(request.tenant) as tenant:
                _check_tables(tenant.service.catalog, parsed)
                effective = self._effective_budget(tenant, request.budget, audit_fields)
                # Tenant governance before the shared gate: a tenant over
                # its quota is shed in microseconds with its own Retry-After
                # and never occupies a global queue slot.
                cost = server.governor.price_query(
                    tenant.service.planner,
                    parsed,
                    effective or tenant.service.default_budget,
                )
                with trace_span("governance"):
                    stack.enter_context(server.governor.admit(request.tenant, cost))
                # The admission span covers only the wait for a slot (its
                # outcome/queue-wait attrs are set inside the controller);
                # the slot itself is held for the whole execution.  The
                # measured wait feeds the brownout saturation detector; a
                # shed counts as a full-horizon observation (the queue was
                # saturated enough to refuse us).
                wait_started = time.perf_counter()
                try:
                    with trace_span("admission"):
                        stack.enter_context(server.admission.admit())
                except ShedLoad:
                    if server.brownout is not None:
                        horizon = server.admission.queue_timeout_s
                        server.brownout.observe(
                            horizon
                            if horizon is not None
                            else 2.0 * server.brownout.threshold_s
                        )
                    raise
                if server.brownout is not None:
                    server.brownout.observe(time.perf_counter() - wait_started)
                # Degraded read-only mode: followers (and fenced leaders)
                # still answer asks, but never record snippets -- recording
                # is a write and writes arrive via replication only.
                record = request.record
                if not server.replication.is_writable:
                    record = False
                # The cancel token is ambient for the whole execution: a
                # POST /v1/cancel under this request id (or the disconnect
                # probe noticing the client hung up) arms it, and the next
                # scan/online-agg checkpoint raises QueryCancelled.
                token = CancelToken(probe=self._disconnect_probe())
                with server.governor.cancels.track(
                    self.active_request_id, token, request.tenant
                ):
                    try:
                        with cancel_scope(token):
                            answer = tenant.service.query(
                                request.sql, budget=effective, record=record
                            )
                    except QueryCancelled as error:
                        server.governor.record_cancel(request.tenant, error.reason)
                        audit_fields["cancelled"] = error.reason
                        raise
        state = protocol.answer_to_state(answer)
        audit_fields["route"] = state["route"]
        audit_fields["error_bound"] = state["relative_error_bound"]
        response = {"tenant": request.tenant, "answer": state}
        if request.trace:
            # The root span is still open (it closes in _dispatch after the
            # response is rendered), so the attached tree reports the wall
            # time accumulated so far; the ring holds the finished version.
            root = current_trace()
            response["trace"] = None if root is None else root.to_dict()
        return 200, response

    def _effective_budget(self, tenant, requested, audit_fields: dict):
        """The budget this request runs under after brownout widening.

        With brownout disabled (or at level 0) the requested budget passes
        through untouched -- including ``None`` (the service default).  At
        a positive level the default is resolved so it can be widened too,
        and the audit record is stamped with the level that did it.
        """
        brownout = self.server.brownout
        if brownout is None:
            return requested
        brownout.tick()
        if brownout.level == 0:
            return requested
        base = requested if requested is not None else tenant.service.default_budget
        effective = brownout.effective_budget(base)
        if effective is not base:
            audit_fields["brownout_level"] = brownout.level
        return effective

    def _governance_explain(
        self, tenant, parsed, requested, effective, tenant_name: str
    ) -> dict:
        """The EXPLAIN ``governance`` section: quota, price, brownout."""
        server = self.server
        pricing_budget = effective or tenant.service.default_budget
        budget_state = None
        if effective is not None:
            budget_state = {
                "max_relative_error": effective.max_relative_error,
                "max_latency_s": effective.max_latency_s,
                "deadline_s": effective.deadline_s,
            }
        return {
            "tenant_quota": server.governor.quota_state(tenant_name),
            "price_tokens": server.governor.price_query(
                tenant.service.planner, parsed, pricing_budget
            ),
            "budget_widened": effective is not requested,
            "effective_budget": budget_state,
            "brownout": (
                server.brownout.snapshot() if server.brownout is not None else None
            ),
        }

    def _cancel(self, request_id: str, audit_fields: dict) -> tuple[int, dict]:
        """Arm the cancel token of an in-flight ask by request id."""
        # The (empty) body must be drained or the keep-alive stream desyncs.
        length = int(self.headers.get("Content-Length") or 0)
        if length > 0:
            self.rfile.read(min(length, protocol.MAX_BODY_BYTES))
        if not valid_request_id(request_id):
            raise protocol.bad_request(f"invalid request id {request_id!r}")
        found, tenant = self.server.governor.cancels.cancel(request_id)
        audit_fields["cancel_target"] = request_id
        if not found:
            raise ApiError(
                404,
                "unknown_request",
                f"no in-flight request {request_id!r} (already finished, "
                "never admitted, or served elsewhere)",
            )
        if tenant:
            audit_fields["tenant"] = tenant
        return 200, {"cancelled": True, "request": request_id}

    def _disconnect_probe(self):
        """A rate-limited peek that reports whether the client hung up.

        Zero-timeout ``select`` + ``MSG_PEEK``: an EOF (empty read) or a
        socket error means the client is gone -- cancel the query, nobody
        is listening.  Readable *data* is a pipelined follow-up request on
        the keep-alive connection, not a disconnect.  The ``http.disconnect``
        fault point lets REPRO_FAULTS simulate a vanished client ("torn")
        or kill/delay mid-probe.
        """
        sock = self.connection

        def probe() -> str | None:
            directive = faults.inject("http.disconnect")
            if directive is not None and directive.action == "torn":
                return "disconnected"
            try:
                readable, _, _ = select.select([sock], [], [], 0)
                if not readable:
                    return None
                if sock.recv(1, socket.MSG_PEEK) == b"":
                    return "disconnected"
            except OSError:
                return "disconnected"
            return None

        return probe

    def _append(self, payload: object, audit_fields: dict) -> tuple[int, dict]:
        from repro.db.table import Table

        request = protocol.parse_append(payload)
        audit_fields["tenant"] = request.tenant
        self.server.replication.require_writable()
        with ExitStack() as stack:
            with trace_span("admission"):
                stack.enter_context(self.server.admission.admit())
            with self.server.tenants.lease(request.tenant) as tenant:
                catalog = tenant.service.catalog
                if not catalog.has_table(request.table):
                    raise ApiError(
                        404, "unknown_table", f"unknown table {request.table!r}"
                    )
                schema = catalog.table(request.table).schema
                appended = Table(request.table, schema, request.rows)
                adjusted = tenant.service.append(
                    request.table, appended, adjust=request.adjust
                )
                self._sync_ack(tenant)
        audit_fields["rows"] = len(appended)
        return 200, {
            "tenant": request.tenant,
            "table": request.table,
            "appended_rows": len(appended),
            "snippets_adjusted": adjusted,
        }

    def _record(self, payload: object, audit_fields: dict) -> tuple[int, dict]:
        request = protocol.parse_record(payload)
        audit_fields["tenant"] = request.tenant
        self.server.replication.require_writable()
        # Parse errors are the client's fault and must not burn a full
        # sample scan: surface them before admission.
        parsed = parse_query(request.sql)
        with ExitStack() as stack:
            with trace_span("admission"):
                stack.enter_context(self.server.admission.admit())
            with self.server.tenants.lease(request.tenant) as tenant:
                _check_tables(tenant.service.catalog, parsed)
                recorded = tenant.service.record_answer(request.sql)
                if recorded:
                    self._sync_ack(tenant)
        return 200, {"tenant": request.tenant, "recorded": recorded}

    def _sync_ack(self, tenant) -> None:
        """In sync-ack mode, block the ack until a follower confirms the write.

        The write is first flushed (its WAL record must exist to ship), then
        the handler waits for a follower pull whose ``from`` covers the
        record's sequence -- the follower's statement that it durably applied
        it.  On timeout the write is durable *locally* but unconfirmed
        remotely: a typed 503 without Retry-After, because retrying the
        mutation would double-apply it.
        """
        replication = self.server.replication
        if replication.ack_mode != "sync" or not replication.is_leader:
            return
        tenant.service.flush()
        seq = tenant.store.sequence
        with trace_span("replication.ack") as span:
            confirmed = replication.wait_replicated(tenant.name, seq)
            if span is not None:
                span.set(seq=seq, confirmed=confirmed)
        if not confirmed:
            raise protocol.replication_timeout(
                f"write is durable locally at seq {seq} but no follower "
                f"confirmed it within {replication.ack_timeout_s:g}s"
            )

    def _metrics(
        self, tenant_name: str | None, format: str | None = None
    ) -> tuple[int, dict | str]:
        server = self.server
        if format is not None and format != "prometheus":
            raise protocol.bad_request(f"unknown metrics format {format!r}")
        if format == "prometheus":
            return 200, self._prometheus(tenant_name)
        if tenant_name is None:
            state = {
                "uptime_s": time.time() - server.started_ts,
                "admission": server.admission.snapshot(),
                "governor": server.governor.snapshot(),
                "tenants": server.tenants.stats(),
                "audit_entries": (
                    server.audit.entries_written if server.audit else 0
                ),
            }
            if server.brownout is not None:
                server.brownout.tick()
                state["brownout"] = server.brownout.snapshot()
            if server.tracer is not None:
                state["tracer"] = server.tracer.stats()
            return 200, state
        with server.tenants.lease(tenant_name) as tenant:
            service = tenant.service
            return 200, {
                "tenant": tenant_name,
                "restored": service.restored,
                "cache_size": service.cache_size(),
                "lifecycle_phase": service.lifecycle_phase,
                # Metrics plus robustness state: per-route breakers, the
                # background trainer, and the store's recovery counters.
                "metrics": service.observability(),
            }

    def _prometheus(self, tenant_name: str | None) -> str:
        """Prometheus text exposition: server-wide or one tenant's families.

        The server-wide view unifies the admission controller, the tracer,
        the audit log, and every *resident* tenant's service families
        (route counters/histograms, breakers, trainer, store, cache) under
        ``tenant`` labels.  Evicted tenants are deliberately not loaded: a
        metrics scrape must stay cheap and side-effect-free.
        """
        server = self.server
        if tenant_name is not None:
            with server.tenants.lease(tenant_name) as tenant:
                return render_prometheus(
                    merge_families(
                        tenant.service.metric_families({"tenant": tenant_name})
                    )
                )
        families = [
            MetricFamily(
                "verdict_uptime_seconds", "gauge", "Seconds since server start."
            ).add({}, time.time() - server.started_ts)
        ]
        families += server.admission.metric_families()
        # Governor families carry per-tenant labels; merge_families below
        # folds them into one HELP/TYPE block per family name.
        families += server.governor.metric_families()
        if server.brownout is not None:
            server.brownout.tick()
            families += server.brownout.metric_families()
        families += server.replication.metric_families()
        if server.audit is not None:
            families.append(
                MetricFamily(
                    "verdict_audit_entries_total",
                    "counter",
                    "Audit-log records written this session.",
                ).add({}, server.audit.entries_written)
            )
        if server.tracer is not None:
            stats = server.tracer.stats()
            families.append(
                MetricFamily(
                    "verdict_traces_finished_total",
                    "counter",
                    "Request traces finished (ring + logs).",
                ).add({}, stats["finished"])
            )
            families.append(
                MetricFamily(
                    "verdict_slow_queries_total",
                    "counter",
                    "Traces exceeding the slow-query threshold.",
                ).add({}, stats["slow_queries"])
            )
        for name in server.tenants.stats()["loaded_tenants"]:
            try:
                with server.tenants.lease(name) as tenant:
                    families += tenant.service.metric_families({"tenant": name})
            except ApiError:
                continue  # evicted or deleted between the snapshot and lease
        return render_prometheus(merge_families(families))

    def _trace(self, request_id: str) -> tuple[int, dict]:
        tracer = self.server.tracer
        if tracer is None:
            raise ApiError(
                404, "tracing_disabled", "the server runs without a tracer"
            )
        trace = tracer.get(request_id)
        if trace is None:
            raise ApiError(
                404,
                "unknown_trace",
                f"no trace for request {request_id!r} (expired from the "
                f"ring, or the id was never served)",
            )
        return 200, {"trace": trace}

    def _train(self, payload: object, audit_fields: dict) -> tuple[int, dict]:
        request = protocol.parse_train(payload)
        audit_fields["tenant"] = request.tenant
        self.server.replication.require_writable()
        with self.server.tenants.lease(request.tenant) as tenant:
            if request.wait:
                tenant.service.train(request.learn)
                return 200, {"tenant": request.tenant, "trained": True}
            tenant.service.train_async(request.learn)
            return 200, {"tenant": request.tenant, "scheduled": True}

    def _snapshot(self, payload: object, audit_fields: dict) -> tuple[int, dict]:
        request = protocol.parse_tenant_only(payload)
        audit_fields["tenant"] = request.tenant
        self.server.replication.require_writable()
        with self.server.tenants.lease(request.tenant) as tenant:
            outcome = tenant.service.snapshot()
        return 200, {"tenant": request.tenant, "snapshot": outcome}

    def _create_tenant(self, payload: object, audit_fields: dict) -> tuple[int, dict]:
        request = protocol.parse_tenant_only(payload)
        audit_fields["tenant"] = request.tenant
        self.server.replication.require_writable()
        record = self.server.tenants.create(request.tenant)
        return 201, record

    # ------------------------------------------------------------- replication

    def _require_leader(self) -> None:
        replication = self.server.replication
        if not replication.is_leader:
            raise protocol.read_only_follower(
                "replication shipping endpoints are leader-only",
                leader=replication.leader_url,
            )

    @staticmethod
    def _query_param(params: dict, name: str, required: bool = True) -> str | None:
        values = params.get(name)
        if not values:
            if required:
                raise protocol.bad_request(f"missing query parameter {name!r}")
            return None
        return values[0]

    def _replication_deltas(
        self, params: dict, audit_fields: dict
    ) -> tuple[int, dict]:
        """Ship the WAL tail past ``from`` -- and treat the pull as an ack.

        ``from=N`` is the follower's statement that it has *durably applied*
        through sequence N: it is recorded via ``note_pull`` before anything
        else, which is what releases leader writes blocked in sync-ack mode.
        A ``from`` behind the snapshot horizon cannot be served from the
        delta log and gets a typed 409 pointing at the snapshot endpoint.
        """
        self._require_leader()
        tenant_name = self._query_param(params, "tenant")
        audit_fields["tenant"] = tenant_name
        try:
            from_seq = int(self._query_param(params, "from"))
            max_records = int(self._query_param(params, "max_records", False) or 256)
        except ValueError:
            raise protocol.bad_request(
                "'from' and 'max_records' must be integers"
            ) from None
        max_records = max(1, min(max_records, MAX_SHIP_RECORDS))
        remote_epoch = self._query_param(params, "epoch", False)
        remote_lineage = self._query_param(params, "lineage", False) or ""
        replication = self.server.replication
        if remote_epoch is not None and int(remote_epoch) > replication.epoch.number:
            # The puller already follows a newer leader than us: we are the
            # deposed one.  Fence ourselves and reject the pull.
            replication.fence(int(remote_epoch), remote_lineage)
            raise protocol.epoch_fenced(
                f"this leader's epoch {replication.epoch.number} was "
                f"superseded by epoch {remote_epoch}",
                local=(replication.epoch.number, replication.epoch.lineage),
                remote=(int(remote_epoch), remote_lineage),
            )
        replication.note_pull(tenant_name, from_seq)
        with self.server.tenants.lease(tenant_name) as tenant:
            store = tenant.store
            if from_seq < store.snapshot_sequence:
                raise protocol.snapshot_required(
                    tenant_name, from_seq, store.snapshot_sequence
                )
            lines = store.delta_tail(from_seq, max_records)
            state = store.replication_state()
        if lines:
            directive = faults.inject(
                "repl.ship.deltas", tenant=tenant_name, records=len(lines)
            )
            if directive is not None and directive.action == "torn":
                # Ship a half-written last record and die once the response
                # is flushed: the canonical torn-tail crash, as seen by a
                # follower instead of a local restart.
                lines = lines[:-1] + [lines[-1][: max(1, len(lines[-1]) // 2)]]
                self.server._kill_after_response = True
        audit_fields["records"] = len(lines)
        return 200, {
            "tenant": tenant_name,
            "from": from_seq,
            "lines": lines,
            "seq": state["sequence"],
            "snapshot_seq": state["snapshot_sequence"],
            "epoch": state["epoch"],
            "lineage": state["lineage"],
        }

    def _replication_snapshot(
        self, params: dict, audit_fields: dict
    ) -> tuple[int, dict]:
        """Ship a shippable full snapshot for follower bootstrap.

        Pending learned state is flushed first; if the published snapshot
        predates the replication envelope (legacy) or the delta log is
        non-empty, a fresh snapshot is written so the shipped document alone
        reproduces the leader's current state.
        """
        self._require_leader()
        tenant_name = self._query_param(params, "tenant")
        audit_fields["tenant"] = tenant_name
        with self.server.tenants.lease(tenant_name) as tenant:
            store = tenant.store
            tenant.service.flush()
            if not store.snapshot_shippable or store.delta_log_length > 0:
                tenant.service.snapshot()
            document = store.snapshot_path.read_text()
            state = store.replication_state()
        directive = faults.inject("repl.ship.snapshot", tenant=tenant_name)
        if directive is not None and directive.action == "torn":
            document = document[: max(1, len(document) // 2)]
            self.server._kill_after_response = True
        return 200, {
            "tenant": tenant_name,
            "document": document,
            "seq": state["snapshot_sequence"],
            "epoch": state["epoch"],
            "lineage": state["lineage"],
        }

    def _replication_status(self) -> tuple[int, dict]:
        server = self.server
        return 200, {
            "replication": server.replication.status(),
            "stores": {
                name: store.replication_state()
                for name, store in server.tenants.resident_stores()
            },
        }

    def _fence(self, payload: object, audit_fields: dict) -> tuple[int, dict]:
        request = protocol.parse_fence(payload)
        epoch = self.server.replication.fence(request.epoch, request.lineage)
        # Stamp resident stores too so even in-process flushes (auto-train,
        # shutdown snapshots) carry the new epoch from here on.
        for _, store in self.server.tenants.resident_stores():
            store.adopt_epoch(epoch.number, epoch.lineage)
        return 200, {
            "fenced": True,
            "epoch": epoch.number,
            "lineage": epoch.lineage,
        }

    def _promote(self, payload: object, audit_fields: dict) -> tuple[int, dict]:
        protocol.parse_promote(payload)
        status = self.server.replication.promote()
        return 200, {
            "promoted": self.server.replication.is_leader,
            "replication": status,
        }

    # ----------------------------------------------------------------- plumbing

    def _read_json(self) -> object:
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            self.close_connection = True  # unread body would desync keep-alive
            raise protocol.bad_request("missing Content-Length")
        try:
            length = int(length_header)
        except ValueError:
            self.close_connection = True
            raise protocol.bad_request("bad Content-Length") from None
        if length < 0 or length > protocol.MAX_BODY_BYTES:
            self.close_connection = True
            raise protocol.bad_request(
                f"body of {length} bytes exceeds {protocol.MAX_BODY_BYTES}"
            )
        body = self.rfile.read(length)
        try:
            return json.loads(body)
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise protocol.bad_request(f"body is not valid JSON: {error}") from None

    def _respond(
        self,
        status: int,
        payload: dict | str,
        retry_after_s: float | None = None,
        request_id: str | None = None,
    ) -> None:
        if isinstance(payload, str):
            # Pre-rendered text body (the Prometheus exposition).
            body = payload.encode()
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload).encode()
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if request_id is not None:
            self.send_header("X-Request-Id", request_id)
        if status == 429:
            hint = retry_after_s if retry_after_s is not None else 1
            self.send_header("Retry-After", f"{hint:g}")
        self.end_headers()
        self.wfile.write(body)
