"""The HTTP/JSON front door: a stdlib ``ThreadingHTTPServer`` over tenants.

No third-party web framework -- the whole network layer is the standard
library, so the front door deploys anywhere the engine does.  Endpoints
(all under ``/v1``, JSON request/response):

=======  ========================  ==========================================
method   path                      purpose
=======  ========================  ==========================================
POST     ``/v1/ask``               answer one SQL request within its budget
                                   (``explain: true`` returns the planner's
                                   decision record without executing;
                                   ``trace: true`` attaches the span tree)
POST     ``/v1/feedback/append``   append rows to a tenant fact table
POST     ``/v1/feedback/record``   full-scan a query and record its snippets
GET      ``/v1/metrics``           server-wide (or ``?tenant=`` scoped)
                                   stats; ``?format=prometheus`` renders the
                                   text exposition instead of JSON
GET      ``/v1/trace/<id>``        finished span tree of one request id
POST     ``/v1/admin/train``       run the offline step (sync or background)
POST     ``/v1/admin/snapshot``    force a durable full snapshot
POST     ``/v1/admin/tenants``     create a tenant
GET      ``/v1/admin/tenants``     list tenants
GET      ``/v1/healthz``           liveness probe
=======  ========================  ==========================================

Every request is stamped with a request id -- adopted from a valid
``X-Request-Id`` header or minted -- echoed in the response header and
payload, recorded on the audit line, and (with a tracer) keying the
request's span tree in the trace ring and JSONL trace log.

Execution model: connection-handler threads run the query themselves (the
per-tenant service's worker pool is for in-process ``submit()`` callers),
gated by one shared :class:`~repro.serve.http.admission.AdmissionController`
so a burst cannot run unbounded engine work -- beyond ``max_active``
concurrent requests and ``max_queued`` waiters, requests are shed with 429.
``ask`` and both ``feedback`` endpoints pay admission; metrics, admin, and
health do not (operators must be able to look at a saturated server).

Shutdown (:meth:`VerdictHTTPServer.close`) is ordered: stop admitting
(queued waiters fail fast with 503, admitted requests finish), drain, stop
the accept loop, close every tenant (each writes its final snapshot), close
the audit log.  In-flight requests therefore always terminate with a real
response -- 200 if admitted before the close, 503 otherwise.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import ExitStack
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro import faults
from repro.obs.metrics import MetricFamily, merge_families, render_prometheus
from repro.obs.trace import (
    Tracer,
    current_trace,
    mint_request_id,
    span as trace_span,
    valid_request_id,
)
from repro.serve.http import protocol
from repro.serve.http.admission import AdmissionController
from repro.serve.http.audit import AuditLog
from repro.serve.http.protocol import ApiError
from repro.serve.http.tenants import TenantManager
from repro.sqlparser.parser import parse_query


def _check_tables(catalog, parsed) -> None:
    """404 for any table the SQL names that the tenant's catalog lacks."""
    for name in (parsed.table, *(join.table for join in parsed.joins)):
        if not catalog.has_table(name):
            raise ApiError(404, "unknown_table", f"unknown table {name!r}")


class VerdictHTTPServer(ThreadingHTTPServer):
    """Multi-tenant HTTP front door over per-tenant Verdict services."""

    daemon_threads = True
    allow_reuse_address = True
    # Burst admission is the AdmissionController's job, not the kernel's:
    # the listen backlog must absorb a whole client fleet connecting at
    # once (the default of 5 turns client 6+ into 1s SYN retransmits).
    request_queue_size = 128

    def __init__(
        self,
        address: tuple[str, int],
        tenants: TenantManager,
        max_active: int = 4,
        max_queued: int = 16,
        queue_timeout_s: float | None = 5.0,
        audit: AuditLog | None = None,
        tracer: Tracer | None = None,
    ):
        super().__init__(address, _Handler)
        self.tenants = tenants
        self.admission = AdmissionController(
            max_active=max_active,
            max_queued=max_queued,
            queue_timeout_s=queue_timeout_s,
        )
        self.audit = audit
        # Every request gets a request id regardless; the tracer decides
        # whether a span tree is recorded against it.
        self.tracer = tracer
        self.started_ts = time.time()
        self._serve_thread: threading.Thread | None = None
        self._close_lock = threading.Lock()
        self._closed = False

    # ---------------------------------------------------------------- control

    def start(self) -> "VerdictHTTPServer":
        """Run the accept loop on a background thread; returns ``self``."""
        self._serve_thread = threading.Thread(
            target=self.serve_forever, name="verdict-http", daemon=True
        )
        self._serve_thread.start()
        return self

    @property
    def port(self) -> int:
        return self.server_address[1]

    def close(self) -> None:
        """Ordered graceful shutdown; idempotent and thread-safe."""
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
            # 1. Stop admitting: queued waiters get 503, admitted finish.
            self.admission.close()
            # 2. Drain admitted requests so no engine work is in flight.
            self.admission.wait_idle(timeout_s=60.0)
            # 3. Stop the accept loop and release the listening socket.
            self.shutdown()
            self.server_close()
            if self._serve_thread is not None:
                self._serve_thread.join(timeout=10.0)
            # 4. Close tenants last: every service writes its final
            #    snapshot with zero requests in flight anywhere.
            self.tenants.close()
            if self.audit is not None:
                self.audit.close()
            if self.tracer is not None:
                self.tracer.close()

    def __enter__(self) -> "VerdictHTTPServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _Handler(BaseHTTPRequestHandler):
    """Routes one connection's requests; see the module docstring."""

    protocol_version = "HTTP/1.1"
    # Idle keep-alive connections die on their own rather than pinning
    # handler threads forever.
    timeout = 60.0
    # The response goes out as two writes (header block, then body) on an
    # unbuffered socket; with Nagle on, the body write stalls behind the
    # peer's delayed ACK (~40ms per request on localhost).
    disable_nagle_algorithm = True
    server: VerdictHTTPServer

    # Silence the default stderr access log; the audit log is the record.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    # ---------------------------------------------------------------- routing

    def _dispatch(self, method: str) -> None:
        started = time.perf_counter()
        url = urlparse(self.path)
        # Every request carries a request id end to end: adopted from a
        # valid X-Request-Id header, minted otherwise.  It is echoed in the
        # response header and payload, stamped on the audit record, and
        # keys the trace in the ring/trace log.
        offered = self.headers.get("X-Request-Id") or ""
        request_id = offered if valid_request_id(offered) else mint_request_id()
        audit_fields: dict = {}
        tracer = self.server.tracer
        if tracer is None:
            status, payload, retry_after = self._handle(method, url, audit_fields)
        else:
            with tracer.request(request_id, name=f"{method} {url.path}") as root:
                status, payload, retry_after = self._handle(
                    method, url, audit_fields
                )
                root.set(status=status)
                if "error" in audit_fields:
                    root.set(error_code=audit_fields["error"])
        if isinstance(payload, dict):
            payload = {**payload, "request_id": request_id}
        latency = time.perf_counter() - started
        try:
            self._respond(
                status, payload, retry_after_s=retry_after, request_id=request_id
            )
        except (BrokenPipeError, ConnectionResetError):
            audit_fields["client_gone"] = True
        if self.server.audit is not None:
            self.server.audit.record(
                endpoint=f"{method} {url.path}",
                status=status,
                latency_s=latency,
                request_id=request_id,
                **audit_fields,
            )

    def _handle(
        self, method: str, url, audit_fields: dict
    ) -> tuple[int, dict | str, float | None]:
        """Route one request, mapping every failure to a typed response."""
        try:
            faults.inject("http.handler", method=method, path=url.path)
            status, payload = self._route(method, url.path, url.query, audit_fields)
            return status, payload, None
        except ApiError as error:
            audit_fields["error"] = error.code
            return error.status, error.body(), error.retry_after_s
        except Exception as error:  # engine failures -> typed mapping
            mapped = protocol.map_exception(error)
            audit_fields["error"] = mapped.code
            return mapped.status, mapped.body(), mapped.retry_after_s

    def _route(
        self, method: str, path: str, query: str, audit_fields: dict
    ) -> tuple[int, dict]:
        if method == "POST" and path == "/v1/ask":
            return self._ask(self._read_json(), audit_fields)
        if method == "POST" and path == "/v1/feedback/append":
            return self._append(self._read_json(), audit_fields)
        if method == "POST" and path == "/v1/feedback/record":
            return self._record(self._read_json(), audit_fields)
        if method == "GET" and path == "/v1/metrics":
            params = parse_qs(query)
            tenant = params.get("tenant", [None])[0]
            audit_fields["tenant"] = tenant
            return self._metrics(tenant, params.get("format", [None])[0])
        if method == "GET" and path.startswith("/v1/trace/"):
            return self._trace(path[len("/v1/trace/"):])
        if method == "POST" and path == "/v1/admin/train":
            return self._train(self._read_json(), audit_fields)
        if method == "POST" and path == "/v1/admin/snapshot":
            return self._snapshot(self._read_json(), audit_fields)
        if method == "POST" and path == "/v1/admin/tenants":
            return self._create_tenant(self._read_json(), audit_fields)
        if method == "GET" and path == "/v1/admin/tenants":
            return 200, {"tenants": self.server.tenants.list_tenants()}
        if method == "GET" and path == "/v1/healthz":
            return self._healthz()
        raise protocol.unknown_route(method, path)

    def _healthz(self) -> tuple[int, dict]:
        """Aggregate health: the server itself plus every resident tenant.

        Always 200 (the process is alive and answering); the *status* field
        says how well: ``ok``, ``degraded`` (some tenant has an open
        breaker, a quarantined store, or a dead trainer -- the per-tenant
        reasons say which), or ``draining`` during shutdown.
        """
        server = self.server
        tenants = server.tenants.resident_health()
        reasons = [
            f"tenant {name}: {reason}"
            for name, health in sorted(tenants.items())
            for reason in health["reasons"]
        ]
        if server.admission.closed:
            status = "draining"
        elif reasons:
            status = "degraded"
        else:
            status = "ok"
        return 200, {
            "status": status,
            "reasons": reasons,
            "tenants": tenants,
            "uptime_s": time.time() - server.started_ts,
        }

    # -------------------------------------------------------------- endpoints

    def _ask(self, payload: object, audit_fields: dict) -> tuple[int, dict]:
        request = protocol.parse_ask(payload)
        audit_fields["tenant"] = request.tenant
        # Client-fault errors (bad SQL, unknown table) must not reach the
        # routing layer, where they would surface as opaque 500s.
        parsed = parse_query(request.sql)
        if request.explain:
            # EXPLAIN never executes (no scan, no engine work), so like
            # metrics and health it bypasses admission: the plan must be
            # inspectable on a saturated server.
            with self.server.tenants.lease(request.tenant) as tenant:
                _check_tables(tenant.service.catalog, parsed)
                plan = tenant.service.explain(request.sql, budget=request.budget)
            audit_fields["explain"] = True
            return 200, {"tenant": request.tenant, "explain": plan}
        with ExitStack() as stack:
            # The admission span covers only the wait for a slot (its
            # outcome/queue-wait attrs are set inside the controller); the
            # slot itself is held for the whole execution.
            with trace_span("admission"):
                stack.enter_context(self.server.admission.admit())
            with self.server.tenants.lease(request.tenant) as tenant:
                _check_tables(tenant.service.catalog, parsed)
                answer = tenant.service.query(
                    request.sql, budget=request.budget, record=request.record
                )
        state = protocol.answer_to_state(answer)
        audit_fields["route"] = state["route"]
        audit_fields["error_bound"] = state["relative_error_bound"]
        response = {"tenant": request.tenant, "answer": state}
        if request.trace:
            # The root span is still open (it closes in _dispatch after the
            # response is rendered), so the attached tree reports the wall
            # time accumulated so far; the ring holds the finished version.
            root = current_trace()
            response["trace"] = None if root is None else root.to_dict()
        return 200, response

    def _append(self, payload: object, audit_fields: dict) -> tuple[int, dict]:
        from repro.db.table import Table

        request = protocol.parse_append(payload)
        audit_fields["tenant"] = request.tenant
        with ExitStack() as stack:
            with trace_span("admission"):
                stack.enter_context(self.server.admission.admit())
            with self.server.tenants.lease(request.tenant) as tenant:
                catalog = tenant.service.catalog
                if not catalog.has_table(request.table):
                    raise ApiError(
                        404, "unknown_table", f"unknown table {request.table!r}"
                    )
                schema = catalog.table(request.table).schema
                appended = Table(request.table, schema, request.rows)
                adjusted = tenant.service.append(
                    request.table, appended, adjust=request.adjust
                )
        audit_fields["rows"] = len(appended)
        return 200, {
            "tenant": request.tenant,
            "table": request.table,
            "appended_rows": len(appended),
            "snippets_adjusted": adjusted,
        }

    def _record(self, payload: object, audit_fields: dict) -> tuple[int, dict]:
        request = protocol.parse_record(payload)
        audit_fields["tenant"] = request.tenant
        # Parse errors are the client's fault and must not burn a full
        # sample scan: surface them before admission.
        parsed = parse_query(request.sql)
        with ExitStack() as stack:
            with trace_span("admission"):
                stack.enter_context(self.server.admission.admit())
            with self.server.tenants.lease(request.tenant) as tenant:
                _check_tables(tenant.service.catalog, parsed)
                recorded = tenant.service.record_answer(request.sql)
        return 200, {"tenant": request.tenant, "recorded": recorded}

    def _metrics(
        self, tenant_name: str | None, format: str | None = None
    ) -> tuple[int, dict | str]:
        server = self.server
        if format is not None and format != "prometheus":
            raise protocol.bad_request(f"unknown metrics format {format!r}")
        if format == "prometheus":
            return 200, self._prometheus(tenant_name)
        if tenant_name is None:
            state = {
                "uptime_s": time.time() - server.started_ts,
                "admission": server.admission.snapshot(),
                "tenants": server.tenants.stats(),
                "audit_entries": (
                    server.audit.entries_written if server.audit else 0
                ),
            }
            if server.tracer is not None:
                state["tracer"] = server.tracer.stats()
            return 200, state
        with server.tenants.lease(tenant_name) as tenant:
            service = tenant.service
            return 200, {
                "tenant": tenant_name,
                "restored": service.restored,
                "cache_size": service.cache_size(),
                "lifecycle_phase": service.lifecycle_phase,
                # Metrics plus robustness state: per-route breakers, the
                # background trainer, and the store's recovery counters.
                "metrics": service.observability(),
            }

    def _prometheus(self, tenant_name: str | None) -> str:
        """Prometheus text exposition: server-wide or one tenant's families.

        The server-wide view unifies the admission controller, the tracer,
        the audit log, and every *resident* tenant's service families
        (route counters/histograms, breakers, trainer, store, cache) under
        ``tenant`` labels.  Evicted tenants are deliberately not loaded: a
        metrics scrape must stay cheap and side-effect-free.
        """
        server = self.server
        if tenant_name is not None:
            with server.tenants.lease(tenant_name) as tenant:
                return render_prometheus(
                    merge_families(
                        tenant.service.metric_families({"tenant": tenant_name})
                    )
                )
        families = [
            MetricFamily(
                "verdict_uptime_seconds", "gauge", "Seconds since server start."
            ).add({}, time.time() - server.started_ts)
        ]
        families += server.admission.metric_families()
        if server.audit is not None:
            families.append(
                MetricFamily(
                    "verdict_audit_entries_total",
                    "counter",
                    "Audit-log records written this session.",
                ).add({}, server.audit.entries_written)
            )
        if server.tracer is not None:
            stats = server.tracer.stats()
            families.append(
                MetricFamily(
                    "verdict_traces_finished_total",
                    "counter",
                    "Request traces finished (ring + logs).",
                ).add({}, stats["finished"])
            )
            families.append(
                MetricFamily(
                    "verdict_slow_queries_total",
                    "counter",
                    "Traces exceeding the slow-query threshold.",
                ).add({}, stats["slow_queries"])
            )
        for name in server.tenants.stats()["loaded_tenants"]:
            try:
                with server.tenants.lease(name) as tenant:
                    families += tenant.service.metric_families({"tenant": name})
            except ApiError:
                continue  # evicted or deleted between the snapshot and lease
        return render_prometheus(merge_families(families))

    def _trace(self, request_id: str) -> tuple[int, dict]:
        tracer = self.server.tracer
        if tracer is None:
            raise ApiError(
                404, "tracing_disabled", "the server runs without a tracer"
            )
        trace = tracer.get(request_id)
        if trace is None:
            raise ApiError(
                404,
                "unknown_trace",
                f"no trace for request {request_id!r} (expired from the "
                f"ring, or the id was never served)",
            )
        return 200, {"trace": trace}

    def _train(self, payload: object, audit_fields: dict) -> tuple[int, dict]:
        request = protocol.parse_train(payload)
        audit_fields["tenant"] = request.tenant
        with self.server.tenants.lease(request.tenant) as tenant:
            if request.wait:
                tenant.service.train(request.learn)
                return 200, {"tenant": request.tenant, "trained": True}
            tenant.service.train_async(request.learn)
            return 200, {"tenant": request.tenant, "scheduled": True}

    def _snapshot(self, payload: object, audit_fields: dict) -> tuple[int, dict]:
        request = protocol.parse_tenant_only(payload)
        audit_fields["tenant"] = request.tenant
        with self.server.tenants.lease(request.tenant) as tenant:
            outcome = tenant.service.snapshot()
        return 200, {"tenant": request.tenant, "snapshot": outcome}

    def _create_tenant(self, payload: object, audit_fields: dict) -> tuple[int, dict]:
        request = protocol.parse_tenant_only(payload)
        audit_fields["tenant"] = request.tenant
        record = self.server.tenants.create(request.tenant)
        return 201, record

    # ----------------------------------------------------------------- plumbing

    def _read_json(self) -> object:
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            self.close_connection = True  # unread body would desync keep-alive
            raise protocol.bad_request("missing Content-Length")
        try:
            length = int(length_header)
        except ValueError:
            self.close_connection = True
            raise protocol.bad_request("bad Content-Length") from None
        if length < 0 or length > protocol.MAX_BODY_BYTES:
            self.close_connection = True
            raise protocol.bad_request(
                f"body of {length} bytes exceeds {protocol.MAX_BODY_BYTES}"
            )
        body = self.rfile.read(length)
        try:
            return json.loads(body)
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise protocol.bad_request(f"body is not valid JSON: {error}") from None

    def _respond(
        self,
        status: int,
        payload: dict | str,
        retry_after_s: float | None = None,
        request_id: str | None = None,
    ) -> None:
        if isinstance(payload, str):
            # Pre-rendered text body (the Prometheus exposition).
            body = payload.encode()
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload).encode()
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if request_id is not None:
            self.send_header("X-Request-Id", request_id)
        if status == 429:
            hint = retry_after_s if retry_after_s is not None else 1
            self.send_header("Retry-After", f"{hint:g}")
        self.end_headers()
        self.wfile.write(body)
