"""Bounded admission control with shed-load backpressure.

The HTTP front door executes queries on its connection-handler threads, so
without a gate an unbounded burst of clients would run an unbounded number
of engine queries at once.  :class:`AdmissionController` is that gate:

* at most ``max_active`` requests execute concurrently;
* at most ``max_queued`` further requests wait in line (FIFO by condition
  wakeup) -- the *bounded admission queue*;
* a request arriving with the queue full, or one whose wait exceeds
  ``queue_timeout_s``, is **shed** immediately (:class:`ShedLoad`, mapped to
  HTTP 429) rather than piling latency onto everyone else;
* once :meth:`close` is called, new arrivals and queued waiters all fail
  with :class:`ShuttingDown` (HTTP 503) while already-admitted requests run
  to completion -- the clean-shutdown half of the backpressure contract.

Every request therefore gets **exactly one** terminal outcome: admitted
(then completes), shed, or rejected-closed.  The hypothesis property test
in ``tests/serve/http/test_backpressure.py`` drives randomized burst
schedules against exactly these invariants.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

from repro.errors import ReproError
from repro.obs.metrics import MetricFamily
from repro.obs.trace import set_attrs
from repro.serve.metrics import LatencyHistogram


class ShedLoad(ReproError):
    """The admission queue is full (or the wait timed out): retry later.

    ``retry_after_s`` is the controller's backoff hint -- how long a client
    should wait before retrying, sized to the queue drain time.  The HTTP
    layer forwards it as the 429 response's ``Retry-After`` header.

    ``quota``, set on tenant-level sheds from the resource governor, is the
    tenant's live quota state (remaining tokens, refill wait, concurrency)
    -- it rides into the 429 body so clients can size their backoff to the
    *actual* bucket refill instead of the global queue horizon.
    """

    def __init__(
        self, message: str, retry_after_s: float = 1.0, quota: dict | None = None
    ):
        super().__init__(message)
        self.retry_after_s = retry_after_s
        self.quota = quota


class ShuttingDown(ReproError):
    """The server is draining and accepts no new work."""


class AdmissionController:
    """Counting gate: bounded concurrency, bounded queue, shed beyond both."""

    def __init__(
        self,
        max_active: int,
        max_queued: int,
        queue_timeout_s: float | None = 5.0,
    ):
        if max_active <= 0:
            raise ValueError("max_active must be positive")
        if max_queued < 0:
            raise ValueError("max_queued must be non-negative")
        if queue_timeout_s is not None and queue_timeout_s <= 0:
            raise ValueError("queue_timeout_s must be positive")
        self.max_active = max_active
        self.max_queued = max_queued
        self.queue_timeout_s = queue_timeout_s
        # Two conditions over one lock: ``_slots`` wakes exactly ONE queued
        # waiter per freed slot (a notify_all here is a thundering herd --
        # with N queued handler threads every completion would wake all N),
        # ``_idle`` wakes the drain waiters when the last active leaves.
        self._lock = threading.Lock()
        self._slots = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._active = 0
        self._queued = 0
        self._closed = False
        # Monotonic outcome counters (every arrival lands in exactly one of
        # admitted / shed / rejected_closed; completed trails admitted).
        self.admitted = 0
        self.shed = 0
        self.rejected_closed = 0
        self.completed = 0
        self.peak_active = 0
        self.peak_queued = 0
        # Outcome breakdown: admitted splits into immediate vs after-queueing,
        # shed splits into queue-full vs wait-timeout.  The coarse counters
        # above stay authoritative (breakdowns sum to them).
        self.admitted_immediate = 0
        self.admitted_queued = 0
        self.shed_queue_full = 0
        self.shed_timeout = 0
        # Time admitted-after-queueing requests spent waiting for a slot.
        self._queue_wait = LatencyHistogram()

    # ------------------------------------------------------------------ public

    @contextmanager
    def admit(self) -> Iterator[None]:
        """Hold one execution slot; blocks in the bounded queue if needed.

        Raises :class:`ShedLoad` when the queue is full or the wait times
        out, :class:`ShuttingDown` when the controller is closed before a
        slot frees up.
        """
        self._acquire()
        try:
            yield
        finally:
            self._release()

    def close(self) -> None:
        """Stop admitting: queued waiters fail fast, active requests finish."""
        with self._lock:
            self._closed = True
            self._slots.notify_all()
            self._idle.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    def wait_idle(self, timeout_s: float | None = None) -> bool:
        """Block until no admitted request is still executing."""
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        with self._lock:
            while self._active:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(remaining)
            return True

    def snapshot(self) -> dict:
        """Counters and gauges for the metrics endpoint."""
        with self._lock:
            return {
                "max_active": self.max_active,
                "max_queued": self.max_queued,
                "active": self._active,
                "queued": self._queued,
                "admitted": self.admitted,
                "admitted_immediate": self.admitted_immediate,
                "admitted_queued": self.admitted_queued,
                "completed": self.completed,
                "shed": self.shed,
                "shed_queue_full": self.shed_queue_full,
                "shed_timeout": self.shed_timeout,
                "rejected_closed": self.rejected_closed,
                "peak_active": self.peak_active,
                "peak_queued": self.peak_queued,
                "queue_wait": self._queue_wait.as_dict(),
                "retry_after_s": self._retry_after_locked(),
                "closed": self._closed,
            }

    def metric_families(self, labels: dict | None = None) -> list[MetricFamily]:
        """Admission counters as typed families for Prometheus exposition."""
        base = dict(labels or {})
        outcomes = MetricFamily(
            "verdict_admission_outcomes_total",
            "counter",
            "Request admission outcomes (every arrival lands in exactly one).",
        )
        gauges = [
            ("verdict_admission_active", "Requests currently executing."),
            ("verdict_admission_queued", "Requests currently waiting in queue."),
        ]
        with self._lock:
            for outcome, count in (
                ("admitted_immediate", self.admitted_immediate),
                ("admitted_queued", self.admitted_queued),
                ("shed_queue_full", self.shed_queue_full),
                ("shed_timeout", self.shed_timeout),
                ("rejected_closed", self.rejected_closed),
            ):
                outcomes.add(base | {"outcome": outcome}, count)
            active = MetricFamily(
                gauges[0][0], "gauge", gauges[0][1]
            ).add(base, self._active)
            queued = MetricFamily(
                gauges[1][0], "gauge", gauges[1][1]
            ).add(base, self._queued)
            wait = MetricFamily(
                "verdict_admission_queue_wait_seconds",
                "histogram",
                "Queue wait of requests admitted after queueing.",
            ).add_histogram(
                base,
                self._queue_wait.buckets,
                list(self._queue_wait.bucket_counts),
                self._queue_wait.total_seconds,
                self._queue_wait.count,
            )
        return [outcomes, active, queued, wait]

    # ----------------------------------------------------------------- private

    def _acquire(self) -> None:
        with self._lock:
            if self._closed:
                self.rejected_closed += 1
                set_attrs(admission="rejected_closed")
                raise ShuttingDown("admission closed: server is shutting down")
            if self._active < self.max_active:
                self._admit_locked()
                self.admitted_immediate += 1
                set_attrs(admission="admitted")
                return
            if self._queued >= self.max_queued:
                self.shed += 1
                self.shed_queue_full += 1
                retry_after = self._retry_after_locked()
                set_attrs(admission="shed_queue_full", retry_after_s=retry_after)
                raise ShedLoad(
                    f"admission queue full ({self._queued}/{self.max_queued} "
                    f"queued, {self._active} active)",
                    retry_after_s=retry_after,
                )
            self._queued += 1
            self.peak_queued = max(self.peak_queued, self._queued)
            wait_started = time.monotonic()
            deadline = (
                None
                if self.queue_timeout_s is None
                else wait_started + self.queue_timeout_s
            )
            try:
                while True:
                    if self._closed:
                        self.rejected_closed += 1
                        set_attrs(admission="rejected_closed")
                        raise ShuttingDown(
                            "admission closed while queued: server is shutting down"
                        )
                    if self._active < self.max_active:
                        self._admit_locked()
                        self.admitted_queued += 1
                        waited = time.monotonic() - wait_started
                        self._queue_wait.observe(waited)
                        set_attrs(admission="admitted_after_queue", queue_wait_s=waited)
                        return
                    remaining = (
                        None if deadline is None else deadline - time.monotonic()
                    )
                    if remaining is not None and remaining <= 0:
                        self.shed += 1
                        self.shed_timeout += 1
                        retry_after = self._retry_after_locked()
                        set_attrs(admission="shed_timeout", retry_after_s=retry_after)
                        raise ShedLoad(
                            f"gave up after queueing {self.queue_timeout_s:g}s",
                            retry_after_s=retry_after,
                        )
                    self._slots.wait(remaining)
            except BaseException:
                # This waiter may have consumed a one-shot slot notification
                # it is now declining (timeout, shutdown): pass it on so the
                # free slot cannot strand the remaining sleepers.
                self._slots.notify(1)
                raise
            finally:
                self._queued -= 1

    def _retry_after_locked(self) -> float:
        """Deterministic backoff hint for a shed request, in seconds.

        A shed means the queue (plus every active slot) is saturated; the
        honest hint is the configured queue-drain horizon -- a client
        retrying sooner would rejoin the same full queue.  Clamped to
        [1, 30] so a generous ``queue_timeout_s`` never tells clients to
        disappear for minutes.
        """
        horizon = self.queue_timeout_s if self.queue_timeout_s is not None else 1.0
        return min(max(horizon, 1.0), 30.0)

    def _admit_locked(self) -> None:
        self._active += 1
        self.admitted += 1
        self.peak_active = max(self.peak_active, self._active)

    def _release(self) -> None:
        with self._lock:
            self._active -= 1
            self.completed += 1
            # One freed slot wakes exactly one queued waiter.
            self._slots.notify(1)
            if self._active == 0:
                self._idle.notify_all()
