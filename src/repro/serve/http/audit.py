"""Per-session JSONL audit log for the HTTP front door.

Every served request appends exactly one JSON line recording who asked for
what, which route answered it, how long it took, and how it terminated --
the durable trace an operator greps when a tenant disputes an answer.  One
file per server session (named after the session id), append-only, so logs
from successive restarts never interleave::

    <root>/audit/<session-id>.jsonl

Record fields: ``ts`` (unix seconds), ``seq`` (per-session sequence
number), ``session``, ``endpoint``, ``tenant``, ``status`` (HTTP),
``latency_s`` (server-side wall clock), plus per-endpoint extras --
``route`` and ``error_bound`` for answered asks, ``error`` (the machine
code) for failures.

Writes are serialized by a lock and flushed per record (no fsync: the audit
log is an operational trace, not the durability story -- that is the
synopsis store's job).
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path


class AuditLog:
    """Append-only JSONL request log, one file per server session."""

    def __init__(self, path: str | os.PathLike[str], session_id: str):
        self.path = Path(path)
        self.session_id = session_id
        self.entries_written = 0
        self._lock = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")

    @classmethod
    def open_session(cls, directory: str | os.PathLike[str]) -> "AuditLog":
        """Open a fresh log file named after a new unique session id."""
        session_id = f"serve-{time.strftime('%Y%m%dT%H%M%S')}-{os.getpid()}"
        return cls(Path(directory) / f"{session_id}.jsonl", session_id)

    def record(
        self,
        endpoint: str,
        status: int,
        latency_s: float,
        tenant: str | None = None,
        **extra,
    ) -> None:
        """Append one request record; never raises into the request path."""
        entry = {
            "ts": time.time(),
            "session": self.session_id,
            "endpoint": endpoint,
            "tenant": tenant,
            "status": status,
            "latency_s": latency_s,
        }
        entry.update(extra)
        try:
            with self._lock:
                if self._handle.closed:
                    return
                entry["seq"] = self.entries_written
                self._handle.write(json.dumps(entry, default=str) + "\n")
                self._handle.flush()
                self.entries_written += 1
        except OSError:
            # A full disk must not fail the query that triggered the record.
            pass

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()
