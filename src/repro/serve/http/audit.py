"""Per-session JSONL audit log for the HTTP front door.

Every served request appends exactly one JSON line recording who asked for
what, which route answered it, how long it took, and how it terminated --
the durable trace an operator greps when a tenant disputes an answer.  One
file per server session (named after the session id), append-only, so logs
from successive restarts never interleave::

    <root>/audit/<session-id>.jsonl

Record fields: ``ts`` (unix seconds), ``seq`` (per-session sequence
number), ``session``, ``endpoint``, ``tenant``, ``status`` (HTTP),
``latency_s`` (server-side wall clock), plus per-endpoint extras --
``route`` and ``error_bound`` for answered asks, ``error`` (the machine
code) for failures.

Writes are serialized by a lock and flushed per record (no fsync: the audit
log is an operational trace, not the durability story -- that is the
synopsis store's job).

Rotation: with ``max_bytes`` set, a record that pushes the live file past
the cap triggers a shift rotation (``log.jsonl`` -> ``log.jsonl.1`` ->
``log.jsonl.2`` ...), keeping at most ``retention`` rotated files -- a
long-lived server cannot fill the disk with its own trace.  Rotation
happens between records (never mid-line), so every file in the set stays
valid JSONL.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path


class AuditLog:
    """Append-only JSONL request log, one file per server session.

    Parameters
    ----------
    path, session_id:
        Live log file and the session tag stamped on each record.
    max_bytes:
        Rotate once the live file reaches this size (``None`` = never).
    retention:
        Number of rotated files kept (``.1`` newest .. ``.retention``
        oldest); the oldest is deleted at each rotation.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        session_id: str,
        max_bytes: int | None = None,
        retention: int = 4,
    ):
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive when given")
        if retention < 1:
            raise ValueError("retention must be >= 1")
        self.path = Path(path)
        self.session_id = session_id
        self.entries_written = 0
        self.max_bytes = max_bytes
        self.retention = retention
        self.rotations = 0
        self._lock = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")
        self._bytes = self.path.stat().st_size

    @classmethod
    def open_session(
        cls,
        directory: str | os.PathLike[str],
        max_bytes: int | None = None,
        retention: int = 4,
    ) -> "AuditLog":
        """Open a fresh log file named after a new unique session id."""
        session_id = f"serve-{time.strftime('%Y%m%dT%H%M%S')}-{os.getpid()}"
        return cls(
            Path(directory) / f"{session_id}.jsonl",
            session_id,
            max_bytes=max_bytes,
            retention=retention,
        )

    def record(
        self,
        endpoint: str,
        status: int,
        latency_s: float,
        tenant: str | None = None,
        **extra,
    ) -> None:
        """Append one request record; never raises into the request path."""
        entry = {
            "ts": time.time(),
            "session": self.session_id,
            "endpoint": endpoint,
            "tenant": tenant,
            "status": status,
            "latency_s": latency_s,
        }
        entry.update(extra)
        try:
            with self._lock:
                if self._handle.closed:
                    return
                entry["seq"] = self.entries_written
                line = json.dumps(entry, default=str) + "\n"
                self._handle.write(line)
                self._handle.flush()
                self.entries_written += 1
                self._bytes += len(line.encode("utf-8"))
                if self.max_bytes is not None and self._bytes >= self.max_bytes:
                    self._rotate_locked()
        except OSError:
            # A full disk must not fail the query that triggered the record.
            pass

    def _rotate_locked(self) -> None:
        """Shift the rotation chain and reopen a fresh live file (lock held)."""
        self._handle.close()
        oldest = Path(f"{self.path}.{self.retention}")
        if oldest.exists():
            oldest.unlink()
        for index in range(self.retention - 1, 0, -1):
            source = Path(f"{self.path}.{index}")
            if source.exists():
                os.replace(source, f"{self.path}.{index + 1}")
        os.replace(self.path, f"{self.path}.1")
        self._handle = open(self.path, "a", encoding="utf-8")
        self._bytes = 0
        self.rotations += 1

    def rotated_paths(self) -> list[Path]:
        """Existing rotated files, newest first."""
        return [
            path
            for index in range(1, self.retention + 1)
            if (path := Path(f"{self.path}.{index}")).exists()
        ]

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()
