"""Per-tenant serving state: lazy loading, LRU eviction, durable registry.

The multi-tenant refactor of the serving layer: instead of one process-wide
:class:`~repro.serve.service.VerdictService`, each tenant owns a complete,
isolated serving stack --

* its own :class:`~repro.db.catalog.Catalog` (built by the server's
  ``catalog_factory``, deterministically per tenant name, so a restarted
  server reconstructs identical data);
* its own :class:`~repro.serve.store.SynopsisStore` directory
  (``<root>/tenants/<name>/store``), so learned state never mixes across
  tenants and each restores independently;
* its own answer cache and :class:`~repro.serve.metrics.ServiceMetrics`
  namespace (both live inside the per-tenant service).

Tenants are *registered* durably in ``<root>/tenants.json`` but *loaded*
lazily on first use, and evicted least-recently-used once more than
``max_loaded`` are resident -- eviction closes the tenant's service
gracefully (final snapshot), so a later reload resumes byte-identically.
A tenant with requests in flight (a *lease*) is never evicted; the cap is
soft under pathological concurrency (more simultaneously-leased tenants
than the cap) rather than deadlocking requests.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Iterator

from repro import faults
from repro.db.catalog import Catalog
from repro.serve.http.protocol import (
    TENANT_NAME_RE,
    bad_request,
    shutting_down,
    tenant_exists,
    unknown_tenant,
)
from repro.serve.service import VerdictService
from repro.serve.store import SynopsisStore

REGISTRY_FILE = "tenants.json"
REGISTRY_FORMAT = 1

CatalogFactory = Callable[[str], Catalog]
ServiceFactory = Callable[[Catalog, SynopsisStore], VerdictService]


def _default_service_factory(catalog: Catalog, store: SynopsisStore) -> VerdictService:
    return VerdictService(catalog, store=store)


class Tenant:
    """One resident tenant: its service, store, and lease bookkeeping."""

    def __init__(self, name: str, directory: Path, service: VerdictService):
        self.name = name
        self.directory = directory
        self.service = service
        self.leases = 0

    @property
    def store(self) -> SynopsisStore:
        return self.service.store


class TenantManager:
    """Registry + lazy LRU-bounded loader of per-tenant serving stacks."""

    def __init__(
        self,
        root: str | os.PathLike[str],
        catalog_factory: CatalogFactory,
        service_factory: ServiceFactory | None = None,
        max_loaded: int = 8,
        replication=None,
    ):
        if max_loaded <= 0:
            raise ValueError("max_loaded must be positive")
        self.root = Path(root)
        self.catalog_factory = catalog_factory
        self.service_factory = service_factory or _default_service_factory
        self.max_loaded = max_loaded
        # The node's ReplicationManager, when replicated: stores are built
        # replica (read-only) while the node is a follower, and stamped
        # with the current fencing epoch when it is a leader.
        self.replication = replication
        self.evictions = 0
        self._lock = threading.Lock()
        self._loaded: "OrderedDict[str, Tenant]" = OrderedDict()
        # Tenants mid-eviction: a reload must wait for the final snapshot.
        self._closing: dict[str, threading.Event] = {}
        self._registry: dict[str, dict] = {}
        self._closed = False
        self._load_registry()

    # --------------------------------------------------------------- registry

    @property
    def registry_path(self) -> Path:
        return self.root / REGISTRY_FILE

    def _load_registry(self) -> None:
        if not self.registry_path.is_file():
            return
        payload = json.loads(self.registry_path.read_text())
        self._registry = dict(payload.get("tenants", {}))

    def _save_registry_locked(self) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {"format": REGISTRY_FORMAT, "tenants": self._registry}
        temporary = self.registry_path.with_suffix(".json.tmp")
        with open(temporary, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, indent=2, sort_keys=True))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, self.registry_path)
        # The rename itself lives in the directory entry: without fsyncing
        # the directory a crash can resurrect the old registry (or none),
        # un-creating tenants whose create() was already acknowledged.
        faults.inject("store.dir.fsync", directory=str(self.root))
        try:
            descriptor = os.open(self.root, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(descriptor)
        finally:
            os.close(descriptor)

    def create(self, name: str) -> dict:
        """Register a new tenant durably; 409 if the name is taken."""
        if not TENANT_NAME_RE.match(name):
            raise bad_request(f"invalid tenant name {name!r}")
        with self._lock:
            if name in self._registry:
                raise tenant_exists(name)
            record = {"created_ts": time.time()}
            self._registry[name] = record
            self._save_registry_locked()
            return {"tenant": name, **record}

    def exists(self, name: str) -> bool:
        with self._lock:
            return name in self._registry

    def list_tenants(self) -> list[dict]:
        with self._lock:
            return [
                {
                    "tenant": name,
                    "created_ts": record.get("created_ts"),
                    "loaded": name in self._loaded,
                }
                for name, record in sorted(self._registry.items())
            ]

    def tenant_directory(self, name: str) -> Path:
        return self.root / "tenants" / name

    # ---------------------------------------------------------------- leasing

    @contextmanager
    def lease(self, name: str) -> Iterator[Tenant]:
        """Pin a tenant resident for the duration of one request.

        Loads the tenant on first use (restoring its synopsis store) and
        protects it from LRU eviction while leased.
        """
        tenant = self._acquire(name)
        try:
            yield tenant
        finally:
            self._release(tenant)

    def _acquire(self, name: str) -> Tenant:
        while True:
            closing: threading.Event | None = None
            with self._lock:
                if self._closed:
                    raise shutting_down("tenant manager is closed")
                if name not in self._registry:
                    raise unknown_tenant(name)
                closing = self._closing.get(name)
                if closing is None:
                    tenant = self._loaded.get(name)
                    if tenant is not None:
                        tenant.leases += 1
                        self._loaded.move_to_end(name)
                        return tenant
                    # Not resident: mark it "being opened" via the closing
                    # map so concurrent requests wait instead of double
                    # loading, then build outside the lock.
                    closing = self._closing[name] = threading.Event()
                    break
            # An eviction (or another loader) is in progress: wait it out.
            closing.wait()
        try:
            tenant = self._load(name)
        except BaseException:
            with self._lock:
                self._closing.pop(name).set()
            raise
        with self._lock:
            tenant.leases += 1
            self._loaded[name] = tenant
            self._loaded.move_to_end(name)
            self._closing.pop(name).set()
            victims = self._pick_victims_locked()
        self._evict(victims)
        return tenant

    def _release(self, tenant: Tenant) -> None:
        with self._lock:
            tenant.leases -= 1
            victims = self._pick_victims_locked()
        self._evict(victims)

    def _load(self, name: str) -> Tenant:
        directory = self.tenant_directory(name)
        replica = self.replication is not None and self.replication.is_follower
        store = SynopsisStore(directory / "store", replica=replica)
        if self.replication is not None and self.replication.is_leader:
            # Leader stores stamp the node's fencing epoch on every WAL
            # record from the first write (a promoted node's bumped epoch
            # reaches tenants loaded after the promotion through here).
            epoch = self.replication.epoch
            store.adopt_epoch(epoch.number, epoch.lineage)
        catalog = self.catalog_factory(name)
        service = self.service_factory(catalog, store)
        return Tenant(name, directory, service)

    # --------------------------------------------------------------- eviction

    def _pick_victims_locked(self) -> list[Tenant]:
        victims: list[Tenant] = []
        while len(self._loaded) - len(victims) > self.max_loaded:
            victim = next(
                (
                    tenant
                    for tenant in self._loaded.values()
                    if tenant.leases == 0 and tenant not in victims
                ),
                None,
            )
            if victim is None:
                break  # every candidate is leased: soft cap, no deadlock
            victims.append(victim)
        for victim in victims:
            del self._loaded[victim.name]
            self._closing[victim.name] = threading.Event()
        return victims

    def _evict(self, victims: list[Tenant]) -> None:
        for victim in victims:
            try:
                victim.service.close()  # graceful: final snapshot
            finally:
                with self._lock:
                    self.evictions += 1
                    self._closing.pop(victim.name).set()

    # ---------------------------------------------------------------- metrics

    def stats(self) -> dict:
        with self._lock:
            return {
                "registered": len(self._registry),
                "loaded": len(self._loaded),
                "max_loaded": self.max_loaded,
                "evictions": self.evictions,
                "loaded_tenants": list(self._loaded),
            }

    def resident_health(self) -> dict[str, dict]:
        """Per-tenant :meth:`VerdictService.health` of every *resident* tenant.

        Deliberately does not load evicted tenants: a health probe must stay
        cheap and side-effect-free, and an evicted tenant's last snapshot
        was written cleanly (its close ran) so there is nothing to report.
        """
        with self._lock:
            resident = list(self._loaded.values())
        return {tenant.name: tenant.service.health() for tenant in resident}

    def resident_stores(self) -> list[tuple[str, SynopsisStore]]:
        """``(name, store)`` of every resident tenant (promotion/fencing)."""
        with self._lock:
            return [
                (tenant.name, tenant.store) for tenant in self._loaded.values()
            ]

    # ------------------------------------------------------------------ close

    def close(self) -> None:
        """Close every resident tenant (each writes its final snapshot)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            tenants = list(self._loaded.values())
            self._loaded.clear()
        for tenant in tenants:
            tenant.service.close()
