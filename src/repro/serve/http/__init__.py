"""HTTP front door for the serving layer (stdlib-only, multi-tenant).

* :mod:`repro.serve.http.protocol` -- request schemas, strict validation,
  typed error mapping (400/404/409/429/503), answer serialisation;
* :mod:`repro.serve.http.admission` -- :class:`AdmissionController`, the
  bounded queue with shed-load backpressure in front of the engine;
* :mod:`repro.serve.http.tenants` -- :class:`TenantManager`, per-tenant
  catalog + synopsis store + answer cache + metrics, lazily loaded and
  LRU-evicted;
* :mod:`repro.serve.http.audit` -- per-session JSONL request log;
* :mod:`repro.serve.http.server` -- :class:`VerdictHTTPServer`, the
  ``ThreadingHTTPServer`` routing layer;
* ``python -m repro.serve.http`` -- the CLI entry point.

The matching blocking client lives in :mod:`repro.serve.client`.
"""

from repro.serve.http.admission import AdmissionController, ShedLoad, ShuttingDown
from repro.serve.http.audit import AuditLog
from repro.serve.http.protocol import (
    ApiError,
    answer_fingerprint,
    answer_to_state,
    map_exception,
)
from repro.serve.http.server import VerdictHTTPServer
from repro.serve.http.tenants import Tenant, TenantManager

__all__ = [
    "AdmissionController",
    "ApiError",
    "AuditLog",
    "ShedLoad",
    "ShuttingDown",
    "Tenant",
    "TenantManager",
    "VerdictHTTPServer",
    "answer_fingerprint",
    "answer_to_state",
    "map_exception",
]
