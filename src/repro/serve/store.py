"""Persistent synopsis store: snapshots plus an incremental delta log.

The paper's promise is a database that "becomes smarter every time" -- which
is only meaningful if the learned state survives the process.  The store
persists a :class:`repro.core.engine.VerdictEngine`'s learned state (query
synopsis, learned correlation parameters, prepared covariance factorisations)
to a directory so a restarted service resumes *exactly* as smart as it
stopped.

Layout (all JSON, human-inspectable)::

    <directory>/
        snapshot.json    full engine state (atomic: tmp file + os.replace)
        deltas.jsonl     one record per flush of appended-only changes

Write path
----------
:meth:`SynopsisStore.flush` asks the synopsis for the delta since the last
persisted version (reusing the engine's own ``changes_since`` change log):

* appends only           -> one JSONL record appended to ``deltas.jsonl``;
* anything else dirty    -> full snapshot (evictions, data-append
  adjustments, and re-training all rewrite state a delta cannot express);
* delta log too long     -> full snapshot (*compaction*: the log is folded
  into ``snapshot.json`` and truncated).

Snapshot rotation is atomic -- the new snapshot is written to a temporary
file, fsynced, and ``os.replace``d over the old one, after which the delta
log is truncated (also via replace).  A crash between the two leaves a
snapshot plus a log of records that predate it; replay skips them by
version.

Read path
---------
:meth:`SynopsisStore.load_into` restores the snapshot into an engine and
replays delta records in order.  Logged snippets carry the identities and
LRU sequence numbers originally assigned, so the replayed synopsis converges
to the same ids, versions, and group order as the writer -- and because the
snapshot also carries the synopsis change log, factorisations prepared at an
older version are *extended* (rank-k, same floating-point bits) rather than
rebuilt.  Inference results before and after a reload are byte-identical,
which the property tests in ``tests/serve/test_store.py`` assert.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.core.engine import VerdictEngine
from repro.core.serialize import STATE_FORMAT_VERSION
from repro.core.snippet import Snippet
from repro.errors import StoreError

SNAPSHOT_FILE = "snapshot.json"
DELTA_FILE = "deltas.jsonl"


class SynopsisStore:
    """Durable snapshots + deltas of a Verdict engine's learned state.

    Parameters
    ----------
    directory:
        Directory holding the snapshot and delta-log files (created on first
        write).
    compact_after:
        Number of delta records after which the next flush folds the log
        into a fresh snapshot.
    include_factors:
        Whether snapshots include the prepared covariance factorisations.
        Including them (default) makes restarts byte-exact and avoids an
        O(n^3) re-factorisation on first use, at the cost of larger
        snapshot files (O(n^2) floats per aggregate function).
    """

    def __init__(
        self,
        directory: str | os.PathLike[str],
        compact_after: int = 256,
        include_factors: bool = True,
    ):
        if compact_after <= 0:
            raise StoreError("compact_after must be positive")
        self.directory = Path(directory)
        self.compact_after = compact_after
        self.include_factors = include_factors
        self.snapshots_written = 0
        self.deltas_written = 0
        self._persisted_version: int | None = None
        self._persisted_epoch: int | None = None
        self._delta_records = self._count_delta_records()

    # ------------------------------------------------------------------- paths

    @property
    def snapshot_path(self) -> Path:
        return self.directory / SNAPSHOT_FILE

    @property
    def delta_path(self) -> Path:
        return self.directory / DELTA_FILE

    def exists(self) -> bool:
        """Whether a snapshot is present to restore from."""
        return self.snapshot_path.is_file()

    @property
    def delta_log_length(self) -> int:
        """Number of delta records currently in the log."""
        return self._delta_records

    # -------------------------------------------------------------------- read

    def load_into(self, engine: VerdictEngine) -> bool:
        """Restore the persisted state into ``engine``.

        Returns ``True`` when a snapshot was found and loaded, ``False`` when
        the store is empty (a fresh service).  Raises :class:`StoreError` on
        a corrupt or incompatible snapshot, or on a delta log that does not
        follow on from the snapshot (a version gap).
        """
        if not self.exists():
            return False
        try:
            snapshot = json.loads(self.snapshot_path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise StoreError(f"unreadable snapshot {self.snapshot_path}: {error}") from error
        if snapshot.get("format") != STATE_FORMAT_VERSION:
            raise StoreError(
                f"snapshot format {snapshot.get('format')!r} is not supported "
                f"(expected {STATE_FORMAT_VERSION})"
            )
        engine.load_state_dict(snapshot["engine"])
        self._replay_deltas(engine)
        self._persisted_version = engine.synopsis.version
        self._persisted_epoch = engine.state_epoch
        return True

    def _replay_deltas(self, engine: VerdictEngine) -> None:
        """Apply delta records newer than the restored snapshot, in order."""
        if not self.delta_path.is_file():
            self._delta_records = 0
            return
        records = 0
        valid_lines: list[str] = []
        torn = False
        for line_number, line in enumerate(
            self.delta_path.read_text().splitlines(), start=1
        ):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # A torn final line from a crash mid-append: everything before
                # it replayed fine, so stop here rather than fail the load.
                torn = True
                break
            valid_lines.append(line)
            records += 1
            current = engine.synopsis.version
            if record["version"] <= current:
                continue  # already folded into the snapshot
            if record["base_version"] != current:
                raise StoreError(
                    f"delta log record {line_number} expects synopsis version "
                    f"{record['base_version']} but the restored state is at {current}"
                )
            for snippet_state in record["snippets"]:
                engine.synopsis.restore(Snippet.from_state(snippet_state))
        if torn:
            # Truncate the log to the valid prefix.  Leaving the torn tail in
            # place would make the next flush append onto it, merging two
            # records into one unparsable line and silently losing every
            # later record on the following restart.
            self._atomic_write(
                self.delta_path, "".join(line + "\n" for line in valid_lines)
            )
        self._delta_records = records

    # ------------------------------------------------------------------- write

    def flush(self, engine: VerdictEngine) -> str:
        """Persist everything that changed since the last flush.

        Returns ``"noop"`` (nothing changed), ``"delta"`` (appended-only
        changes went to the delta log), or ``"snapshot"`` (a full snapshot
        was written -- first flush, non-append mutations, training, or
        compaction).
        """
        version = engine.synopsis.version
        epoch = engine.state_epoch
        if self._persisted_version is None or self._persisted_epoch != epoch:
            return self.save_snapshot(engine)
        if version == self._persisted_version:
            return "noop"
        delta = engine.synopsis.changes_since(self._persisted_version)
        if delta is None or delta.dirty:
            return self.save_snapshot(engine)
        if self._delta_records >= self.compact_after:
            return self.save_snapshot(engine)

        appended = [
            snippet for snippets in delta.appended.values() for snippet in snippets
        ]
        # The per-key lists lose the global append order; the LRU sequence
        # numbers assigned at add() time recover it exactly.
        appended.sort(key=lambda snippet: snippet.sequence)
        record = {
            "base_version": self._persisted_version,
            "version": version,
            "snippets": [snippet.to_state() for snippet in appended],
        }
        self.directory.mkdir(parents=True, exist_ok=True)
        with open(self.delta_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._persisted_version = version
        self._delta_records += 1
        self.deltas_written += 1
        return "delta"

    def save_snapshot(self, engine: VerdictEngine) -> str:
        """Write a full snapshot atomically and truncate the delta log."""
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {
            "format": STATE_FORMAT_VERSION,
            "engine": engine.state_dict(include_prepared=self.include_factors),
        }
        self._atomic_write(self.snapshot_path, json.dumps(payload))
        self._atomic_write(self.delta_path, "")
        self._persisted_version = engine.synopsis.version
        self._persisted_epoch = engine.state_epoch
        self._delta_records = 0
        self.snapshots_written += 1
        return "snapshot"

    def compact(self, engine: VerdictEngine) -> str:
        """Fold the delta log into a fresh snapshot immediately."""
        return self.save_snapshot(engine)

    # ----------------------------------------------------------------- helpers

    def _count_delta_records(self) -> int:
        if not self.delta_path.is_file():
            return 0
        return sum(1 for line in self.delta_path.read_text().splitlines() if line.strip())

    @staticmethod
    def _atomic_write(path: Path, text: str) -> None:
        """Write-then-rename so readers never observe a partial file."""
        temporary = path.with_suffix(path.suffix + ".tmp")
        with open(temporary, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, path)
