"""Persistent synopsis store: snapshots plus an incremental delta log.

The paper's promise is a database that "becomes smarter every time" -- which
is only meaningful if the learned state survives the process.  The store
persists a :class:`repro.core.engine.VerdictEngine`'s learned state (query
synopsis, learned correlation parameters, prepared covariance factorisations)
to a directory so a restarted service resumes *exactly* as smart as it
stopped.

Layout (all JSON, human-inspectable)::

    <directory>/
        snapshot.json        full engine state + CRC32 checksum footer
        snapshot.prev.json   the retained previous snapshot generation
        deltas.jsonl         one CRC32-wrapped record per append-only flush
        quarantine/          corrupt files set aside during recovery

Write path
----------
:meth:`SynopsisStore.flush` asks the synopsis for the delta since the last
persisted version (reusing the engine's own ``changes_since`` change log):

* appends only           -> one checksummed JSONL record appended to
  ``deltas.jsonl``;
* anything else dirty    -> full snapshot (evictions, data-append
  adjustments, and re-training all rewrite state a delta cannot express);
* delta log too long     -> full snapshot (*compaction*: the log is folded
  into ``snapshot.json`` and truncated).

Snapshot rotation is atomic and *generational*: the new snapshot is written
to a temporary file and fsynced, the current ``snapshot.json`` is retained
as ``snapshot.prev.json``, the temporary file is ``os.replace``d in, and
only then is the delta log truncated.  A crash between any two steps leaves
a combination the read path recovers from (see below); the fault points
named ``store.*`` (:mod:`repro.faults`) let the crash-matrix tests kill the
process at every one of these steps.

Read path & failure model
-------------------------
:meth:`SynopsisStore.load_into` restores the best available snapshot into
an engine and replays delta records in order.  Every record and both
snapshot generations are checksummed, so recovery distinguishes and handles
each corruption mode instead of crash-looping:

* **torn delta tail** (crash mid-append): the log is truncated to the
  longest valid prefix of records and rewritten, replay continues;
* **corrupt delta record** (bad CRC, version gap): same truncation -- a
  record is applied fully or not at all, and nothing after a bad record is
  trusted;
* **corrupt current snapshot**: the file is moved to ``quarantine/`` and
  the retained previous generation is restored instead (stale deltas are
  skipped by version; newer-than-snapshot deltas whose base does not match
  are truncated);
* **both generations corrupt/unreadable**: everything is quarantined and
  the store reports "empty" -- the service starts fresh (degraded, visible
  in ``/v1/healthz``) rather than refusing to start.

Recovery is idempotent: loading, killing, and loading again reaches the
same state (the property and crash-matrix tests assert byte-identical
replayed answers).  All recovery events are counted in
:attr:`SynopsisStore.counters` and surfaced through the service metrics.

Replication envelope
--------------------
Every delta record additionally carries a monotonic shipping sequence
number (``seq``) and the store's fencing epoch (``epoch`` + a random
``lineage`` token minted at each promotion), and snapshots carry a
``replication`` block ``{seq, epoch, lineage}``.  The leader side of
:mod:`repro.serve.replication` ships these verbatim (:meth:`delta_tail`);
the follower side applies them verbatim (:meth:`ship_append`,
:meth:`install_shipped_snapshot`) so replicated state is byte-identical by
construction.  The fencing epoch is persisted in an ``epoch.json`` sidecar
(and inside every snapshot): a record stamped with an older epoch -- or an
equal epoch from a *different* lineage, the consensus-free split-brain
signature -- is rejected with a typed
:class:`~repro.errors.EpochFencedError` instead of silently diverging.
A store opened with ``replica=True`` refuses local WAL writes (its log is
written only by the shipping path) and its snapshots do not advance the
sequence -- they merely persist what was shipped.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro import faults
from repro.core.engine import VerdictEngine
from repro.core.serialize import (
    STATE_FORMAT_VERSION,
    decode_checked_record,
    decode_snapshot_document,
    encode_checked_record,
    encode_snapshot_document,
)
from repro.core.snippet import Snippet
from repro.errors import (
    EpochFencedError,
    ReplicationError,
    ReplicationGapError,
    StoreError,
)

SNAPSHOT_FILE = "snapshot.json"
PREVIOUS_SNAPSHOT_FILE = "snapshot.prev.json"
DELTA_FILE = "deltas.jsonl"
EPOCH_FILE = "epoch.json"
QUARANTINE_DIR = "quarantine"


class SynopsisStore:
    """Durable snapshots + deltas of a Verdict engine's learned state.

    Parameters
    ----------
    directory:
        Directory holding the snapshot and delta-log files (created on first
        write).
    compact_after:
        Number of delta records after which the next flush folds the log
        into a fresh snapshot.
    include_factors:
        Whether snapshots include the prepared covariance factorisations.
        Including them (default) makes restarts byte-exact and avoids an
        O(n^3) re-factorisation on first use, at the cost of larger
        snapshot files (O(n^2) floats per aggregate function).
    replica:
        Opened on a replication follower: local WAL writes are refused
        (shipped records are the only writers of the delta log) and
        snapshots persist the applied state without advancing the shipping
        sequence.
    """

    def __init__(
        self,
        directory: str | os.PathLike[str],
        compact_after: int = 256,
        include_factors: bool = True,
        replica: bool = False,
    ):
        if compact_after <= 0:
            raise StoreError("compact_after must be positive")
        self.directory = Path(directory)
        self.compact_after = compact_after
        self.include_factors = include_factors
        self.replica = replica
        self.snapshots_written = 0
        self.deltas_written = 0
        #: Recovery accounting, surfaced through the serving metrics.
        self.counters: dict[str, int] = {
            "deltas_replayed": 0,
            "deltas_truncated": 0,
            "tail_recoveries": 0,
            "snapshots_quarantined": 0,
            "previous_generation_recoveries": 0,
            "orphaned_delta_logs": 0,
        }
        #: True when the last load had to quarantine a snapshot -- the
        #: service reports itself degraded until a fresh snapshot succeeds.
        self.quarantined = False
        #: Human-readable notes of what recovery did, newest last.
        self.recovery_notes: list[str] = []
        self._persisted_version: int | None = None
        self._persisted_epoch: int | None = None
        self._delta_records = self._count_delta_records()
        #: Shipping sequence: the seq of the last durable WAL event, and the
        #: seq the current snapshot covers.  Everything in ``(snapshot
        #: sequence, sequence]`` is in the delta log and shippable.
        self.sequence = 0
        self.snapshot_sequence = 0
        #: True once ``snapshot.json`` carries a ``replication`` block (a
        #: legacy snapshot cannot be shipped verbatim; the leader rewrites
        #: it before serving a bootstrap).
        self.snapshot_shippable = False
        #: Fencing epoch: bumped (with a fresh lineage token) at every
        #: promotion, stamped on every shipped record and snapshot.
        self.fencing_epoch = 0
        self.fencing_lineage = ""
        self._load_fencing_sidecar()

    # ------------------------------------------------------------------- paths

    @property
    def snapshot_path(self) -> Path:
        return self.directory / SNAPSHOT_FILE

    @property
    def previous_snapshot_path(self) -> Path:
        return self.directory / PREVIOUS_SNAPSHOT_FILE

    @property
    def quarantine_directory(self) -> Path:
        return self.directory / QUARANTINE_DIR

    @property
    def delta_path(self) -> Path:
        return self.directory / DELTA_FILE

    @property
    def epoch_path(self) -> Path:
        return self.directory / EPOCH_FILE

    def exists(self) -> bool:
        """Whether any snapshot generation is present to restore from."""
        return self.snapshot_path.is_file() or self.previous_snapshot_path.is_file()

    @property
    def delta_log_length(self) -> int:
        """Number of delta records currently in the log."""
        return self._delta_records

    # -------------------------------------------------------------------- read

    def load_into(self, engine: VerdictEngine) -> bool:
        """Restore the persisted state into ``engine``.

        Returns ``True`` when a usable snapshot was found and loaded,
        ``False`` when the store is empty *or nothing could be recovered*
        (corrupt files are quarantined, never crash-looped on; the
        :attr:`quarantined` flag and :attr:`counters` say which happened).
        """
        snapshot = self._load_snapshot_payload()
        if snapshot is None:
            if self.quarantined and self.delta_path.is_file():
                # A delta log is meaningless without the snapshot it
                # follows; set it aside for forensics rather than replaying
                # it against a fresh engine (guaranteed version gap).
                self._quarantine(self.delta_path, "orphaned delta log")
                self.counters["orphaned_delta_logs"] += 1
                self._delta_records = 0
            return False
        engine.load_state_dict(snapshot["engine"])
        replication = snapshot.get("replication")
        if isinstance(replication, dict):
            self.snapshot_sequence = int(replication.get("seq", 0))
            self.snapshot_shippable = True
            try:
                self.adopt_epoch(
                    int(replication.get("epoch", 0)),
                    str(replication.get("lineage", "")),
                )
            except EpochFencedError:
                pass  # the sidecar outlived this snapshot (promotion since)
        else:
            # A legacy (pre-replication) snapshot still represents state a
            # follower does not have: give it a synthetic sequence so "from
            # seq 0" pulls are answered with snapshot_required, never with
            # a misleadingly empty tail.
            self.snapshot_sequence = 1
            self.snapshot_shippable = False
        self.sequence = self.snapshot_sequence
        self._replay_deltas(engine)
        self._persisted_version = engine.synopsis.version
        self._persisted_epoch = engine.state_epoch
        return True

    def _load_snapshot_payload(self) -> dict | None:
        """The newest readable, checksum-valid, compatible snapshot payload.

        Tries the current generation first, then the retained previous one.
        Unusable files are moved to ``quarantine/`` (with the reason noted)
        so a restart loop cannot keep tripping over the same bad bytes.
        """
        for path, generation in (
            (self.snapshot_path, "current"),
            (self.previous_snapshot_path, "previous"),
        ):
            if not path.is_file():
                continue
            try:
                payload = decode_snapshot_document(path.read_text())
            except (OSError, ValueError) as error:
                self._quarantine(path, f"{generation} snapshot unreadable: {error}")
                self.counters["snapshots_quarantined"] += 1
                self.quarantined = True
                continue
            if not isinstance(payload, dict) or payload.get("format") != STATE_FORMAT_VERSION:
                found = payload.get("format") if isinstance(payload, dict) else None
                self._quarantine(
                    path,
                    f"{generation} snapshot format {found!r} unsupported "
                    f"(expected {STATE_FORMAT_VERSION})",
                )
                self.counters["snapshots_quarantined"] += 1
                self.quarantined = True
                continue
            if generation == "previous":
                self.counters["previous_generation_recoveries"] += 1
                self.recovery_notes.append(
                    "recovered from the previous snapshot generation"
                )
            return payload
        return None

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move an unusable file into ``quarantine/`` and note why."""
        self.quarantine_directory.mkdir(parents=True, exist_ok=True)
        serial = len(list(self.quarantine_directory.iterdir()))
        target = self.quarantine_directory / f"{path.name}.{serial}"
        try:
            os.replace(path, target)
        except OSError:
            # Worst case (e.g. read-only filesystem) the bad file stays put;
            # the load still proceeds to the next candidate.
            pass
        self.recovery_notes.append(f"quarantined {path.name}: {reason}")

    def _replay_deltas(self, engine: VerdictEngine) -> None:
        """Apply delta records newer than the restored snapshot, in order.

        Replay stops at the first record that is torn, fails its CRC, or
        does not follow on from the restored state (a version gap): a crash
        or corruption invalidates everything *after* it, so the log is
        truncated to the longest valid prefix and rewritten.
        """
        if not self.delta_path.is_file():
            self._delta_records = 0
            return
        records = 0
        valid_lines: list[str] = []
        truncated_from: str | None = None
        # errors="replace": a non-UTF-8 byte (bit rot) must surface as a CRC
        # failure on its record -- handled below -- not as a decode crash.
        lines = [
            line
            for line in self.delta_path.read_text(errors="replace").splitlines()
            if line.strip()
        ]
        for line_number, line in enumerate(lines, start=1):
            try:
                faults.inject("store.replay.record", line=line_number)
                record = decode_checked_record(line)
            except Exception:
                record = None
            if record is None or not isinstance(record, dict):
                truncated_from = f"record {line_number} is torn or corrupt"
                break
            current = engine.synopsis.version
            if record.get("version", -1) <= current:
                valid_lines.append(line)
                records += 1
                continue  # already folded into the snapshot
            if record.get("base_version") != current:
                truncated_from = (
                    f"record {line_number} expects synopsis version "
                    f"{record.get('base_version')} but the restored state "
                    f"is at {current}"
                )
                break
            for snippet_state in record["snippets"]:
                engine.synopsis.restore(Snippet.from_state(snippet_state))
            seq = record.get("seq")
            self.sequence = seq if isinstance(seq, int) else self.sequence + 1
            valid_lines.append(line)
            records += 1
            self.counters["deltas_replayed"] += 1
        if truncated_from is not None:
            # Truncate the log to the valid prefix.  Leaving the bad tail in
            # place would make the next flush append onto it, merging two
            # records into one unparsable line and silently losing every
            # later record on the following restart.
            dropped = len(lines) - len(valid_lines)
            self._atomic_write(
                self.delta_path, "".join(line + "\n" for line in valid_lines)
            )
            self.counters["deltas_truncated"] += dropped
            self.counters["tail_recoveries"] += 1
            self.recovery_notes.append(
                f"truncated {dropped} delta record(s): {truncated_from}"
            )
        self._delta_records = records

    # ------------------------------------------------------------------- write

    def flush(self, engine: VerdictEngine) -> str:
        """Persist everything that changed since the last flush.

        Returns ``"noop"`` (nothing changed), ``"delta"`` (appended-only
        changes went to the delta log), or ``"snapshot"`` (a full snapshot
        was written -- first flush, non-append mutations, training, or
        compaction).
        """
        version = engine.synopsis.version
        epoch = engine.state_epoch
        if self._persisted_version is None or self._persisted_epoch != epoch:
            return self.save_snapshot(engine)
        if version == self._persisted_version:
            return "noop"
        if self.replica:
            # A follower's learned state may only change through the
            # shipping path; a dirty local engine here means something
            # mutated a read-only replica.
            raise StoreError("replica store is read-only: writes arrive via replication")
        delta = engine.synopsis.changes_since(self._persisted_version)
        if delta is None or delta.dirty:
            return self.save_snapshot(engine)
        if self._delta_records >= self.compact_after:
            return self.save_snapshot(engine)

        appended = [
            snippet for snippets in delta.appended.values() for snippet in snippets
        ]
        # The per-key lists lose the global append order; the LRU sequence
        # numbers assigned at add() time recover it exactly.
        appended.sort(key=lambda snippet: snippet.sequence)
        record = {
            "base_version": self._persisted_version,
            "version": version,
            "seq": self.sequence + 1,
            "epoch": self.fencing_epoch,
            "lineage": self.fencing_lineage,
            "snippets": [snippet.to_state() for snippet in appended],
        }
        line = encode_checked_record(record) + "\n"
        self.directory.mkdir(parents=True, exist_ok=True)
        directive = faults.inject("store.delta.append", version=version)
        with open(self.delta_path, "a", encoding="utf-8") as handle:
            if directive is not None and directive.action == "torn":
                # Simulated crash mid-append: half the record reaches the
                # file (durably -- the bytes survive a process death), then
                # the process dies.  Recovery must truncate this tail.
                handle.write(line[: max(1, len(line) // 2)])
                handle.flush()
                os.fsync(handle.fileno())
                faults.hard_exit()
            handle.write(line)
            handle.flush()
            faults.inject("store.delta.fsync", version=version)
            os.fsync(handle.fileno())
        self._persisted_version = version
        self.sequence += 1
        self._delta_records += 1
        self.deltas_written += 1
        return "delta"

    def save_snapshot(self, engine: VerdictEngine) -> str:
        """Write a full snapshot atomically, rotate generations, truncate log.

        Ordering (each step is atomic; the read path recovers from a crash
        between any two): write + fsync the new snapshot to a temporary
        file; retain the current snapshot as the previous generation;
        publish the new snapshot via rename; truncate the delta log.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        # A leader snapshot is itself a WAL event (it may fold non-delta
        # mutations -- training, evictions -- that were never shipped), so
        # it advances the shipping sequence; a replica snapshot merely
        # persists already-shipped state at its current sequence.
        sequence = self.sequence if self.replica else self.sequence + 1
        payload = {
            "format": STATE_FORMAT_VERSION,
            "engine": engine.state_dict(include_prepared=self.include_factors),
            "replication": {
                "seq": sequence,
                "epoch": self.fencing_epoch,
                "lineage": self.fencing_lineage,
            },
        }
        document = encode_snapshot_document(payload)
        temporary = self.snapshot_path.with_suffix(".json.tmp")
        directive = faults.inject("store.snapshot.write")
        with open(temporary, "w", encoding="utf-8") as handle:
            if directive is not None and directive.action == "torn":
                handle.write(document[: max(1, len(document) // 2)])
                handle.flush()
                os.fsync(handle.fileno())
                faults.hard_exit()
            handle.write(document)
            handle.flush()
            faults.inject("store.snapshot.fsync")
            os.fsync(handle.fileno())
        if self.snapshot_path.is_file():
            # Retain the outgoing generation: if the *new* snapshot later
            # turns out corrupt (bad disk, torn write that fsync lied
            # about), recovery falls back to this one.
            os.replace(self.snapshot_path, self.previous_snapshot_path)
        faults.inject("store.snapshot.rename")
        os.replace(temporary, self.snapshot_path)
        faults.inject("store.delta.truncate")
        self._atomic_write(self.delta_path, "")
        # The renames above are not durable until the directory entry is:
        # without this a power loss can resurrect the previous generation
        # even though the publish rename "succeeded".
        self._fsync_directory(self.directory)
        self._persisted_version = engine.synopsis.version
        self._persisted_epoch = engine.state_epoch
        self._delta_records = 0
        self.sequence = sequence
        self.snapshot_sequence = sequence
        self.snapshot_shippable = True
        self.snapshots_written += 1
        # A successful snapshot supersedes whatever was quarantined.
        self.quarantined = False
        return "snapshot"

    def compact(self, engine: VerdictEngine) -> str:
        """Fold the delta log into a fresh snapshot immediately."""
        return self.save_snapshot(engine)

    # -------------------------------------------------------------- replication

    def adopt_epoch(self, number: int, lineage: str) -> None:
        """Adopt a fencing epoch, persisting the sidecar on any advance.

        Rules (the whole fencing contract lives here): an older epoch is a
        deposed writer -- hard :class:`EpochFencedError`; an *equal* epoch
        with a different lineage token means two nodes independently claimed
        the same epoch (consensus-free split brain) -- also a hard error; a
        newer epoch is adopted and persisted durably before this returns.
        """
        if number < self.fencing_epoch:
            raise EpochFencedError(
                f"epoch {number} is behind the locally fenced epoch "
                f"{self.fencing_epoch}",
                local=(self.fencing_epoch, self.fencing_lineage),
                remote=(number, lineage),
            )
        if number == self.fencing_epoch:
            if self.fencing_lineage and lineage and lineage != self.fencing_lineage:
                raise EpochFencedError(
                    f"epoch {number} was claimed by two lineages "
                    f"({self.fencing_lineage!r} here, {lineage!r} remote): "
                    "refusing to merge divergent histories",
                    local=(self.fencing_epoch, self.fencing_lineage),
                    remote=(number, lineage),
                )
            if lineage and not self.fencing_lineage:
                self.fencing_lineage = lineage
                self._persist_fencing()
            return
        self.fencing_epoch = number
        self.fencing_lineage = lineage
        self._persist_fencing()

    def delta_tail(self, from_seq: int, max_records: int = 256) -> list[str]:
        """Complete, CRC-valid delta lines with ``seq > from_seq``, in order.

        This is what the leader ships.  Reading stops at the first torn,
        corrupt, or unsequenced (legacy) line -- safe against a concurrent
        append, which can only ever expose a partial *last* line -- so a
        shipped batch is always a valid contiguous WAL segment.
        """
        if not self.delta_path.is_file():
            return []
        tail: list[str] = []
        for line in self.delta_path.read_text(errors="replace").splitlines():
            if not line.strip():
                continue
            record = decode_checked_record(line)
            if not isinstance(record, dict):
                break
            seq = record.get("seq")
            if not isinstance(seq, int):
                break  # pre-replication record: only a snapshot can ship it
            if seq <= from_seq:
                continue
            tail.append(line)
            if len(tail) >= max_records:
                break
        return tail

    def ship_append(self, engine: VerdictEngine, line: str) -> dict:
        """Apply one shipped delta record verbatim (the follower apply path).

        Fence-checks the record's epoch, chain-checks its sequence and base
        version against the applied state, appends the *exact* shipped line
        durably, and only then applies the snippets -- so a follower's WAL
        is byte-identical to the leader's and a crash mid-apply replays to
        the same state.  Raises :class:`ReplicationGapError` when the
        record does not follow on (the follower re-bootstraps).
        """
        record = decode_checked_record(line)
        if not isinstance(record, dict):
            raise ReplicationError("shipped delta record is torn or corrupt")
        seq = record.get("seq")
        number = record.get("epoch")
        lineage = record.get("lineage")
        if not isinstance(seq, int) or not isinstance(number, int):
            raise ReplicationError("shipped record lacks replication metadata")
        self.adopt_epoch(number, str(lineage or ""))
        if seq != self.sequence + 1:
            raise ReplicationGapError(
                f"shipped record seq {seq} does not follow the applied "
                f"sequence {self.sequence}"
            )
        if record.get("base_version") != engine.synopsis.version:
            raise ReplicationGapError(
                f"shipped record expects synopsis version "
                f"{record.get('base_version')} but the applied state is at "
                f"{engine.synopsis.version}"
            )
        faults.inject("repl.apply.record", seq=seq)
        self.directory.mkdir(parents=True, exist_ok=True)
        with open(self.delta_path, "a", encoding="utf-8") as handle:
            handle.write(line.rstrip("\n") + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        for snippet_state in record["snippets"]:
            engine.synopsis.restore(Snippet.from_state(snippet_state))
        self.sequence = seq
        self._persisted_version = engine.synopsis.version
        self._persisted_epoch = engine.state_epoch
        self._delta_records += 1
        self.deltas_written += 1
        return record

    def install_shipped_snapshot(self, engine: VerdictEngine, document: str) -> dict:
        """Install a leader snapshot document verbatim (follower bootstrap).

        The document is checksum-verified, fence-checked, published through
        the same atomic rotation as a local snapshot (previous generation
        retained, directory fsynced), the delta log is truncated, and the
        engine state is loaded from it -- after which the follower's applied
        sequence is exactly the snapshot's.
        """
        faults.inject("repl.apply.snapshot")
        try:
            payload = decode_snapshot_document(document)
        except ValueError as error:
            raise ReplicationError(f"shipped snapshot is corrupt: {error}") from error
        if not isinstance(payload, dict) or payload.get("format") != STATE_FORMAT_VERSION:
            raise ReplicationError("shipped snapshot has an unsupported format")
        replication = payload.get("replication")
        if not isinstance(replication, dict):
            raise ReplicationError("shipped snapshot lacks replication metadata")
        number = int(replication.get("epoch", 0))
        lineage = str(replication.get("lineage", ""))
        self.adopt_epoch(number, lineage)
        self.directory.mkdir(parents=True, exist_ok=True)
        temporary = self.snapshot_path.with_suffix(".json.tmp")
        with open(temporary, "w", encoding="utf-8") as handle:
            handle.write(document)
            handle.flush()
            os.fsync(handle.fileno())
        if self.snapshot_path.is_file():
            os.replace(self.snapshot_path, self.previous_snapshot_path)
        os.replace(temporary, self.snapshot_path)
        self._atomic_write(self.delta_path, "")
        self._fsync_directory(self.directory)
        engine.load_state_dict(payload["engine"])
        self.sequence = int(replication.get("seq", 0))
        self.snapshot_sequence = self.sequence
        self.snapshot_shippable = True
        self._persisted_version = engine.synopsis.version
        self._persisted_epoch = engine.state_epoch
        self._delta_records = 0
        self.snapshots_written += 1
        self.quarantined = False
        return payload

    def replication_state(self) -> dict:
        """Shipping-side accounting for the replication status endpoint."""
        return {
            "sequence": self.sequence,
            "snapshot_sequence": self.snapshot_sequence,
            "epoch": self.fencing_epoch,
            "lineage": self.fencing_lineage,
            "replica": self.replica,
            "delta_log_length": self._delta_records,
        }

    def _load_fencing_sidecar(self) -> None:
        if not self.epoch_path.is_file():
            return
        try:
            payload = json.loads(self.epoch_path.read_text())
            number = int(payload.get("epoch", 0))
            lineage = str(payload.get("lineage", ""))
        except (OSError, ValueError):
            return  # an unreadable sidecar is equivalent to epoch 0
        self.fencing_epoch = number
        self.fencing_lineage = lineage

    def _persist_fencing(self) -> None:
        """Durably record the fencing epoch before any write carries it."""
        self.directory.mkdir(parents=True, exist_ok=True)
        self._atomic_write(
            self.epoch_path,
            json.dumps({"epoch": self.fencing_epoch, "lineage": self.fencing_lineage})
            + "\n",
        )
        self._fsync_directory(self.directory)

    @staticmethod
    def _fsync_directory(path: Path) -> None:
        """Flush a directory entry so a preceding rename survives power loss."""
        faults.inject("store.dir.fsync", directory=str(path))
        try:
            descriptor = os.open(path, os.O_RDONLY)
        except OSError:
            return  # platforms that cannot open directories read-only
        try:
            os.fsync(descriptor)
        finally:
            os.close(descriptor)

    # ----------------------------------------------------------------- helpers

    def _count_delta_records(self) -> int:
        if not self.delta_path.is_file():
            return 0
        return sum(
            1
            for line in self.delta_path.read_text(errors="replace").splitlines()
            if line.strip()
        )

    @staticmethod
    def _atomic_write(path: Path, text: str) -> None:
        """Write-then-rename so readers never observe a partial file."""
        temporary = path.with_suffix(path.suffix + ".tmp")
        with open(temporary, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, path)

    def state_snapshot(self) -> dict:
        """Store health/accounting for metrics and health endpoints."""
        return {
            "snapshots_written": self.snapshots_written,
            "deltas_written": self.deltas_written,
            "delta_log_length": self._delta_records,
            "quarantined": self.quarantined,
            "recovery_notes": list(self.recovery_notes),
            "sequence": self.sequence,
            "fencing_epoch": self.fencing_epoch,
            **self.counters,
        }
