"""Leader/follower replication of the synopsis store over HTTP.

The paper's accumulated synopsis is the asset worth replicating: this
package ships the existing snapshot + CRC'd delta log
(:mod:`repro.serve.store`) from a leader to pull-based followers over the
HTTP front door, with epoch-fenced manual failover.

* :class:`ReplicationManager` (:mod:`.state`) -- role (``leader`` /
  ``follower`` / ``promoting``), the persisted fencing epoch, the
  leader-side sync-ack coordinator, lag accounting, and promotion.
* :class:`ReplicationPuller` (:mod:`.follower`) -- the follower's
  per-tenant pull-apply loop: bootstrap from a shipped snapshot, tail the
  delta log, apply through the byte-identical restore path.

See ``docs/ARCHITECTURE.md`` ("Replication & failover") for the wire
format, the fencing rules, and the degraded-mode route table.
"""

from repro.serve.replication.follower import ReplicationPuller
from repro.serve.replication.state import (
    ROLE_FOLLOWER,
    ROLE_LEADER,
    ROLE_PROMOTING,
    Epoch,
    ReplicationManager,
)

__all__ = [
    "Epoch",
    "ReplicationManager",
    "ReplicationPuller",
    "ROLE_FOLLOWER",
    "ROLE_LEADER",
    "ROLE_PROMOTING",
]
